//! Binary Merkle trees with inclusion proofs.
//!
//! Used for two things in the platform: committing a block's transaction
//! set in its header, and anchoring the factual-news database so any client
//! can verify that a record is part of the authenticated corpus with a
//! logarithmic proof.
//!
//! Odd levels duplicate the final node (Bitcoin-style). Leaf and interior
//! hashes are domain-separated to rule out second-preimage tricks where an
//! interior node is presented as a leaf.

use serde::{Deserialize, Serialize};
use tn_par::Pool;

use crate::hash::Hash256;
use crate::sha256::Sha256;

/// Domain-separated leaf hash: `sha256(0x00 ‖ leaf)`.
pub fn leaf_hash(data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

fn node_hash(left: &Hash256, right: &Hash256) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// A full Merkle tree retaining all levels, supporting proof generation.
///
/// # Example
///
/// ```
/// use tn_crypto::merkle::{MerkleTree, leaf_hash};
///
/// let leaves: Vec<_> = [b"a".as_slice(), b"b", b"c"].iter().map(|d| leaf_hash(d)).collect();
/// let tree = MerkleTree::from_leaves(leaves.clone());
/// let proof = tree.prove(1).unwrap();
/// assert!(proof.verify(&leaves[1], &tree.root()));
/// ```
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` = leaves, last level = `[root]`. Empty tree has no levels.
    levels: Vec<Vec<Hash256>>,
}

impl MerkleTree {
    /// Builds a tree over pre-hashed leaves.
    ///
    /// An empty leaf set produces the [`Hash256::ZERO`] root sentinel.
    pub fn from_leaves(leaves: Vec<Hash256>) -> MerkleTree {
        if leaves.is_empty() {
            return MerkleTree { levels: Vec::new() };
        }
        let mut levels = vec![leaves];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left);
                next.push(node_hash(left, right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Convenience constructor hashing raw items with [`leaf_hash`].
    pub fn from_items<I, T>(items: I) -> MerkleTree
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        MerkleTree::from_leaves(items.into_iter().map(|d| leaf_hash(d.as_ref())).collect())
    }

    /// The root commitment ([`Hash256::ZERO`] for an empty tree).
    pub fn root(&self) -> Hash256 {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or(Hash256::ZERO)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// True when the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds an inclusion proof for leaf `index`, or `None` if out of
    /// range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            let sibling = level.get(sibling_idx).unwrap_or(&level[idx]);
            siblings.push(*sibling);
            idx /= 2;
        }
        Some(MerkleProof { index, siblings })
    }
}

impl FromIterator<Hash256> for MerkleTree {
    fn from_iter<I: IntoIterator<Item = Hash256>>(iter: I) -> Self {
        MerkleTree::from_leaves(iter.into_iter().collect())
    }
}

/// An inclusion proof: the leaf index and the sibling hashes from leaf
/// level to the root.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hashes, one per tree level (leaf level first).
    pub siblings: Vec<Hash256>,
}

impl MerkleProof {
    /// Verifies that `leaf` (already leaf-hashed) is committed under `root`.
    pub fn verify(&self, leaf: &Hash256, root: &Hash256) -> bool {
        let mut cur = *leaf;
        let mut idx = self.index;
        for sibling in &self.siblings {
            cur = if idx.is_multiple_of(2) {
                node_hash(&cur, sibling)
            } else {
                node_hash(sibling, &cur)
            };
            idx /= 2;
        }
        cur == *root
    }

    /// Proof size in hashes (tree depth).
    pub fn depth(&self) -> usize {
        self.siblings.len()
    }
}

/// Computes just the Merkle root of an item list without retaining levels
/// (cheaper when proofs are not needed, e.g. block construction).
pub fn merkle_root<I, T>(items: I) -> Hash256
where
    I: IntoIterator<Item = T>,
    T: AsRef<[u8]>,
{
    merkle_root_of_leaves(items.into_iter().map(|d| leaf_hash(d.as_ref())).collect())
}

/// Computes the Merkle root over pre-hashed leaves.
pub fn merkle_root_of_leaves(mut level: Vec<Hash256>) -> Hash256 {
    if level.is_empty() {
        return Hash256::ZERO;
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let left = &pair[0];
            let right = pair.get(1).unwrap_or(left);
            next.push(node_hash(left, right));
        }
        level = next;
    }
    level[0]
}

/// A level must be at least this wide before a reduction step is worth
/// fanning out to pool workers; below it, thread overhead dominates.
const PAR_LEVEL_THRESHOLD: usize = 64;

/// Computes the Merkle root over pre-hashed leaves, fanning each wide
/// level's node hashing out over `pool` workers.
///
/// Byte-identical to [`merkle_root_of_leaves`] for every input and worker
/// count — levels are reduced pairwise in the same order, only the hashing
/// of independent sibling pairs runs concurrently. Narrow levels (fewer
/// than 64 nodes) are reduced inline.
pub fn merkle_root_of_leaves_par(mut level: Vec<Hash256>, pool: &Pool) -> Hash256 {
    if level.is_empty() {
        return Hash256::ZERO;
    }
    while level.len() > 1 {
        let next_len = level.len().div_ceil(2);
        if pool.workers() > 1 && level.len() >= PAR_LEVEL_THRESHOLD {
            let level_ref = &level;
            level = pool.map_index(next_len, |i| {
                let left = &level_ref[2 * i];
                let right = level_ref.get(2 * i + 1).unwrap_or(left);
                node_hash(left, right)
            });
        } else {
            let mut next = Vec::with_capacity(next_len);
            for pair in level.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left);
                next.push(node_hash(left, right));
            }
            level = next;
        }
    }
    level[0]
}

/// Computes the Merkle root of an item list with leaf hashing and wide
/// levels parallelised over `pool`. Byte-identical to [`merkle_root`].
pub fn merkle_root_par<T>(items: &[T], pool: &Pool) -> Hash256
where
    T: AsRef<[u8]> + Sync,
{
    let leaves = pool.map(items, |d| leaf_hash(d.as_ref()));
    merkle_root_of_leaves_par(leaves, pool)
}

/// Incrementally maintained append-only Merkle accumulator.
///
/// The factual database grows continuously; this structure appends in
/// amortized O(log n) and recomputes the root lazily, matching the
/// "factual DB root anchored per block" design.
#[derive(Clone, Debug, Default)]
pub struct MerkleAccumulator {
    leaves: Vec<Hash256>,
}

impl MerkleAccumulator {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pre-hashed leaf, returning its index.
    pub fn push(&mut self, leaf: Hash256) -> usize {
        self.leaves.push(leaf);
        self.leaves.len() - 1
    }

    /// Number of leaves appended so far.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Current root over all appended leaves.
    pub fn root(&self) -> Hash256 {
        merkle_root_of_leaves(self.leaves.clone())
    }

    /// Builds a full tree (for proof generation) at the current state.
    pub fn to_tree(&self) -> MerkleTree {
        MerkleTree::from_leaves(self.leaves.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_tree_zero_root() {
        let t = MerkleTree::from_leaves(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.root(), Hash256::ZERO);
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let leaf = leaf_hash(b"only");
        let t = MerkleTree::from_leaves(vec![leaf]);
        assert_eq!(t.root(), leaf);
        let proof = t.prove(0).expect("in range");
        assert!(proof.siblings.is_empty());
        assert!(proof.verify(&leaf, &t.root()));
    }

    #[test]
    fn all_proofs_verify_for_various_sizes() {
        for size in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33] {
            let leaves: Vec<Hash256> = (0..size)
                .map(|i| leaf_hash(format!("item-{i}").as_bytes()))
                .collect();
            let t = MerkleTree::from_leaves(leaves.clone());
            for (i, leaf) in leaves.iter().enumerate() {
                let proof = t.prove(i).expect("in range");
                assert!(proof.verify(leaf, &t.root()), "size={size} i={i}");
            }
            assert!(t.prove(size).is_none());
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf() {
        let leaves: Vec<Hash256> = (0..8).map(|i| leaf_hash(&[i as u8])).collect();
        let t = MerkleTree::from_leaves(leaves.clone());
        let proof = t.prove(3).expect("in range");
        assert!(!proof.verify(&leaves[4], &t.root()));
        assert!(!proof.verify(&leaf_hash(b"forged"), &t.root()));
    }

    #[test]
    fn proof_fails_for_wrong_root() {
        let leaves: Vec<Hash256> = (0..4).map(|i| leaf_hash(&[i as u8])).collect();
        let t = MerkleTree::from_leaves(leaves.clone());
        let proof = t.prove(0).expect("in range");
        assert!(!proof.verify(&leaves[0], &leaf_hash(b"not the root")));
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let base: Vec<Hash256> = (0..5).map(|i| leaf_hash(&[i as u8])).collect();
        let root = MerkleTree::from_leaves(base.clone()).root();
        for i in 0..5 {
            let mut modified = base.clone();
            modified[i] = leaf_hash(b"tampered");
            assert_ne!(MerkleTree::from_leaves(modified).root(), root, "leaf {i}");
        }
    }

    #[test]
    fn merkle_root_matches_tree() {
        let items: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; 3]).collect();
        let via_fn = merkle_root(items.iter());
        let via_tree = MerkleTree::from_items(items.iter()).root();
        assert_eq!(via_fn, via_tree);
    }

    #[test]
    fn leaf_and_node_domains_differ() {
        // A leaf containing exactly (left||right) must not hash to the
        // interior node of those children.
        let a = leaf_hash(b"a");
        let b = leaf_hash(b"b");
        let mut concat = Vec::new();
        concat.extend_from_slice(a.as_bytes());
        concat.extend_from_slice(b.as_bytes());
        assert_ne!(leaf_hash(&concat), node_hash(&a, &b));
        // And the undomain-separated pair hash differs from the node hash.
        assert_ne!(crate::sha256::sha256_pair(&a, &b), node_hash(&a, &b));
    }

    #[test]
    fn accumulator_tracks_tree() {
        let mut acc = MerkleAccumulator::new();
        assert_eq!(acc.root(), Hash256::ZERO);
        let mut leaves = Vec::new();
        for i in 0..10u8 {
            let l = leaf_hash(&[i]);
            acc.push(l);
            leaves.push(l);
            assert_eq!(acc.root(), MerkleTree::from_leaves(leaves.clone()).root());
        }
        assert_eq!(acc.len(), 10);
        let tree = acc.to_tree();
        let proof = tree.prove(7).expect("in range");
        assert!(proof.verify(&leaves[7], &acc.root()));
    }

    #[test]
    fn parallel_root_matches_sequential() {
        // Determinism across worker counts, at and around the parallel
        // threshold and for odd widths that duplicate the last node.
        for size in [0usize, 1, 2, 3, 63, 64, 65, 127, 128, 129, 257] {
            let leaves: Vec<Hash256> = (0..size)
                .map(|i| leaf_hash(&(i as u64).to_be_bytes()))
                .collect();
            let expect = merkle_root_of_leaves(leaves.clone());
            for workers in [1usize, 2, 3, 4, 8] {
                let pool = Pool::new(workers);
                assert_eq!(
                    merkle_root_of_leaves_par(leaves.clone(), &pool),
                    expect,
                    "size={size} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn merkle_root_par_matches_merkle_root() {
        let items: Vec<Vec<u8>> = (0..200u8).map(|i| vec![i; 5]).collect();
        let expect = merkle_root(items.iter());
        for workers in [1usize, 3, 4] {
            assert_eq!(merkle_root_par(&items, &Pool::new(workers)), expect);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_every_proof_verifies(n in 1usize..40, pick in 0usize..40) {
            let leaves: Vec<Hash256> = (0..n).map(|i| leaf_hash(&(i as u64).to_be_bytes())).collect();
            let t = MerkleTree::from_leaves(leaves.clone());
            let i = pick % n;
            let proof = t.prove(i).expect("in range");
            prop_assert!(proof.verify(&leaves[i], &t.root()));
            prop_assert_eq!(proof.depth(), t.levels.len() - 1);
        }

        #[test]
        fn prop_proof_binds_index(n in 2usize..40, pick in 0usize..40) {
            let leaves: Vec<Hash256> = (0..n).map(|i| leaf_hash(&(i as u64).to_be_bytes())).collect();
            let t = MerkleTree::from_leaves(leaves.clone());
            let i = pick % n;
            let j = (i + 1) % n;
            let proof = t.prove(i).expect("in range");
            // Proving leaf i does not validate leaf j's content.
            prop_assert!(!proof.verify(&leaves[j], &t.root()));
        }
    }
}
