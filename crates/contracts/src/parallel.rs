//! Parallel execution of independent contract calls.
//!
//! The paper cites the authors' ICDCS 2018 work on "transform\[ing\]
//! blockchain into \[a\] distributed and parallel computing architecture" as
//! the scalability mechanism for AI smart contracts (§IV, §VII). This
//! module reproduces the core idea: calls touching *different* contracts
//! have no data dependencies, so they can execute on worker threads in
//! parallel, while calls to the same contract stay sequential in
//! submission order. The E6 experiment measures the resulting speedup.

use std::collections::HashMap;

use tn_crypto::Address;
use tn_par::Pool;

use crate::executor::{ContractEntry, ContractRegistry};
use crate::vm::{execute, ExecEnv, Word};

/// One call in a batch.
#[derive(Debug, Clone)]
pub struct CallTask {
    /// Calling account.
    pub caller: Address,
    /// Target bytecode contract.
    pub contract: Address,
    /// Input words.
    pub input: Vec<Word>,
    /// Gas limit.
    pub gas_limit: u64,
}

/// Outcome of one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskResult {
    /// Index of the task in the submitted batch.
    pub index: usize,
    /// Output words on success; error text on failure.
    pub outcome: Result<Vec<Word>, String>,
    /// Gas used (0 for failed lookups).
    pub gas_used: u64,
}

/// Executes `tasks` against the bytecode contracts in `registry` using up
/// to `workers` threads (on the shared [`tn_par::Pool`] fork-join pool),
/// preserving per-contract sequential order.
///
/// Storage mutations are merged back into the registry afterwards, so the
/// final state equals a sequential execution that processes each
/// contract's calls in submission order. Returns results indexed like the
/// input.
///
/// `workers == 0` is clamped to one worker (sequential execution) rather
/// than panicking, matching [`Pool::new`]; passing the count straight
/// from a config value is safe.
pub fn execute_parallel(
    registry: &mut ContractRegistry,
    tasks: &[CallTask],
    workers: usize,
) -> Vec<TaskResult> {
    let pool = Pool::new(workers);
    let workers = pool.workers();

    // Group task indices by contract; group order inside is submission order.
    let mut groups: HashMap<Address, Vec<usize>> = HashMap::new();
    let mut group_order: Vec<Address> = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        let entry = groups.entry(t.contract).or_default();
        if entry.is_empty() {
            group_order.push(t.contract);
        }
        entry.push(i);
    }

    // Move each touched contract's entry out of the registry so worker
    // threads own disjoint state.
    let mut work_units: Vec<(Address, ContractEntry, Vec<usize>)> = Vec::new();
    let mut missing: Vec<usize> = Vec::new();
    for addr in &group_order {
        let idxs = groups.remove(addr).expect("grouped");
        match registry.take_contract(addr) {
            Some(entry) => work_units.push((*addr, entry, idxs)),
            None => missing.extend(idxs),
        }
    }

    let mut results: Vec<Option<TaskResult>> = vec![None; tasks.len()];
    for i in missing {
        results[i] = Some(TaskResult {
            index: i,
            outcome: Err(format!("no contract at {}", tasks[i].contract.short())),
            gas_used: 0,
        });
    }

    // Longest-processing-time-first assignment across workers.
    work_units.sort_by_key(|(_, _, idxs)| std::cmp::Reverse(idxs.len()));
    let mut buckets: Vec<Vec<(Address, ContractEntry, Vec<usize>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    let mut loads = vec![0usize; workers];
    for unit in work_units {
        let min = loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| **l)
            .map(|(i, _)| i)
            .expect("workers > 0");
        loads[min] += unit.2.len();
        buckets[min].push(unit);
    }

    let run_bucket = |bucket: Vec<(Address, ContractEntry, Vec<usize>)>| {
        let mut out: Vec<(Address, ContractEntry, Vec<TaskResult>)> = Vec::new();
        for (addr, mut entry, idxs) in bucket {
            let mut results = Vec::with_capacity(idxs.len());
            for i in idxs {
                let t = &tasks[i];
                let env = ExecEnv {
                    caller: t.caller.as_hash().to_u64_prefix(),
                    input: t.input.clone(),
                    gas_limit: t.gas_limit,
                };
                let mut scratch = entry.storage.clone();
                match execute(&entry.code, &mut scratch, &env) {
                    Ok(outcome) => {
                        entry.storage = scratch;
                        results.push(TaskResult {
                            index: i,
                            outcome: Ok(outcome.output),
                            gas_used: outcome.gas_used,
                        });
                    }
                    Err(e) => results.push(TaskResult {
                        index: i,
                        outcome: Err(e.to_string()),
                        gas_used: t.gas_limit,
                    }),
                }
            }
            out.push((addr, entry, results));
        }
        out
    };

    let finished: Vec<(Address, ContractEntry, Vec<TaskResult>)> = pool
        .map_owned(buckets, run_bucket)
        .into_iter()
        .flatten()
        .collect();

    for (addr, entry, task_results) in finished {
        registry.put_contract(addr, entry);
        for r in task_results {
            let i = r.index;
            results[i] = Some(r);
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every task resolved"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use tn_chain::state::TxExecutor;
    use tn_crypto::Keypair;

    fn counter_code() -> Vec<u8> {
        assemble("push 0\npush 0\nsload\npush 1\nadd\nsstore\npush 0\nsload\npush 1\nret").unwrap()
    }

    fn setup(n_contracts: usize) -> (ContractRegistry, Vec<Address>) {
        let mut reg = ContractRegistry::new();
        let deployer = Keypair::from_seed(b"deployer").address();
        let addrs = (0..n_contracts)
            .map(|i| reg.deploy(&deployer, i as u64, &counter_code()).unwrap())
            .collect();
        (reg, addrs)
    }

    fn task(caller_seed: u64, contract: Address) -> CallTask {
        CallTask {
            caller: Keypair::from_seed(&caller_seed.to_le_bytes()).address(),
            contract,
            input: vec![],
            gas_limit: 10_000,
        }
    }

    #[test]
    fn parallel_matches_sequential_per_contract_order() {
        let (mut reg, addrs) = setup(4);
        // 3 calls per contract, interleaved.
        let mut tasks = Vec::new();
        for round in 0..3 {
            for &a in &addrs {
                tasks.push(task(round, a));
            }
        }
        let results = execute_parallel(&mut reg, &tasks, 4);
        assert_eq!(results.len(), 12);
        assert!(results.iter().all(|r| r.outcome.is_ok()));
        // Every contract's counter reached exactly 3.
        for a in &addrs {
            assert_eq!(reg.contract(a).unwrap().storage.get(&0), Some(&3));
        }
        // Per-contract outputs are 1,2,3 in submission order.
        for (slot, a) in addrs.iter().enumerate() {
            let outs: Vec<u64> = results
                .iter()
                .filter(|r| tasks[r.index].contract == *a)
                .map(|r| r.outcome.as_ref().unwrap()[0])
                .collect();
            assert_eq!(outs, vec![1, 2, 3], "contract {slot}");
        }
    }

    #[test]
    fn single_worker_equals_multi_worker_state() {
        let (mut reg1, addrs) = setup(8);
        let (mut reg8, _) = setup(8);
        let tasks: Vec<CallTask> = (0..40).map(|i| task(i, addrs[(i % 8) as usize])).collect();
        execute_parallel(&mut reg1, &tasks, 1);
        execute_parallel(&mut reg8, &tasks, 8);
        assert_eq!(reg1.storage_root(), reg8.storage_root());
    }

    #[test]
    fn unknown_contract_reports_error() {
        let (mut reg, addrs) = setup(1);
        let bogus = Keypair::from_seed(b"bogus").address();
        let tasks = vec![task(0, addrs[0]), task(1, bogus)];
        let results = execute_parallel(&mut reg, &tasks, 2);
        assert!(results[0].outcome.is_ok());
        assert!(results[1].outcome.is_err());
    }

    #[test]
    fn failed_call_does_not_corrupt_storage() {
        let mut reg = ContractRegistry::new();
        let d = Keypair::from_seed(b"d").address();
        // Store then infinite-loop → OOG after store; must roll back.
        let code = assemble("push 1\npush 1\nsstore\nl:\npush l\njmp").unwrap();
        let addr = reg.deploy(&d, 0, &code).unwrap();
        let tasks = vec![CallTask {
            caller: d,
            contract: addr,
            input: vec![],
            gas_limit: 200,
        }];
        let results = execute_parallel(&mut reg, &tasks, 2);
        assert!(results[0].outcome.is_err());
        assert!(reg.contract(&addr).unwrap().storage.is_empty());
    }

    #[test]
    fn zero_workers_clamps_to_sequential() {
        let (mut reg, addrs) = setup(2);
        let tasks = vec![task(0, addrs[0]), task(1, addrs[1])];
        let results = execute_parallel(&mut reg, &tasks, 0);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.outcome.is_ok()));
        for a in &addrs {
            assert_eq!(reg.contract(a).unwrap().storage.get(&0), Some(&1));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (mut reg, _) = setup(1);
        assert!(execute_parallel(&mut reg, &[], 3).is_empty());
    }
}
