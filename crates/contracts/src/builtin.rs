//! Built-in (native) platform contracts.
//!
//! The paper's governance mechanisms are all "managed and enforced by
//! various smart contracts" (§V): distribution-platform creation,
//! journalist authentication, crowd-source ranking, incentives, and
//! factual-database admission. These four contracts implement those
//! mechanisms natively (Rust instead of bytecode) behind the same call
//! interface as VM contracts, so transactions cannot tell the difference.
//!
//! Input/output use the `tn-chain` canonical codec; the first byte of the
//! input selects the operation.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use tn_chain::codec::{Decoder, Encoder};
use tn_crypto::{Address, Hash256};

/// Interface shared by all native contracts.
pub trait BuiltinContract: Send + fmt::Debug {
    /// Human-readable contract name (also used to derive its address).
    fn name(&self) -> &'static str;

    /// Executes one call.
    ///
    /// # Errors
    ///
    /// Returns a message describing the failure (bad op, unauthorized
    /// caller, malformed input).
    fn call(&mut self, caller: &Address, input: &[u8]) -> Result<Vec<u8>, String>;

    /// Typed read access for in-process platform code (downcasting).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Typed mutable access for in-process platform code.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Serializes the contract's persistent state for a chain checkpoint.
    /// `None` means the contract does not participate in checkpoints (a
    /// restarted node then rebuilds it by replaying from genesis).
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state produced by [`BuiltinContract::save_state`].
    ///
    /// # Errors
    ///
    /// A message when the blob is malformed or the contract does not
    /// support checkpoints.
    fn load_state(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err(format!("contract {} cannot load checkpoints", self.name()))
    }
}

fn bad_input(e: impl fmt::Display) -> String {
    format!("malformed input: {e}")
}

// ---------------------------------------------------------------------------
// Newsroom registry
// ---------------------------------------------------------------------------

/// A distribution platform (paper §V: "each news publisher … can apply to
/// set up a distribution platform").
#[derive(Debug, Clone)]
pub struct PlatformRecord {
    /// Owner account.
    pub owner: Address,
    /// Display name.
    pub name: String,
}

/// A news room within a platform (the editing platform of §V).
#[derive(Debug, Clone)]
pub struct RoomRecord {
    /// Owning platform id.
    pub platform: u64,
    /// Topic string.
    pub topic: String,
    /// Journalists authorized to publish in this room.
    pub journalists: HashSet<Address>,
}

/// The two-layer trust registry: platforms (layer 1) and rooms with
/// authorized journalists (layer 2).
///
/// Operations (first input byte):
/// - `0` RegisterPlatform(name: str) → platform id (u64)
/// - `1` CreateRoom(platform: u64, topic: str) → room id (u64); owner only
/// - `2` AuthorizeJournalist(room: u64, who: hash); platform owner only
/// - `3` IsAuthorized(room: u64, who: hash) → bool byte
/// - `4` RevokeJournalist(room: u64, who: hash); platform owner only
#[derive(Debug, Default)]
pub struct NewsroomRegistry {
    platforms: BTreeMap<u64, PlatformRecord>,
    rooms: BTreeMap<u64, RoomRecord>,
    next_platform: u64,
    next_room: u64,
}

impl NewsroomRegistry {
    /// New, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read-only platform lookup (for in-process callers like `tn-core`).
    pub fn platform(&self, id: u64) -> Option<&PlatformRecord> {
        self.platforms.get(&id)
    }

    /// Read-only room lookup.
    pub fn room(&self, id: u64) -> Option<&RoomRecord> {
        self.rooms.get(&id)
    }

    /// Iterates `(id, record)` for all platforms, ascending.
    pub fn platforms(&self) -> impl Iterator<Item = (u64, &PlatformRecord)> {
        self.platforms.iter().map(|(id, p)| (*id, p))
    }

    /// Iterates `(id, record)` for all rooms, ascending.
    pub fn rooms(&self) -> impl Iterator<Item = (u64, &RoomRecord)> {
        self.rooms.iter().map(|(id, r)| (*id, r))
    }

    /// Finds a platform id by exact name (first match).
    pub fn find_platform(&self, name: &str) -> Option<u64> {
        self.platforms
            .iter()
            .find(|(_, p)| p.name == name)
            .map(|(id, _)| *id)
    }

    /// True when `who` may publish in `room` (owner or authorized
    /// journalist) — the same check op 3 performs, typed.
    pub fn is_authorized(&self, room: u64, who: &Address) -> bool {
        let Some(r) = self.rooms.get(&room) else {
            return false;
        };
        r.journalists.contains(who)
            || self
                .platforms
                .get(&r.platform)
                .is_some_and(|p| p.owner == *who)
    }

    fn room_owner(&self, room: u64) -> Option<Address> {
        let r = self.rooms.get(&room)?;
        Some(self.platforms.get(&r.platform)?.owner)
    }
}

impl BuiltinContract for NewsroomRegistry {
    fn name(&self) -> &'static str {
        "newsroom-registry"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut e = Encoder::new();
        e.put_varint(self.platforms.len() as u64);
        for (id, p) in &self.platforms {
            e.put_u64(*id).put_hash(p.owner.as_hash()).put_str(&p.name);
        }
        e.put_varint(self.rooms.len() as u64);
        for (id, r) in &self.rooms {
            e.put_u64(*id).put_u64(r.platform).put_str(&r.topic);
            // HashSet order is nondeterministic; sort so identical state
            // always serializes to identical bytes.
            let mut js: Vec<&Address> = r.journalists.iter().collect();
            js.sort();
            e.put_varint(js.len() as u64);
            for j in js {
                e.put_hash(j.as_hash());
            }
        }
        e.put_u64(self.next_platform).put_u64(self.next_room);
        Some(e.finish())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut dec = Decoder::new(bytes);
        let mut platforms = BTreeMap::new();
        let n = dec.get_varint().map_err(bad_input)?;
        for _ in 0..n {
            let id = dec.get_u64().map_err(bad_input)?;
            let owner = Address::from_hash(dec.get_hash().map_err(bad_input)?);
            let name = dec.get_str().map_err(bad_input)?;
            platforms.insert(id, PlatformRecord { owner, name });
        }
        let mut rooms = BTreeMap::new();
        let n = dec.get_varint().map_err(bad_input)?;
        for _ in 0..n {
            let id = dec.get_u64().map_err(bad_input)?;
            let platform = dec.get_u64().map_err(bad_input)?;
            let topic = dec.get_str().map_err(bad_input)?;
            let j = dec.get_varint().map_err(bad_input)?;
            let mut journalists = HashSet::new();
            for _ in 0..j {
                journalists.insert(Address::from_hash(dec.get_hash().map_err(bad_input)?));
            }
            rooms.insert(
                id,
                RoomRecord {
                    platform,
                    topic,
                    journalists,
                },
            );
        }
        self.next_platform = dec.get_u64().map_err(bad_input)?;
        self.next_room = dec.get_u64().map_err(bad_input)?;
        dec.expect_end().map_err(bad_input)?;
        self.platforms = platforms;
        self.rooms = rooms;
        Ok(())
    }

    fn call(&mut self, caller: &Address, input: &[u8]) -> Result<Vec<u8>, String> {
        let mut dec = Decoder::new(input);
        let op = dec.get_u8().map_err(bad_input)?;
        match op {
            0 => {
                let name = dec.get_str().map_err(bad_input)?;
                if name.is_empty() {
                    return Err("platform name must be nonempty".into());
                }
                self.next_platform += 1;
                let id = self.next_platform;
                self.platforms.insert(
                    id,
                    PlatformRecord {
                        owner: *caller,
                        name,
                    },
                );
                Ok(id.to_le_bytes().to_vec())
            }
            1 => {
                let platform = dec.get_u64().map_err(bad_input)?;
                let topic = dec.get_str().map_err(bad_input)?;
                let p = self
                    .platforms
                    .get(&platform)
                    .ok_or_else(|| format!("unknown platform {platform}"))?;
                if p.owner != *caller {
                    return Err("only the platform owner may create rooms".into());
                }
                self.next_room += 1;
                let id = self.next_room;
                self.rooms.insert(
                    id,
                    RoomRecord {
                        platform,
                        topic,
                        journalists: HashSet::new(),
                    },
                );
                Ok(id.to_le_bytes().to_vec())
            }
            2 | 4 => {
                let room = dec.get_u64().map_err(bad_input)?;
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                let owner = self
                    .room_owner(room)
                    .ok_or_else(|| format!("unknown room {room}"))?;
                if owner != *caller {
                    return Err("only the platform owner may manage journalists".into());
                }
                let r = self.rooms.get_mut(&room).expect("checked");
                if op == 2 {
                    r.journalists.insert(who);
                } else {
                    r.journalists.remove(&who);
                }
                Ok(Vec::new())
            }
            3 => {
                let room = dec.get_u64().map_err(bad_input)?;
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                let r = self
                    .rooms
                    .get(&room)
                    .ok_or_else(|| format!("unknown room {room}"))?;
                let owner = self.platforms.get(&r.platform).map(|p| p.owner);
                let authorized = r.journalists.contains(&who) || owner == Some(who);
                Ok(vec![authorized as u8])
            }
            other => Err(format!("unknown newsroom op {other}")),
        }
    }
}

/// Encodes a `RegisterPlatform` call input.
pub fn newsroom_register_platform(name: &str) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(0).put_str(name);
    e.finish()
}

/// Encodes a `CreateRoom` call input.
pub fn newsroom_create_room(platform: u64, topic: &str) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(1).put_u64(platform).put_str(topic);
    e.finish()
}

/// Encodes an `AuthorizeJournalist` call input.
pub fn newsroom_authorize(room: u64, who: &Address) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(2).put_u64(room).put_hash(who.as_hash());
    e.finish()
}

/// Encodes an `IsAuthorized` query input.
pub fn newsroom_is_authorized(room: u64, who: &Address) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(3).put_u64(room).put_hash(who.as_hash());
    e.finish()
}

/// Encodes a `RevokeJournalist` call input.
pub fn newsroom_revoke(room: u64, who: &Address) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(4).put_u64(room).put_hash(who.as_hash());
    e.finish()
}

// ---------------------------------------------------------------------------
// Ranking contract
// ---------------------------------------------------------------------------

/// Reputation-weighted crowd ranking of news items (paper §V: "the
/// truthfulness of all the contents … ranked collectively by AI algorithms
/// and blockchain crowd sourcing").
///
/// Operations:
/// - `0` SubmitRating(item: hash, score: u8 ≤ 100) — last write per caller wins;
///   rejected for quarantined callers while a defense policy is active
/// - `1` GetRanking(item) → (count u64, weighted mean ×10⁻⁴ u64)
/// - `2` SetReputation(who: hash, rep u64) — owner only
/// - `3` GetRating(item, who: hash) → score byte (0xff when absent)
/// - `4` SetPolicy(min_bond u64, decay_bps u64, slash_bps u64) — owner only;
///   activates the adversarial-participant defenses (E24)
/// - `5` GrantStake(who: hash, amount u64) — owner only (admission grant)
/// - `6` PostBond(amount u64) — moves the caller's free stake into its bond
/// - `7` RecordOutcome(item: hash, factual u8) — owner only; decays every
///   rater's reputation toward the prior, bumps/penalizes by confirmed
///   agreement, and slashes the bonds of contradicted raters
/// - `8` Quarantine(who: hash) — owner only
/// - `9` Unquarantine(who: hash) — owner only
/// - `10` GetStake(who: hash) → (free u64, bonded u64)
#[derive(Debug)]
pub struct RankingContract {
    owner: Address,
    /// item → rater → score.
    ratings: HashMap<Hash256, BTreeMap<Address, u8>>,
    /// Reputation weights (default 100).
    reputation: HashMap<Address, u64>,
    /// Active defense policy (`None` = legacy weighting, no gates).
    policy: Option<DefensePolicy>,
    /// Grantable/bondable stake per rater.
    free_stake: HashMap<Address, u64>,
    /// Bonded stake per rater (the sybil admission cost at risk).
    bonded_stake: HashMap<Address, u64>,
    /// Slashed stake accumulator (conservation: granted = free + bonded
    /// + treasury).
    treasury: u64,
    /// Quarantined raters: zero weight, submissions rejected.
    quarantined: HashSet<Address>,
}

/// Default reputation weight for unknown raters.
pub const DEFAULT_REPUTATION: u64 = 100;

/// Reputation ceiling under an active defense policy.
pub const REPUTATION_CAP: u64 = 1_000;

/// Reputation gained per confirmed-correct rating.
pub const REPUTATION_STEP_UP: u64 = 20;

/// Reputation lost per confirmed-wrong rating (harsher than the gain, so
/// turncoats fall faster than they climbed).
pub const REPUTATION_STEP_DOWN: u64 = 40;

/// On-chain defense parameters (op `4`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefensePolicy {
    /// Minimum bonded stake for a rating to carry weight.
    pub min_bond: u64,
    /// Basis points of a rater's *deviation from the default reputation*
    /// kept per recorded outcome (e.g. 9000 = 90 % — old behaviour fades).
    pub decay_bps: u64,
    /// Basis points of the bond slashed per contradicted rating.
    pub slash_bps: u64,
}

impl RankingContract {
    /// Creates the contract with `owner` allowed to set reputations.
    pub fn new(owner: Address) -> Self {
        RankingContract {
            owner,
            ratings: HashMap::new(),
            reputation: HashMap::new(),
            policy: None,
            free_stake: HashMap::new(),
            bonded_stake: HashMap::new(),
            treasury: 0,
            quarantined: HashSet::new(),
        }
    }

    fn rep(&self, who: &Address) -> u64 {
        self.reputation
            .get(who)
            .copied()
            .unwrap_or(DEFAULT_REPUTATION)
    }

    /// The active defense policy, if any.
    pub fn policy(&self) -> Option<DefensePolicy> {
        self.policy
    }

    /// `(free, bonded)` stake of a rater.
    pub fn stake(&self, who: &Address) -> (u64, u64) {
        (
            self.free_stake.get(who).copied().unwrap_or(0),
            self.bonded_stake.get(who).copied().unwrap_or(0),
        )
    }

    /// Accumulated slashed stake.
    pub fn treasury(&self) -> u64 {
        self.treasury
    }

    /// True when `who` is quarantined.
    pub fn is_quarantined(&self, who: &Address) -> bool {
        self.quarantined.contains(who)
    }

    /// A rater's current aggregation weight: its reputation, gated to
    /// zero by quarantine or an unmet bond when a policy is active.
    pub fn vote_weight(&self, who: &Address) -> u64 {
        if let Some(policy) = &self.policy {
            if self.quarantined.contains(who)
                || self.bonded_stake.get(who).copied().unwrap_or(0) < policy.min_bond
            {
                return 0;
            }
        }
        self.rep(who)
    }

    /// Computes `(rating count, weighted mean score in 1e-4 units)`.
    pub fn ranking(&self, item: &Hash256) -> (u64, u64) {
        let Some(rs) = self.ratings.get(item) else {
            return (0, 0);
        };
        let mut weight_sum: u128 = 0;
        let mut score_sum: u128 = 0;
        for (who, score) in rs {
            let w = self.vote_weight(who) as u128;
            weight_sum += w;
            score_sum += w * (*score as u128);
        }
        if weight_sum == 0 {
            return (rs.len() as u64, 0);
        }
        let mean_e4 = (score_sum * 10_000 / weight_sum) as u64;
        (rs.len() as u64, mean_e4)
    }

    /// Applies one confirmed outcome to every rater of `item`: decay
    /// toward the prior first, then a bump (agreed) or a penalty plus a
    /// bond slash (contradicted). Score 50 is neutral and untouched.
    fn record_outcome(&mut self, item: &Hash256, factual: bool) -> u64 {
        let Some(policy) = self.policy else {
            return 0;
        };
        let Some(rs) = self.ratings.get(item) else {
            return 0;
        };
        let raters: Vec<(Address, u8)> = rs.iter().map(|(a, s)| (*a, *s)).collect();
        let mut slashed_total = 0u64;
        for (who, score) in raters {
            if score == 50 {
                continue;
            }
            let says_factual = score > 50;
            let agreed = says_factual == factual;
            // Exponential forgetting in integer space: keep decay_bps of
            // the deviation from the prior.
            let prior = DEFAULT_REPUTATION as i128;
            let rep = self.rep(&who) as i128;
            let decayed = prior + (rep - prior) * policy.decay_bps.min(10_000) as i128 / 10_000;
            let updated = if agreed {
                (decayed + REPUTATION_STEP_UP as i128).min(REPUTATION_CAP as i128)
            } else {
                (decayed - REPUTATION_STEP_DOWN as i128).max(0)
            };
            self.reputation.insert(who, updated as u64);
            if !agreed {
                let bonded = self.bonded_stake.entry(who).or_insert(0);
                if *bonded > 0 {
                    let cut =
                        ((*bonded as u128 * policy.slash_bps.min(10_000) as u128) / 10_000) as u64;
                    let cut = cut.max(1).min(*bonded);
                    *bonded -= cut;
                    self.treasury += cut;
                    slashed_total += cut;
                }
            }
        }
        slashed_total
    }
}

impl BuiltinContract for RankingContract {
    fn name(&self) -> &'static str {
        "ranking"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut e = Encoder::new();
        e.put_hash(self.owner.as_hash());
        let mut items: Vec<(&Hash256, &BTreeMap<Address, u8>)> = self.ratings.iter().collect();
        items.sort_by_key(|(h, _)| **h);
        e.put_varint(items.len() as u64);
        for (item, rs) in items {
            e.put_hash(item).put_varint(rs.len() as u64);
            for (who, score) in rs {
                e.put_hash(who.as_hash()).put_u8(*score);
            }
        }
        let mut reps: Vec<(&Address, &u64)> = self.reputation.iter().collect();
        reps.sort_by_key(|(a, _)| **a);
        e.put_varint(reps.len() as u64);
        for (who, rep) in reps {
            e.put_hash(who.as_hash()).put_u64(*rep);
        }
        match &self.policy {
            None => {
                e.put_u8(0);
            }
            Some(p) => {
                e.put_u8(1)
                    .put_u64(p.min_bond)
                    .put_u64(p.decay_bps)
                    .put_u64(p.slash_bps);
            }
        }
        let put_stake_map = |e: &mut Encoder, map: &HashMap<Address, u64>| {
            let mut entries: Vec<(&Address, &u64)> = map.iter().collect();
            entries.sort_by_key(|(a, _)| **a);
            e.put_varint(entries.len() as u64);
            for (who, amount) in entries {
                e.put_hash(who.as_hash()).put_u64(*amount);
            }
        };
        put_stake_map(&mut e, &self.free_stake);
        put_stake_map(&mut e, &self.bonded_stake);
        e.put_u64(self.treasury);
        let mut quarantined: Vec<&Address> = self.quarantined.iter().collect();
        quarantined.sort();
        e.put_varint(quarantined.len() as u64);
        for who in quarantined {
            e.put_hash(who.as_hash());
        }
        Some(e.finish())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut dec = Decoder::new(bytes);
        let owner = Address::from_hash(dec.get_hash().map_err(bad_input)?);
        let mut ratings = HashMap::new();
        let n = dec.get_varint().map_err(bad_input)?;
        for _ in 0..n {
            let item = dec.get_hash().map_err(bad_input)?;
            let m = dec.get_varint().map_err(bad_input)?;
            let mut rs = BTreeMap::new();
            for _ in 0..m {
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                rs.insert(who, dec.get_u8().map_err(bad_input)?);
            }
            ratings.insert(item, rs);
        }
        let mut reputation = HashMap::new();
        let n = dec.get_varint().map_err(bad_input)?;
        for _ in 0..n {
            let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
            reputation.insert(who, dec.get_u64().map_err(bad_input)?);
        }
        let policy = match dec.get_u8().map_err(bad_input)? {
            0 => None,
            1 => Some(DefensePolicy {
                min_bond: dec.get_u64().map_err(bad_input)?,
                decay_bps: dec.get_u64().map_err(bad_input)?,
                slash_bps: dec.get_u64().map_err(bad_input)?,
            }),
            other => return Err(format!("bad policy tag {other}")),
        };
        let get_stake_map = |dec: &mut Decoder| -> Result<HashMap<Address, u64>, String> {
            let n = dec.get_varint().map_err(bad_input)?;
            let mut map = HashMap::new();
            for _ in 0..n {
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                map.insert(who, dec.get_u64().map_err(bad_input)?);
            }
            Ok(map)
        };
        let free_stake = get_stake_map(&mut dec)?;
        let bonded_stake = get_stake_map(&mut dec)?;
        let treasury = dec.get_u64().map_err(bad_input)?;
        let mut quarantined = HashSet::new();
        let n = dec.get_varint().map_err(bad_input)?;
        for _ in 0..n {
            quarantined.insert(Address::from_hash(dec.get_hash().map_err(bad_input)?));
        }
        dec.expect_end().map_err(bad_input)?;
        self.owner = owner;
        self.ratings = ratings;
        self.reputation = reputation;
        self.policy = policy;
        self.free_stake = free_stake;
        self.bonded_stake = bonded_stake;
        self.treasury = treasury;
        self.quarantined = quarantined;
        Ok(())
    }

    fn call(&mut self, caller: &Address, input: &[u8]) -> Result<Vec<u8>, String> {
        let mut dec = Decoder::new(input);
        let op = dec.get_u8().map_err(bad_input)?;
        match op {
            0 => {
                let item = dec.get_hash().map_err(bad_input)?;
                let score = dec.get_u8().map_err(bad_input)?;
                if score > 100 {
                    return Err(format!("score {score} out of range 0..=100"));
                }
                if self.policy.is_some() && self.quarantined.contains(caller) {
                    return Err("caller is quarantined".into());
                }
                self.ratings.entry(item).or_default().insert(*caller, score);
                Ok(Vec::new())
            }
            1 => {
                let item = dec.get_hash().map_err(bad_input)?;
                let (count, mean) = self.ranking(&item);
                let mut out = Vec::with_capacity(16);
                out.extend_from_slice(&count.to_le_bytes());
                out.extend_from_slice(&mean.to_le_bytes());
                Ok(out)
            }
            2 => {
                if *caller != self.owner {
                    return Err("only the owner may set reputation".into());
                }
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                let rep = dec.get_u64().map_err(bad_input)?;
                self.reputation.insert(who, rep);
                Ok(Vec::new())
            }
            3 => {
                let item = dec.get_hash().map_err(bad_input)?;
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                let score = self
                    .ratings
                    .get(&item)
                    .and_then(|rs| rs.get(&who))
                    .copied()
                    .unwrap_or(0xff);
                Ok(vec![score])
            }
            4 => {
                if *caller != self.owner {
                    return Err("only the owner may set the defense policy".into());
                }
                self.policy = Some(DefensePolicy {
                    min_bond: dec.get_u64().map_err(bad_input)?,
                    decay_bps: dec.get_u64().map_err(bad_input)?,
                    slash_bps: dec.get_u64().map_err(bad_input)?,
                });
                Ok(Vec::new())
            }
            5 => {
                if *caller != self.owner {
                    return Err("only the owner may grant stake".into());
                }
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                let amount = dec.get_u64().map_err(bad_input)?;
                if amount == 0 {
                    return Err("grant amount must be positive".into());
                }
                *self.free_stake.entry(who).or_insert(0) += amount;
                Ok(Vec::new())
            }
            6 => {
                let amount = dec.get_u64().map_err(bad_input)?;
                if amount == 0 {
                    return Err("bond amount must be positive".into());
                }
                let free = self.free_stake.entry(*caller).or_insert(0);
                if *free < amount {
                    return Err(format!(
                        "insufficient free stake: have {free}, need {amount}"
                    ));
                }
                *free -= amount;
                *self.bonded_stake.entry(*caller).or_insert(0) += amount;
                Ok(Vec::new())
            }
            7 => {
                if *caller != self.owner {
                    return Err("only the owner may record outcomes".into());
                }
                let item = dec.get_hash().map_err(bad_input)?;
                let factual = dec.get_u8().map_err(bad_input)? != 0;
                let slashed = self.record_outcome(&item, factual);
                Ok(slashed.to_le_bytes().to_vec())
            }
            8 => {
                if *caller != self.owner {
                    return Err("only the owner may quarantine".into());
                }
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                self.quarantined.insert(who);
                Ok(Vec::new())
            }
            9 => {
                if *caller != self.owner {
                    return Err("only the owner may unquarantine".into());
                }
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                self.quarantined.remove(&who);
                Ok(Vec::new())
            }
            10 => {
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                let (free, bonded) = self.stake(&who);
                let mut out = Vec::with_capacity(16);
                out.extend_from_slice(&free.to_le_bytes());
                out.extend_from_slice(&bonded.to_le_bytes());
                Ok(out)
            }
            other => Err(format!("unknown ranking op {other}")),
        }
    }
}

/// Encodes a `SubmitRating` input.
pub fn ranking_submit(item: &Hash256, score: u8) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(0).put_hash(item).put_u8(score);
    e.finish()
}

/// Encodes a `GetRanking` input.
pub fn ranking_get(item: &Hash256) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(1).put_hash(item);
    e.finish()
}

/// Encodes a `SetReputation` input.
pub fn ranking_set_reputation(who: &Address, rep: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(2).put_hash(who.as_hash()).put_u64(rep);
    e.finish()
}

/// Decodes a `GetRanking` output into `(count, weighted mean ×1e-4)`.
pub fn decode_ranking(out: &[u8]) -> Option<(u64, u64)> {
    if out.len() != 16 {
        return None;
    }
    Some((
        u64::from_le_bytes(out[..8].try_into().ok()?),
        u64::from_le_bytes(out[8..].try_into().ok()?),
    ))
}

/// Encodes a `SetPolicy` input (op 4).
pub fn ranking_set_policy(policy: &DefensePolicy) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(4)
        .put_u64(policy.min_bond)
        .put_u64(policy.decay_bps)
        .put_u64(policy.slash_bps);
    e.finish()
}

/// Encodes a `GrantStake` input (op 5).
pub fn ranking_grant_stake(who: &Address, amount: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(5).put_hash(who.as_hash()).put_u64(amount);
    e.finish()
}

/// Encodes a `PostBond` input (op 6).
pub fn ranking_post_bond(amount: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(6).put_u64(amount);
    e.finish()
}

/// Encodes a `RecordOutcome` input (op 7).
pub fn ranking_record_outcome(item: &Hash256, factual: bool) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(7).put_hash(item).put_u8(u8::from(factual));
    e.finish()
}

/// Encodes a `Quarantine` input (op 8).
pub fn ranking_quarantine(who: &Address) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(8).put_hash(who.as_hash());
    e.finish()
}

/// Encodes an `Unquarantine` input (op 9).
pub fn ranking_unquarantine(who: &Address) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(9).put_hash(who.as_hash());
    e.finish()
}

/// Encodes a `GetStake` input (op 10).
pub fn ranking_get_stake(who: &Address) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(10).put_hash(who.as_hash());
    e.finish()
}

/// Decodes a `GetStake` output into `(free, bonded)`.
pub fn decode_stake(out: &[u8]) -> Option<(u64, u64)> {
    if out.len() != 16 {
        return None;
    }
    Some((
        u64::from_le_bytes(out[..8].try_into().ok()?),
        u64::from_le_bytes(out[8..].try_into().ok()?),
    ))
}

// ---------------------------------------------------------------------------
// Incentive contract
// ---------------------------------------------------------------------------

/// Platform-internal incentive points ("economic incentives to reward
/// individuals for flagging behaviors", §V).
///
/// Operations:
/// - `0` Reward(who: hash, amount u64) — owner only
/// - `1` Slash(who: hash, amount u64) — owner only (saturating)
/// - `2` BalanceOf(who: hash) → u64
/// - `3` Transfer(to: hash, amount u64) — moves caller's points
#[derive(Debug)]
pub struct IncentiveContract {
    owner: Address,
    balances: HashMap<Address, u64>,
}

impl IncentiveContract {
    /// Creates the contract administered by `owner`.
    pub fn new(owner: Address) -> Self {
        IncentiveContract {
            owner,
            balances: HashMap::new(),
        }
    }

    /// Current point balance.
    pub fn balance(&self, who: &Address) -> u64 {
        self.balances.get(who).copied().unwrap_or(0)
    }
}

impl BuiltinContract for IncentiveContract {
    fn name(&self) -> &'static str {
        "incentive"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut e = Encoder::new();
        e.put_hash(self.owner.as_hash());
        let mut bals: Vec<(&Address, &u64)> = self.balances.iter().collect();
        bals.sort_by_key(|(a, _)| **a);
        e.put_varint(bals.len() as u64);
        for (who, bal) in bals {
            e.put_hash(who.as_hash()).put_u64(*bal);
        }
        Some(e.finish())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut dec = Decoder::new(bytes);
        let owner = Address::from_hash(dec.get_hash().map_err(bad_input)?);
        let mut balances = HashMap::new();
        let n = dec.get_varint().map_err(bad_input)?;
        for _ in 0..n {
            let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
            balances.insert(who, dec.get_u64().map_err(bad_input)?);
        }
        dec.expect_end().map_err(bad_input)?;
        self.owner = owner;
        self.balances = balances;
        Ok(())
    }

    fn call(&mut self, caller: &Address, input: &[u8]) -> Result<Vec<u8>, String> {
        let mut dec = Decoder::new(input);
        let op = dec.get_u8().map_err(bad_input)?;
        match op {
            0 | 1 => {
                if *caller != self.owner {
                    return Err("only the owner may reward/slash".into());
                }
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                let amount = dec.get_u64().map_err(bad_input)?;
                let bal = self.balances.entry(who).or_insert(0);
                if op == 0 {
                    *bal = bal.saturating_add(amount);
                } else {
                    *bal = bal.saturating_sub(amount);
                }
                Ok(Vec::new())
            }
            2 => {
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                Ok(self.balance(&who).to_le_bytes().to_vec())
            }
            3 => {
                let to = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                let amount = dec.get_u64().map_err(bad_input)?;
                let from_bal = self.balance(caller);
                if from_bal < amount {
                    return Err(format!(
                        "insufficient points: have {from_bal}, need {amount}"
                    ));
                }
                self.balances.insert(*caller, from_bal - amount);
                let to_bal = self.balances.entry(to).or_insert(0);
                *to_bal = to_bal.saturating_add(amount);
                Ok(Vec::new())
            }
            other => Err(format!("unknown incentive op {other}")),
        }
    }
}

/// Encodes a `Reward` input.
pub fn incentive_reward(who: &Address, amount: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(0).put_hash(who.as_hash()).put_u64(amount);
    e.finish()
}

/// Encodes a `Slash` input.
pub fn incentive_slash(who: &Address, amount: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(1).put_hash(who.as_hash()).put_u64(amount);
    e.finish()
}

/// Encodes a `BalanceOf` query.
pub fn incentive_balance(who: &Address) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(2).put_hash(who.as_hash());
    e.finish()
}

/// Encodes a `Transfer` input.
pub fn incentive_transfer(to: &Address, amount: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(3).put_hash(to.as_hash()).put_u64(amount);
    e.finish()
}

// ---------------------------------------------------------------------------
// Factual-database admission
// ---------------------------------------------------------------------------

/// Threshold attestation gate for the factual database (paper §VI: "if the
/// news is verified to be factual, then it can be added into the factual
/// database").
///
/// Operations:
/// - `0` RegisterChecker(who: hash) — owner only
/// - `1` Attest(record: hash) — registered checkers only, deduplicated
/// - `2` IsAdmitted(record) → bool byte
/// - `3` AttestationCount(record) → u64
#[derive(Debug)]
pub struct FactDbAdmission {
    owner: Address,
    threshold: usize,
    checkers: HashSet<Address>,
    attestations: HashMap<Hash256, HashSet<Address>>,
}

impl FactDbAdmission {
    /// Creates the gate: records need `threshold` distinct checker
    /// attestations to be admitted.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(owner: Address, threshold: usize) -> Self {
        assert!(threshold > 0, "admission threshold must be positive");
        FactDbAdmission {
            owner,
            threshold,
            checkers: HashSet::new(),
            attestations: HashMap::new(),
        }
    }

    /// True once `record` has reached the attestation threshold.
    pub fn is_admitted(&self, record: &Hash256) -> bool {
        self.attestations
            .get(record)
            .is_some_and(|s| s.len() >= self.threshold)
    }

    /// Number of distinct attestations for `record`.
    pub fn attestation_count(&self, record: &Hash256) -> usize {
        self.attestations.get(record).map_or(0, HashSet::len)
    }
}

impl BuiltinContract for FactDbAdmission {
    fn name(&self) -> &'static str {
        "factdb-admission"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut e = Encoder::new();
        e.put_hash(self.owner.as_hash())
            .put_u64(self.threshold as u64);
        let mut checkers: Vec<&Address> = self.checkers.iter().collect();
        checkers.sort();
        e.put_varint(checkers.len() as u64);
        for c in checkers {
            e.put_hash(c.as_hash());
        }
        let mut records: Vec<(&Hash256, &HashSet<Address>)> = self.attestations.iter().collect();
        records.sort_by_key(|(h, _)| **h);
        e.put_varint(records.len() as u64);
        for (record, who) in records {
            e.put_hash(record);
            let mut who: Vec<&Address> = who.iter().collect();
            who.sort();
            e.put_varint(who.len() as u64);
            for w in who {
                e.put_hash(w.as_hash());
            }
        }
        Some(e.finish())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut dec = Decoder::new(bytes);
        let owner = Address::from_hash(dec.get_hash().map_err(bad_input)?);
        let threshold = dec.get_u64().map_err(bad_input)? as usize;
        if threshold == 0 {
            return Err("admission threshold must be positive".into());
        }
        let mut checkers = HashSet::new();
        let n = dec.get_varint().map_err(bad_input)?;
        for _ in 0..n {
            checkers.insert(Address::from_hash(dec.get_hash().map_err(bad_input)?));
        }
        let mut attestations = HashMap::new();
        let n = dec.get_varint().map_err(bad_input)?;
        for _ in 0..n {
            let record = dec.get_hash().map_err(bad_input)?;
            let m = dec.get_varint().map_err(bad_input)?;
            let mut who = HashSet::new();
            for _ in 0..m {
                who.insert(Address::from_hash(dec.get_hash().map_err(bad_input)?));
            }
            attestations.insert(record, who);
        }
        dec.expect_end().map_err(bad_input)?;
        self.owner = owner;
        self.threshold = threshold;
        self.checkers = checkers;
        self.attestations = attestations;
        Ok(())
    }

    fn call(&mut self, caller: &Address, input: &[u8]) -> Result<Vec<u8>, String> {
        let mut dec = Decoder::new(input);
        let op = dec.get_u8().map_err(bad_input)?;
        match op {
            0 => {
                if *caller != self.owner {
                    return Err("only the owner may register checkers".into());
                }
                let who = Address::from_hash(dec.get_hash().map_err(bad_input)?);
                self.checkers.insert(who);
                Ok(Vec::new())
            }
            1 => {
                if !self.checkers.contains(caller) {
                    return Err("caller is not a registered fact checker".into());
                }
                let record = dec.get_hash().map_err(bad_input)?;
                self.attestations.entry(record).or_default().insert(*caller);
                Ok(vec![self.is_admitted(&record) as u8])
            }
            2 => {
                let record = dec.get_hash().map_err(bad_input)?;
                Ok(vec![self.is_admitted(&record) as u8])
            }
            3 => {
                let record = dec.get_hash().map_err(bad_input)?;
                Ok((self.attestation_count(&record) as u64)
                    .to_le_bytes()
                    .to_vec())
            }
            other => Err(format!("unknown admission op {other}")),
        }
    }
}

/// Encodes a `RegisterChecker` input.
pub fn admission_register_checker(who: &Address) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(0).put_hash(who.as_hash());
    e.finish()
}

/// Encodes an `Attest` input.
pub fn admission_attest(record: &Hash256) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(1).put_hash(record);
    e.finish()
}

/// Encodes an `IsAdmitted` query.
pub fn admission_is_admitted(record: &Hash256) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(2).put_hash(record);
    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_crypto::sha256::sha256;
    use tn_crypto::Keypair;

    fn addr(seed: &[u8]) -> Address {
        Keypair::from_seed(seed).address()
    }

    #[test]
    fn newsroom_two_layer_flow() {
        let mut reg = NewsroomRegistry::new();
        let owner = addr(b"owner");
        let journo = addr(b"journalist");
        let stranger = addr(b"stranger");

        let out = reg
            .call(&owner, &newsroom_register_platform("Daily Facts"))
            .unwrap();
        let pid = u64::from_le_bytes(out.try_into().unwrap());
        let out = reg
            .call(&owner, &newsroom_create_room(pid, "elections"))
            .unwrap();
        let rid = u64::from_le_bytes(out.try_into().unwrap());

        // Stranger cannot authorize.
        assert!(reg
            .call(&stranger, &newsroom_authorize(rid, &journo))
            .is_err());
        // Owner authorizes journalist.
        reg.call(&owner, &newsroom_authorize(rid, &journo)).unwrap();
        assert_eq!(
            reg.call(&stranger, &newsroom_is_authorized(rid, &journo))
                .unwrap(),
            vec![1]
        );
        assert_eq!(
            reg.call(&stranger, &newsroom_is_authorized(rid, &stranger))
                .unwrap(),
            vec![0]
        );
        // Owner is implicitly authorized.
        assert_eq!(
            reg.call(&stranger, &newsroom_is_authorized(rid, &owner))
                .unwrap(),
            vec![1]
        );
        // Revoke.
        reg.call(&owner, &newsroom_revoke(rid, &journo)).unwrap();
        assert_eq!(
            reg.call(&stranger, &newsroom_is_authorized(rid, &journo))
                .unwrap(),
            vec![0]
        );
    }

    #[test]
    fn newsroom_rejects_bad_ops_and_unknown_ids() {
        let mut reg = NewsroomRegistry::new();
        let a = addr(b"a");
        assert!(reg.call(&a, &[9]).is_err());
        assert!(reg.call(&a, &newsroom_create_room(77, "t")).is_err());
        assert!(reg.call(&a, &newsroom_register_platform("")).is_err());
    }

    #[test]
    fn ranking_weighted_mean() {
        let owner = addr(b"platform");
        let mut rk = RankingContract::new(owner);
        let item = sha256(b"story");
        let expert = addr(b"expert");
        let troll = addr(b"troll");

        rk.call(&owner, &ranking_set_reputation(&expert, 900))
            .unwrap();
        rk.call(&owner, &ranking_set_reputation(&troll, 10))
            .unwrap();
        rk.call(&expert, &ranking_submit(&item, 90)).unwrap();
        rk.call(&troll, &ranking_submit(&item, 0)).unwrap();

        let out = rk.call(&addr(b"reader"), &ranking_get(&item)).unwrap();
        let (count, mean) = decode_ranking(&out).unwrap();
        assert_eq!(count, 2);
        // (900*90 + 10*0) / 910 = 89.01 → 890109 in 1e-4 units.
        assert!((880_000..900_000).contains(&mean), "mean={mean}");
    }

    #[test]
    fn ranking_resubmission_overwrites() {
        let owner = addr(b"p");
        let mut rk = RankingContract::new(owner);
        let item = sha256(b"x");
        let rater = addr(b"r");
        rk.call(&rater, &ranking_submit(&item, 10)).unwrap();
        rk.call(&rater, &ranking_submit(&item, 80)).unwrap();
        let (count, mean) = decode_ranking(&rk.call(&rater, &ranking_get(&item)).unwrap()).unwrap();
        assert_eq!(count, 1);
        assert_eq!(mean, 800_000);
    }

    #[test]
    fn ranking_guards() {
        let owner = addr(b"p");
        let mut rk = RankingContract::new(owner);
        let item = sha256(b"x");
        assert!(rk.call(&addr(b"r"), &ranking_submit(&item, 101)).is_err());
        assert!(rk
            .call(&addr(b"not owner"), &ranking_set_reputation(&addr(b"r"), 5))
            .is_err());
        // Unrated item: zero count.
        let (count, mean) = decode_ranking(&rk.call(&owner, &ranking_get(&item)).unwrap()).unwrap();
        assert_eq!((count, mean), (0, 0));
    }

    #[test]
    fn incentive_reward_slash_transfer() {
        let owner = addr(b"platform");
        let mut inc = IncentiveContract::new(owner);
        let v = addr(b"validator");
        let w = addr(b"other");

        inc.call(&owner, &incentive_reward(&v, 100)).unwrap();
        assert_eq!(inc.balance(&v), 100);
        inc.call(&owner, &incentive_slash(&v, 30)).unwrap();
        assert_eq!(inc.balance(&v), 70);
        // Over-slash saturates.
        inc.call(&owner, &incentive_slash(&v, 1000)).unwrap();
        assert_eq!(inc.balance(&v), 0);

        inc.call(&owner, &incentive_reward(&v, 50)).unwrap();
        inc.call(&v, &incentive_transfer(&w, 20)).unwrap();
        assert_eq!(inc.balance(&v), 30);
        assert_eq!(inc.balance(&w), 20);
        assert!(inc.call(&v, &incentive_transfer(&w, 1000)).is_err());
        assert!(inc.call(&v, &incentive_reward(&v, 1)).is_err());

        let out = inc.call(&w, &incentive_balance(&v)).unwrap();
        assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 30);
    }

    #[test]
    fn admission_threshold() {
        let owner = addr(b"gov");
        let mut adm = FactDbAdmission::new(owner, 2);
        let c1 = addr(b"checker1");
        let c2 = addr(b"checker2");
        let record = sha256(b"speech record");

        adm.call(&owner, &admission_register_checker(&c1)).unwrap();
        adm.call(&owner, &admission_register_checker(&c2)).unwrap();

        // Unregistered cannot attest.
        assert!(adm
            .call(&addr(b"rando"), &admission_attest(&record))
            .is_err());

        assert_eq!(adm.call(&c1, &admission_attest(&record)).unwrap(), vec![0]);
        // Duplicate attestation does not double-count.
        assert_eq!(adm.call(&c1, &admission_attest(&record)).unwrap(), vec![0]);
        assert_eq!(adm.attestation_count(&record), 1);
        assert_eq!(adm.call(&c2, &admission_attest(&record)).unwrap(), vec![1]);
        assert!(adm.is_admitted(&record));
        assert_eq!(
            adm.call(&owner, &admission_is_admitted(&record)).unwrap(),
            vec![1]
        );
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn admission_zero_threshold_panics() {
        let _ = FactDbAdmission::new(addr(b"x"), 0);
    }

    #[test]
    fn ranking_defense_policy_gates_weight_on_bond_and_quarantine() {
        let owner = addr(b"platform");
        let mut rk = RankingContract::new(owner);
        let honest = addr(b"honest");
        let sybil = addr(b"sybil");
        let item = sha256(b"contested");

        // Legacy mode: both votes carry the default weight.
        rk.call(&honest, &ranking_submit(&item, 80)).unwrap();
        rk.call(&sybil, &ranking_submit(&item, 0)).unwrap();
        assert_eq!(rk.ranking(&item), (2, 40_0000));

        // Policy on: nobody bonded yet, so all weights collapse to zero.
        let policy = DefensePolicy {
            min_bond: 50,
            decay_bps: 9_000,
            slash_bps: 2_500,
        };
        assert!(rk.call(&honest, &ranking_set_policy(&policy)).is_err());
        rk.call(&owner, &ranking_set_policy(&policy)).unwrap();
        assert_eq!(rk.policy(), Some(policy));
        assert_eq!(rk.ranking(&item), (2, 0));

        // Honest bonds; sybil does not → only the honest vote counts.
        assert!(rk
            .call(&honest, &ranking_grant_stake(&honest, 100))
            .is_err());
        rk.call(&owner, &ranking_grant_stake(&honest, 100)).unwrap();
        assert!(rk.call(&honest, &ranking_post_bond(200)).is_err());
        rk.call(&honest, &ranking_post_bond(100)).unwrap();
        assert_eq!(rk.stake(&honest), (0, 100));
        assert_eq!(rk.ranking(&item), (2, 80_0000));

        // Quarantine zeroes the honest vote too; unquarantine restores.
        rk.call(&owner, &ranking_quarantine(&honest)).unwrap();
        assert!(rk.is_quarantined(&honest));
        assert_eq!(rk.ranking(&item), (2, 0));
        assert!(rk.call(&honest, &ranking_submit(&item, 90)).is_err());
        rk.call(&owner, &ranking_unquarantine(&honest)).unwrap();
        assert_eq!(rk.ranking(&item), (2, 80_0000));

        let out = rk.call(&sybil, &ranking_get_stake(&honest)).unwrap();
        assert_eq!(decode_stake(&out), Some((0, 100)));
    }

    #[test]
    fn ranking_record_outcome_decays_and_slashes() {
        let owner = addr(b"platform");
        let mut rk = RankingContract::new(owner);
        let right = addr(b"right");
        let wrong = addr(b"wrong");
        let neutral = addr(b"neutral");
        let item = sha256(b"checked story");

        rk.call(
            &owner,
            &ranking_set_policy(&DefensePolicy {
                min_bond: 50,
                decay_bps: 9_000,
                slash_bps: 2_500,
            }),
        )
        .unwrap();
        for who in [&right, &wrong, &neutral] {
            rk.call(&owner, &ranking_grant_stake(who, 100)).unwrap();
            rk.call(who, &ranking_post_bond(100)).unwrap();
        }
        rk.call(&right, &ranking_submit(&item, 90)).unwrap();
        rk.call(&wrong, &ranking_submit(&item, 10)).unwrap();
        rk.call(&neutral, &ranking_submit(&item, 50)).unwrap();

        let out = rk
            .call(&owner, &ranking_record_outcome(&item, true))
            .unwrap();
        let slashed = u64::from_le_bytes(out.try_into().unwrap());
        assert_eq!(slashed, 25, "25% of the wrong rater's 100 bond");
        // Agreed: default 100 decays to 100, +20. Contradicted: -40.
        assert_eq!(rk.vote_weight(&right), 120);
        assert_eq!(rk.vote_weight(&wrong), 60);
        assert_eq!(rk.vote_weight(&neutral), 100, "score 50 is untouched");
        assert_eq!(rk.stake(&wrong), (0, 75));
        assert_eq!(rk.treasury(), 25);

        // Repeated contradictions drain the bond below min_bond → weight 0.
        for _ in 0..6 {
            rk.call(&owner, &ranking_record_outcome(&item, true))
                .unwrap();
        }
        assert!(rk.stake(&wrong).1 < 50, "bond {:?}", rk.stake(&wrong));
        assert_eq!(rk.vote_weight(&wrong), 0);
        // Stake conservation: grants = free + bonded + treasury.
        let circulating: u64 = [&right, &wrong, &neutral]
            .iter()
            .map(|w| {
                let (f, b) = rk.stake(w);
                f + b
            })
            .sum::<u64>()
            + rk.treasury();
        assert_eq!(circulating, 300);

        // Outcome recording is a no-op without a policy.
        let mut legacy = RankingContract::new(owner);
        legacy.call(&right, &ranking_submit(&item, 10)).unwrap();
        let out = legacy
            .call(&owner, &ranking_record_outcome(&item, true))
            .unwrap();
        assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 0);
        assert_eq!(legacy.vote_weight(&right), DEFAULT_REPUTATION);
    }

    #[test]
    fn ranking_defense_state_roundtrips_through_checkpoint() {
        let owner = addr(b"platform");
        let mut rk = RankingContract::new(owner);
        let a = addr(b"a");
        let item = sha256(b"story");
        rk.call(
            &owner,
            &ranking_set_policy(&DefensePolicy {
                min_bond: 10,
                decay_bps: 9_500,
                slash_bps: 1_000,
            }),
        )
        .unwrap();
        rk.call(&owner, &ranking_grant_stake(&a, 40)).unwrap();
        rk.call(&a, &ranking_post_bond(15)).unwrap();
        rk.call(&a, &ranking_submit(&item, 20)).unwrap();
        rk.call(&owner, &ranking_record_outcome(&item, true))
            .unwrap();
        rk.call(&owner, &ranking_quarantine(&a)).unwrap();

        let blob = rk.save_state().unwrap();
        let mut restored = RankingContract::new(addr(b"other"));
        restored.load_state(&blob).unwrap();
        assert_eq!(restored.save_state().unwrap(), blob);
        assert_eq!(restored.policy(), rk.policy());
        assert_eq!(restored.stake(&a), rk.stake(&a));
        assert_eq!(restored.treasury(), rk.treasury());
        assert!(restored.is_quarantined(&a));
        assert_eq!(restored.ranking(&item), rk.ranking(&item));
    }
}
