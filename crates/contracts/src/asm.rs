//! A tiny two-pass assembler for the contract VM.
//!
//! Makes contract programs legible in tests and examples. Syntax:
//!
//! ```text
//! ; comment
//! label:          ; defines a jump target
//!     push 5
//!     push label  ; pushes the label's byte offset
//!     jmp
//! ```
//!
//! Mnemonics are the lowercase opcode names; `ret` is an alias for
//! `return`. `dup`/`swap` take a decimal depth operand; `push` takes a
//! decimal number or a label.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::vm::Op;

/// Assembly errors with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

enum Item {
    Op(Op),
    PushNum(u64),
    PushLabel(String, usize),
    Depth(Op, u8),
}

/// Assembles source text into bytecode.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line for unknown mnemonics,
/// missing/invalid operands, duplicate or undefined labels.
pub fn assemble(src: &str) -> Result<Vec<u8>, AsmError> {
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut items: Vec<Item> = Vec::new();
    let mut offset: u64 = 0;

    for (lineno, raw) in src.lines().enumerate() {
        let line_num = lineno + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || label.chars().any(char::is_whitespace) {
                return Err(err(line_num, "invalid label"));
            }
            if labels.insert(label.to_string(), offset).is_some() {
                return Err(err(line_num, format!("duplicate label {label:?}")));
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let mnemonic = parts.next().expect("nonempty line");
        let operand = parts.next();
        if parts.next().is_some() {
            return Err(err(line_num, "too many operands"));
        }
        let op = match mnemonic {
            "halt" => Op::Halt,
            "push" => Op::Push,
            "pop" => Op::Pop,
            "dup" => Op::Dup,
            "swap" => Op::Swap,
            "add" => Op::Add,
            "sub" => Op::Sub,
            "mul" => Op::Mul,
            "div" => Op::Div,
            "mod" => Op::Mod,
            "lt" => Op::Lt,
            "gt" => Op::Gt,
            "eq" => Op::Eq,
            "not" => Op::Not,
            "and" => Op::And,
            "or" => Op::Or,
            "xor" => Op::Xor,
            "jmp" => Op::Jmp,
            "jmpif" => Op::JmpIf,
            "sload" => Op::SLoad,
            "sstore" => Op::SStore,
            "caller" => Op::Caller,
            "input" => Op::Input,
            "inputlen" => Op::InputLen,
            "ret" | "return" => Op::Return,
            other => return Err(err(line_num, format!("unknown mnemonic {other:?}"))),
        };
        match op {
            Op::Push => {
                let operand = operand.ok_or_else(|| err(line_num, "push requires an operand"))?;
                offset += 9;
                match operand.parse::<u64>() {
                    Ok(n) => items.push(Item::PushNum(n)),
                    Err(_) => items.push(Item::PushLabel(operand.to_string(), line_num)),
                }
            }
            Op::Dup | Op::Swap => {
                let operand = operand.ok_or_else(|| err(line_num, "dup/swap require a depth"))?;
                let depth: u8 = operand
                    .parse()
                    .map_err(|_| err(line_num, format!("bad depth {operand:?}")))?;
                offset += 2;
                items.push(Item::Depth(op, depth));
            }
            _ => {
                if operand.is_some() {
                    return Err(err(line_num, format!("{mnemonic} takes no operand")));
                }
                offset += 1;
                items.push(Item::Op(op));
            }
        }
    }

    let mut code = Vec::with_capacity(offset as usize);
    for item in items {
        match item {
            Item::Op(op) => code.push(op as u8),
            Item::PushNum(n) => {
                code.push(Op::Push as u8);
                code.extend_from_slice(&n.to_le_bytes());
            }
            Item::PushLabel(name, line) => {
                let target = *labels
                    .get(&name)
                    .ok_or_else(|| err(line, format!("undefined label {name:?}")))?;
                code.push(Op::Push as u8);
                code.extend_from_slice(&target.to_le_bytes());
            }
            Item::Depth(op, d) => {
                code.push(op as u8);
                code.push(d);
            }
        }
    }
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::validate;

    #[test]
    fn assembles_and_validates() {
        let code = assemble("push 1\npush 2\nadd\npush 1\nret").unwrap();
        assert_eq!(code.len(), 9 + 9 + 1 + 9 + 1);
        validate(&code).expect("valid bytecode");
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let code = assemble("start:\npush end\njmp\nend:\nhalt").unwrap();
        validate(&code).expect("valid");
        // `end` label should be at offset 9 (push) + 1 (jmp) = 10.
        assert_eq!(&code[1..9], &10u64.to_le_bytes()[..8]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let code = assemble("; header\n\n  push 1 ; trailing\n  halt\n").unwrap();
        assert_eq!(code.len(), 10);
    }

    #[test]
    fn error_cases_carry_line_numbers() {
        assert_eq!(assemble("push").unwrap_err().line, 1);
        assert_eq!(assemble("halt\nbogus").unwrap_err().line, 2);
        assert_eq!(assemble("halt\nhalt 3").unwrap_err().line, 2);
        assert_eq!(assemble("dup x").unwrap_err().line, 1);
        assert_eq!(assemble("push nowhere\njmp").unwrap_err().line, 1);
        assert_eq!(assemble("a:\na:\n").unwrap_err().line, 2);
        assert_eq!(assemble("push 1 2").unwrap_err().line, 1);
    }
}
