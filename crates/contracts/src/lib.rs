//! # tn-contracts
//!
//! Smart-contract execution for the trusting-news chain.
//!
//! The paper puts smart contracts at the center of platform governance:
//! distribution-platform authentication, crowd-source review, incentive
//! payouts and factual-database admission are all "managed and enforced by
//! various smart contracts" (§V), and §VII calls out scalable contract
//! execution as a key challenge. This crate provides:
//!
//! - [`vm`]: a deterministic, gas-metered stack VM with contract-local
//!   storage.
//! - [`asm`]: a two-pass assembler so contract programs stay legible in
//!   tests and examples.
//! - [`executor`]: the [`ContractRegistry`] that deploys bytecode, routes
//!   calls (bytecode or built-in), and implements `tn_chain::TxExecutor`.
//! - [`builtin`]: the four native platform contracts — newsroom registry,
//!   crowd ranking, incentives, factual-DB admission.
//! - [`parallel`]: conflict-free parallel execution of independent calls,
//!   reproducing the authors' ICDCS 2018 parallel-blockchain idea.
//!
//! # Example
//!
//! ```
//! use tn_contracts::asm::assemble;
//! use tn_contracts::executor::ContractRegistry;
//! use tn_chain::state::TxExecutor;
//! use tn_crypto::Keypair;
//!
//! # fn main() -> Result<(), String> {
//! let mut reg = ContractRegistry::new();
//! let alice = Keypair::from_seed(b"alice").address();
//! let code = assemble("push 2\npush 2\nadd\npush 1\nret").map_err(|e| e.to_string())?;
//! let addr = reg.deploy(&alice, 0, &code)?;
//! let (_gas, out) = reg.call(&alice, &addr, &[], 1_000)?;
//! assert_eq!(out, 4u64.to_le_bytes().to_vec());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod builtin;
pub mod executor;
pub mod parallel;
pub mod vm;

pub use builtin::{
    BuiltinContract, DefensePolicy, FactDbAdmission, IncentiveContract, NewsroomRegistry,
    RankingContract,
};
pub use executor::{builtin_address, contract_address, ContractEntry, ContractRegistry};
pub use parallel::{execute_parallel, CallTask, TaskResult};
pub use vm::{ExecEnv, ExecOutcome, Op, VmError, Word};
