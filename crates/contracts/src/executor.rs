//! The contract registry: deploys and executes contracts, plugging into
//! `tn-chain` through the [`TxExecutor`] trait.

use std::collections::{BTreeMap, HashMap};

use tn_chain::state::TxExecutor;
use tn_crypto::sha256::tagged_hash;
use tn_crypto::{Address, Hash256};
use tn_telemetry::TelemetrySink;
use tn_trace::{lanes, TraceId, TraceSink};

use crate::builtin::BuiltinContract;
use crate::vm::{execute, validate, ExecEnv, Word};

/// A deployed bytecode contract: its code and persistent storage.
#[derive(Debug, Clone, Default)]
pub struct ContractEntry {
    /// Validated VM bytecode.
    pub code: Vec<u8>,
    /// Word-addressed persistent storage.
    pub storage: BTreeMap<Word, Word>,
}

/// Derives the deterministic address of a contract deployed by
/// `deployer` at `nonce`.
pub fn contract_address(deployer: &Address, nonce: u64) -> Address {
    let mut data = Vec::with_capacity(40);
    data.extend_from_slice(deployer.as_hash().as_bytes());
    data.extend_from_slice(&nonce.to_le_bytes());
    Address::from_hash(tagged_hash("TN/contract", &data))
}

/// Derives the well-known address of a named built-in contract.
pub fn builtin_address(name: &str) -> Address {
    Address::from_hash(tagged_hash("TN/builtin", name.as_bytes()))
}

/// Converts call-input bytes into VM words (8-byte little-endian chunks,
/// final chunk zero-padded).
pub fn input_words(input: &[u8]) -> Vec<Word> {
    input
        .chunks(8)
        .map(|c| {
            let mut b = [0u8; 8];
            b[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(b)
        })
        .collect()
}

/// Converts VM output words back to bytes.
pub fn output_bytes(words: &[Word]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// The registry of bytecode and built-in contracts.
///
/// Implements [`TxExecutor`] so a `ChainStore` can execute
/// `ContractDeploy`/`ContractCall` payloads; also callable directly for
/// read-only queries from the platform layer.
#[derive(Debug, Default)]
pub struct ContractRegistry {
    contracts: HashMap<Address, ContractEntry>,
    builtins: HashMap<Address, Box<dyn BuiltinContract>>,
    telemetry: TelemetrySink,
    trace: TraceSink,
}

impl ContractRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes execution metrics — call/deploy counters, per-contract gas
    /// (`contracts.gas.<builtin name or address>`), and the
    /// `contracts.exec_ns` histogram — to `sink`. Disabled by default.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Routes per-call `contract.call` spans to `sink`. Each span's trace
    /// is derived from the contract address, so all calls to one contract
    /// line up under one trace in the export.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Installs a built-in contract at its well-known address, returning
    /// that address.
    pub fn install_builtin(&mut self, contract: Box<dyn BuiltinContract>) -> Address {
        let addr = builtin_address(contract.name());
        self.builtins.insert(addr, contract);
        addr
    }

    /// Access a built-in by address (for typed in-process inspection).
    pub fn builtin(&self, addr: &Address) -> Option<&dyn BuiltinContract> {
        self.builtins.get(addr).map(AsRef::as_ref)
    }

    /// Mutable access to a built-in.
    pub fn builtin_mut(&mut self, addr: &Address) -> Option<&mut Box<dyn BuiltinContract>> {
        self.builtins.get_mut(addr)
    }

    /// Looks up a deployed bytecode contract.
    pub fn contract(&self, addr: &Address) -> Option<&ContractEntry> {
        self.contracts.get(addr)
    }

    /// Removes a contract entry (used by the parallel executor to hand
    /// ownership of disjoint state to worker threads).
    pub fn take_contract(&mut self, addr: &Address) -> Option<ContractEntry> {
        self.contracts.remove(addr)
    }

    /// Re-inserts a contract entry previously taken with
    /// [`Self::take_contract`].
    pub fn put_contract(&mut self, addr: Address, entry: ContractEntry) {
        self.contracts.insert(addr, entry);
    }

    /// Number of deployed bytecode contracts.
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// True when no bytecode contracts are deployed.
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }

    /// Hash of the full contract-storage state, for cross-node agreement
    /// checks in tests.
    pub fn storage_root(&self) -> Hash256 {
        let mut entries: Vec<(&Address, &ContractEntry)> = self.contracts.iter().collect();
        entries.sort_by_key(|(a, _)| **a);
        let mut data = Vec::new();
        for (addr, entry) in entries {
            data.extend_from_slice(addr.as_hash().as_bytes());
            for (k, v) in &entry.storage {
                data.extend_from_slice(&k.to_le_bytes());
                data.extend_from_slice(&v.to_le_bytes());
            }
        }
        tagged_hash("TN/contracts-root", &data)
    }

    /// Serializes the full registry — deployed bytecode contracts with
    /// their storage, plus the save-states of every installed built-in —
    /// for a chain checkpoint. Deterministic: identical registry state
    /// always produces identical bytes.
    pub fn save_state(&self) -> Vec<u8> {
        use tn_chain::codec::Encoder;
        let mut e = Encoder::new();
        let mut entries: Vec<(&Address, &ContractEntry)> = self.contracts.iter().collect();
        entries.sort_by_key(|(a, _)| **a);
        e.put_varint(entries.len() as u64);
        for (addr, entry) in entries {
            e.put_hash(addr.as_hash())
                .put_bytes(&entry.code)
                .put_varint(entry.storage.len() as u64);
            for (k, v) in &entry.storage {
                e.put_u64(*k).put_u64(*v);
            }
        }
        let mut builtins: Vec<(&'static str, Vec<u8>)> = self
            .builtins
            .values()
            .filter_map(|b| b.save_state().map(|s| (b.name(), s)))
            .collect();
        builtins.sort_by_key(|(name, _)| *name);
        e.put_varint(builtins.len() as u64);
        for (name, state) in builtins {
            e.put_str(name).put_bytes(&state);
        }
        e.finish()
    }

    /// Restores a registry from [`ContractRegistry::save_state`] bytes.
    /// Built-ins must already be installed (the bootstrap installs them
    /// before recovery restores their state); a saved built-in with no
    /// installed counterpart is an error.
    ///
    /// # Errors
    ///
    /// A message when the blob is malformed or names an uninstalled
    /// built-in.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        use tn_chain::codec::Decoder;
        let err = |e: tn_chain::codec::DecodeError| format!("malformed registry state: {e}");
        let mut dec = Decoder::new(bytes);
        let mut contracts = HashMap::new();
        let n = dec.get_varint().map_err(err)?;
        for _ in 0..n {
            let addr = Address::from_hash(dec.get_hash().map_err(err)?);
            let code = dec.get_bytes().map_err(err)?;
            let m = dec.get_varint().map_err(err)?;
            let mut storage = BTreeMap::new();
            for _ in 0..m {
                let k = dec.get_u64().map_err(err)?;
                let v = dec.get_u64().map_err(err)?;
                storage.insert(k, v);
            }
            contracts.insert(addr, ContractEntry { code, storage });
        }
        let n = dec.get_varint().map_err(err)?;
        for _ in 0..n {
            let name = dec.get_str().map_err(err)?;
            let state = dec.get_bytes().map_err(err)?;
            let builtin = self
                .builtins
                .values_mut()
                .find(|b| b.name() == name)
                .ok_or_else(|| format!("checkpointed built-in {name} is not installed"))?;
            builtin.load_state(&state)?;
        }
        dec.expect_end().map_err(err)?;
        self.contracts = contracts;
        Ok(())
    }
}

impl ContractRegistry {
    fn call_inner(
        &mut self,
        caller: &Address,
        contract: &Address,
        input: &[u8],
        gas_limit: u64,
    ) -> Result<(u64, Vec<u8>), String> {
        if let Some(b) = self.builtins.get_mut(contract) {
            // Built-ins charge flat gas: 1 per input byte + 10 base.
            let gas = 10 + input.len() as u64;
            if gas > gas_limit {
                return Err("out of gas (builtin)".into());
            }
            let out = b.call(caller, input)?;
            return Ok((gas, out));
        }
        let entry = self
            .contracts
            .get(contract)
            .ok_or_else(|| format!("no contract at {}", contract.short()))?;
        let env = ExecEnv {
            caller: caller.as_hash().to_u64_prefix(),
            input: input_words(input),
            gas_limit,
        };
        // Execute on a storage clone so failed calls leave state untouched.
        let mut storage = entry.storage.clone();
        let outcome = execute(&entry.code, &mut storage, &env).map_err(|e| e.to_string())?;
        self.contracts.get_mut(contract).expect("checked").storage = storage;
        Ok((outcome.gas_used, output_bytes(&outcome.output)))
    }
}

impl TxExecutor for ContractRegistry {
    fn deploy(&mut self, deployer: &Address, nonce: u64, code: &[u8]) -> Result<Address, String> {
        validate(code).map_err(|e| {
            self.telemetry.incr("contracts.deploy_failures");
            format!("invalid bytecode: {e}")
        })?;
        let addr = contract_address(deployer, nonce);
        if self.contracts.contains_key(&addr) || self.builtins.contains_key(&addr) {
            self.telemetry.incr("contracts.deploy_failures");
            return Err(format!("address collision at {}", addr.short()));
        }
        self.contracts.insert(
            addr,
            ContractEntry {
                code: code.to_vec(),
                storage: BTreeMap::new(),
            },
        );
        self.telemetry.incr("contracts.deploys");
        Ok(addr)
    }

    fn call(
        &mut self,
        caller: &Address,
        contract: &Address,
        input: &[u8],
        gas_limit: u64,
    ) -> Result<(u64, Vec<u8>), String> {
        let telemetry = self.telemetry.clone();
        let _span = telemetry.span("contracts.exec_ns");
        let trace = self.trace.clone();
        let c0 = trace.now_ns();
        let result = self.call_inner(caller, contract, input, gas_limit);
        if trace.is_enabled() {
            let gas = result.as_ref().map(|(gas, _)| *gas).unwrap_or(0);
            trace.complete(
                TraceId::from_seed(contract.as_hash().as_bytes()),
                "contract.call",
                0,
                lanes::CONTRACTS,
                c0,
                &[("gas", gas), ("ok", result.is_ok() as u64)],
            );
        }
        match &result {
            Ok((gas, _)) => {
                telemetry.incr("contracts.calls");
                telemetry.add("contracts.gas_total", *gas);
                if telemetry.is_enabled() {
                    // Per-contract gas attribution: builtins by name,
                    // bytecode contracts by short address.
                    let label = self
                        .builtins
                        .get(contract)
                        .map(|b| b.name().to_string())
                        .unwrap_or_else(|| contract.short());
                    telemetry.add(&format!("contracts.gas.{label}"), *gas);
                }
            }
            Err(_) => telemetry.incr("contracts.call_failures"),
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use tn_chain::prelude::*;
    use tn_crypto::Keypair;

    fn counter_code() -> Vec<u8> {
        // storage[0] += 1; return storage[0]
        assemble("push 0\npush 0\nsload\npush 1\nadd\nsstore\npush 0\nsload\npush 1\nret").unwrap()
    }

    #[test]
    fn deploy_and_call_via_registry() {
        let mut reg = ContractRegistry::new();
        let alice = Keypair::from_seed(b"alice").address();
        let addr = reg.deploy(&alice, 0, &counter_code()).unwrap();
        let (gas, out) = reg.call(&alice, &addr, &[], 1000).unwrap();
        assert!(gas > 0);
        assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 1);
        let (_, out) = reg.call(&alice, &addr, &[], 1000).unwrap();
        assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 2);
    }

    #[test]
    fn deploy_rejects_invalid_bytecode() {
        let mut reg = ContractRegistry::new();
        let a = Keypair::from_seed(b"a").address();
        assert!(reg.deploy(&a, 0, &[0xff]).is_err());
    }

    #[test]
    fn failed_call_rolls_back_storage() {
        let mut reg = ContractRegistry::new();
        let a = Keypair::from_seed(b"a").address();
        // Stores then loops forever: runs out of gas after the store.
        let code = assemble("push 5\npush 9\nsstore\nloop:\npush loop\njmp").unwrap();
        let addr = reg.deploy(&a, 0, &code).unwrap();
        assert!(reg.call(&a, &addr, &[], 500).is_err());
        assert!(
            reg.contract(&addr).unwrap().storage.is_empty(),
            "rollback expected"
        );
    }

    #[test]
    fn call_unknown_contract_errors() {
        let mut reg = ContractRegistry::new();
        let a = Keypair::from_seed(b"a").address();
        assert!(reg.call(&a, &builtin_address("nope"), &[], 100).is_err());
    }

    #[test]
    fn contract_addresses_are_deterministic_and_distinct() {
        let a = Keypair::from_seed(b"a").address();
        assert_eq!(contract_address(&a, 0), contract_address(&a, 0));
        assert_ne!(contract_address(&a, 0), contract_address(&a, 1));
        let b = Keypair::from_seed(b"b").address();
        assert_ne!(contract_address(&a, 0), contract_address(&b, 0));
    }

    #[test]
    fn end_to_end_through_chain() {
        // Deploy + call through real transactions and blocks. The proposer
        // executes against a throwaway registry (mirroring its throwaway
        // state clone); the importing validator executes against the
        // authoritative registry.
        let alice = Keypair::from_seed(b"alice");
        let validator = Keypair::from_seed(b"validator");
        let genesis = State::genesis([(alice.address(), 1_000_000)]);
        let mut store = ChainStore::new(genesis, &validator);
        let mut authoritative = ContractRegistry::new();

        let deploy_tx = Transaction::signed(
            &alice,
            0,
            10,
            Payload::ContractDeploy {
                code: counter_code(),
            },
        );
        let expected_addr = contract_address(&alice.address(), 0);
        let block = store.propose(&validator, 1, vec![deploy_tx], &mut ContractRegistry::new());
        let receipts = store.import(block, &mut authoritative).unwrap();
        assert!(receipts[0].success);
        assert_eq!(
            receipts[0].output,
            expected_addr.as_hash().as_bytes().to_vec()
        );
        assert!(authoritative.contract(&expected_addr).is_some());

        let call_tx = Transaction::signed(
            &alice,
            1,
            10,
            Payload::ContractCall {
                contract: expected_addr,
                input: vec![],
                gas_limit: 1000,
            },
        );
        let mut scratch = ContractRegistry::new();
        scratch
            .deploy(&alice.address(), 0, &counter_code())
            .unwrap();
        let block = store.propose(&validator, 2, vec![call_tx], &mut scratch);
        let receipts = store.import(block, &mut authoritative).unwrap();
        assert!(receipts[0].success);
        assert!(receipts[0].gas_used > 0);
        assert_eq!(
            u64::from_le_bytes(receipts[0].output.clone().try_into().unwrap()),
            1
        );
        // The authoritative registry's counter really advanced.
        assert_eq!(
            authoritative
                .contract(&expected_addr)
                .unwrap()
                .storage
                .get(&0),
            Some(&1)
        );
    }

    #[test]
    fn builtin_dispatch_and_gas() {
        use crate::builtin::{incentive_balance, incentive_reward, IncentiveContract};
        let owner = Keypair::from_seed(b"owner").address();
        let mut reg = ContractRegistry::new();
        let addr = reg.install_builtin(Box::new(IncentiveContract::new(owner)));

        let who = Keypair::from_seed(b"v").address();
        let (gas, _) = reg
            .call(&owner, &addr, &incentive_reward(&who, 5), 1000)
            .unwrap();
        assert!(gas >= 10);
        let (_, out) = reg
            .call(&owner, &addr, &incentive_balance(&who), 1000)
            .unwrap();
        assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 5);
        // Gas limit enforced for builtins too.
        assert!(reg
            .call(&owner, &addr, &incentive_balance(&who), 5)
            .is_err());
    }

    #[test]
    fn storage_root_tracks_state() {
        let mut reg = ContractRegistry::new();
        let a = Keypair::from_seed(b"a").address();
        let r0 = reg.storage_root();
        let addr = reg.deploy(&a, 0, &counter_code()).unwrap();
        let r1 = reg.storage_root();
        assert_ne!(r0, r1);
        reg.call(&a, &addr, &[], 1000).unwrap();
        assert_ne!(reg.storage_root(), r1);
    }

    #[test]
    fn registry_save_load_round_trip() {
        use crate::builtin::{
            incentive_reward, ranking_submit, IncentiveContract, RankingContract,
        };
        use tn_crypto::sha256::sha256;

        let owner = Keypair::from_seed(b"owner").address();
        let rater = Keypair::from_seed(b"rater").address();
        let mut reg = ContractRegistry::new();
        let inc = reg.install_builtin(Box::new(IncentiveContract::new(owner)));
        let rank = reg.install_builtin(Box::new(RankingContract::new(owner)));
        let counter = reg.deploy(&owner, 0, &counter_code()).unwrap();
        reg.call(&owner, &counter, &[], 1000).unwrap();
        reg.call(&owner, &inc, &incentive_reward(&rater, 42), 1000)
            .unwrap();
        reg.call(&rater, &rank, &ranking_submit(&sha256(b"story"), 80), 1000)
            .unwrap();

        let saved = reg.save_state();
        // Restoring into a fresh registry with the builtins installed
        // reproduces the exact state (byte-identical re-save, same root).
        let mut restored = ContractRegistry::new();
        restored.install_builtin(Box::new(IncentiveContract::new(owner)));
        restored.install_builtin(Box::new(RankingContract::new(owner)));
        restored.load_state(&saved).unwrap();
        assert_eq!(restored.save_state(), saved);
        assert_eq!(restored.storage_root(), reg.storage_root());
        // Restored bytecode contract continues from its counter value.
        let (_, out) = restored.call(&owner, &counter, &[], 1000).unwrap();
        assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 2);

        // Missing built-in is an error, as is trailing garbage.
        let mut empty = ContractRegistry::new();
        assert!(empty.load_state(&saved).is_err());
        let mut garbled = saved.clone();
        garbled.push(0);
        let mut fresh = ContractRegistry::new();
        fresh.install_builtin(Box::new(IncentiveContract::new(owner)));
        fresh.install_builtin(Box::new(RankingContract::new(owner)));
        assert!(fresh.load_state(&garbled).is_err());
    }

    #[test]
    fn input_word_round_trip() {
        assert_eq!(input_words(&[]), Vec::<Word>::new());
        assert_eq!(input_words(&[1, 0, 0, 0, 0, 0, 0, 0]), vec![1]);
        // Partial chunk zero-pads.
        assert_eq!(input_words(&[0xff]), vec![0xff]);
        let bytes = output_bytes(&[1, 2]);
        assert_eq!(input_words(&bytes), vec![1, 2]);
    }
}
