//! A deterministic, gas-metered stack virtual machine.
//!
//! The paper leans on smart contracts for every governance mechanism
//! ("managed and enforced by various smart contracts", §V) and worries
//! about "scalable smart contract running in blockchain" (§VII). This VM
//! is the execution substrate: a small word-oriented stack machine with
//! per-opcode gas accounting, contract-local storage, and strict
//! determinism (no ambient time, randomness, or I/O).

use std::collections::{BTreeMap, HashSet};
use std::error::Error;
use std::fmt;

/// VM word type.
pub type Word = u64;

/// Maximum operand-stack depth.
pub const MAX_STACK: usize = 1024;

/// Opcodes. `Push` is followed by an 8-byte little-endian immediate;
/// `Dup`/`Swap` by a 1-byte depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Stop execution with empty output.
    Halt = 0,
    /// Push the 8-byte immediate.
    Push = 1,
    /// Discard the top of stack.
    Pop = 2,
    /// Duplicate the value `n` below the top (`dup 0` copies the top).
    Dup = 3,
    /// Swap the top with the value `n` below it.
    Swap = 4,
    /// Pop b, a; push a + b (wrapping).
    Add = 5,
    /// Pop b, a; push a − b (wrapping).
    Sub = 6,
    /// Pop b, a; push a × b (wrapping).
    Mul = 7,
    /// Pop b, a; push a / b. Errors on division by zero.
    Div = 8,
    /// Pop b, a; push a mod b. Errors on modulo by zero.
    Mod = 9,
    /// Pop b, a; push (a < b) as 0/1.
    Lt = 10,
    /// Pop b, a; push (a > b) as 0/1.
    Gt = 11,
    /// Pop b, a; push (a == b) as 0/1.
    Eq = 12,
    /// Pop a; push (a == 0) as 0/1.
    Not = 13,
    /// Pop b, a; push a & b.
    And = 14,
    /// Pop b, a; push a | b.
    Or = 15,
    /// Pop b, a; push a ^ b.
    Xor = 16,
    /// Pop target; jump to that byte offset (must be an opcode boundary).
    Jmp = 17,
    /// Pop target, cond; jump when cond ≠ 0.
    JmpIf = 18,
    /// Pop key; push `storage[key]` (0 when absent).
    SLoad = 19,
    /// Pop value, key; `storage[key] = value`.
    SStore = 20,
    /// Push the caller-id word (first 8 bytes of the caller address).
    Caller = 21,
    /// Pop i; push input word i (0 when out of range).
    Input = 22,
    /// Push the number of input words.
    InputLen = 23,
    /// Pop n, then n words (top = last word); halt with them as output.
    Return = 24,
}

impl Op {
    /// Decodes an opcode byte.
    pub fn from_byte(b: u8) -> Option<Op> {
        if b <= Op::Return as u8 {
            // Safety-free decode via match to stay in safe Rust.
            Some(match b {
                0 => Op::Halt,
                1 => Op::Push,
                2 => Op::Pop,
                3 => Op::Dup,
                4 => Op::Swap,
                5 => Op::Add,
                6 => Op::Sub,
                7 => Op::Mul,
                8 => Op::Div,
                9 => Op::Mod,
                10 => Op::Lt,
                11 => Op::Gt,
                12 => Op::Eq,
                13 => Op::Not,
                14 => Op::And,
                15 => Op::Or,
                16 => Op::Xor,
                17 => Op::Jmp,
                18 => Op::JmpIf,
                19 => Op::SLoad,
                20 => Op::SStore,
                21 => Op::Caller,
                22 => Op::Input,
                23 => Op::InputLen,
                _ => Op::Return,
            })
        } else {
            None
        }
    }

    /// Gas charged for this opcode.
    pub fn gas_cost(self) -> u64 {
        match self {
            Op::SStore => 20,
            Op::SLoad => 5,
            Op::Jmp | Op::JmpIf => 2,
            _ => 1,
        }
    }
}

/// Errors raised during validation or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Unknown opcode byte at the given offset.
    BadOpcode {
        /// Byte value found.
        byte: u8,
        /// Code offset.
        at: usize,
    },
    /// Code ended in the middle of an immediate.
    TruncatedImmediate(usize),
    /// Operand stack underflow.
    StackUnderflow,
    /// Operand stack exceeded [`MAX_STACK`].
    StackOverflow,
    /// Jump to an offset that is not an instruction boundary.
    BadJump(u64),
    /// Division or modulo by zero.
    DivByZero,
    /// Gas limit exhausted.
    OutOfGas,
    /// `Dup`/`Swap` depth beyond current stack.
    BadDepth(u8),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::BadOpcode { byte, at } => write!(f, "bad opcode {byte:#04x} at {at}"),
            VmError::TruncatedImmediate(at) => write!(f, "truncated immediate at {at}"),
            VmError::StackUnderflow => f.write_str("stack underflow"),
            VmError::StackOverflow => f.write_str("stack overflow"),
            VmError::BadJump(t) => write!(f, "jump to invalid target {t}"),
            VmError::DivByZero => f.write_str("division by zero"),
            VmError::OutOfGas => f.write_str("out of gas"),
            VmError::BadDepth(d) => write!(f, "dup/swap depth {d} beyond stack"),
        }
    }
}

impl Error for VmError {}

/// Validates bytecode and returns the set of legal jump targets
/// (instruction-start offsets).
///
/// # Errors
///
/// [`VmError::BadOpcode`] or [`VmError::TruncatedImmediate`].
pub fn validate(code: &[u8]) -> Result<HashSet<usize>, VmError> {
    let mut targets = HashSet::new();
    let mut pc = 0usize;
    while pc < code.len() {
        targets.insert(pc);
        let op = Op::from_byte(code[pc]).ok_or(VmError::BadOpcode {
            byte: code[pc],
            at: pc,
        })?;
        pc += 1;
        match op {
            Op::Push => {
                if pc + 8 > code.len() {
                    return Err(VmError::TruncatedImmediate(pc - 1));
                }
                pc += 8;
            }
            Op::Dup | Op::Swap => {
                if pc + 1 > code.len() {
                    return Err(VmError::TruncatedImmediate(pc - 1));
                }
                pc += 1;
            }
            _ => {}
        }
    }
    Ok(targets)
}

/// Result of a successful execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Words returned by `Return` (empty for `Halt` / falling off the end).
    pub output: Vec<Word>,
    /// Gas consumed.
    pub gas_used: u64,
}

/// Execution environment passed to [`execute`].
#[derive(Debug, Clone)]
pub struct ExecEnv {
    /// Caller-id word (e.g. first 8 bytes of the caller address).
    pub caller: Word,
    /// Input words.
    pub input: Vec<Word>,
    /// Gas limit.
    pub gas_limit: u64,
}

/// Runs `code` against `storage` under `env`.
///
/// # Errors
///
/// Any [`VmError`]; on error the storage may have been partially mutated —
/// callers that need atomicity should run on a clone and merge on success
/// (the executor does exactly that).
pub fn execute(
    code: &[u8],
    storage: &mut BTreeMap<Word, Word>,
    env: &ExecEnv,
) -> Result<ExecOutcome, VmError> {
    let targets = validate(code)?;
    let mut stack: Vec<Word> = Vec::with_capacity(64);
    let mut pc = 0usize;
    let mut gas: u64 = 0;

    macro_rules! pop {
        () => {
            stack.pop().ok_or(VmError::StackUnderflow)?
        };
    }
    macro_rules! push {
        ($v:expr) => {{
            if stack.len() >= MAX_STACK {
                return Err(VmError::StackOverflow);
            }
            stack.push($v);
        }};
    }

    while pc < code.len() {
        let op = Op::from_byte(code[pc]).expect("validated");
        gas += op.gas_cost();
        if gas > env.gas_limit {
            return Err(VmError::OutOfGas);
        }
        pc += 1;
        match op {
            Op::Halt => {
                return Ok(ExecOutcome {
                    output: Vec::new(),
                    gas_used: gas,
                })
            }
            Op::Push => {
                let imm = u64::from_le_bytes(code[pc..pc + 8].try_into().expect("validated"));
                pc += 8;
                push!(imm);
            }
            Op::Pop => {
                pop!();
            }
            Op::Dup => {
                let depth = code[pc];
                pc += 1;
                let idx = stack
                    .len()
                    .checked_sub(1 + depth as usize)
                    .ok_or(VmError::BadDepth(depth))?;
                let v = stack[idx];
                push!(v);
            }
            Op::Swap => {
                let depth = code[pc];
                pc += 1;
                let top = stack.len().checked_sub(1).ok_or(VmError::StackUnderflow)?;
                let idx = stack
                    .len()
                    .checked_sub(1 + depth as usize)
                    .ok_or(VmError::BadDepth(depth))?;
                stack.swap(top, idx);
            }
            Op::Add => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_add(b));
            }
            Op::Sub => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_sub(b));
            }
            Op::Mul => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_mul(b));
            }
            Op::Div => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(VmError::DivByZero);
                }
                push!(a / b);
            }
            Op::Mod => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(VmError::DivByZero);
                }
                push!(a % b);
            }
            Op::Lt => {
                let b = pop!();
                let a = pop!();
                push!((a < b) as Word);
            }
            Op::Gt => {
                let b = pop!();
                let a = pop!();
                push!((a > b) as Word);
            }
            Op::Eq => {
                let b = pop!();
                let a = pop!();
                push!((a == b) as Word);
            }
            Op::Not => {
                let a = pop!();
                push!((a == 0) as Word);
            }
            Op::And => {
                let b = pop!();
                let a = pop!();
                push!(a & b);
            }
            Op::Or => {
                let b = pop!();
                let a = pop!();
                push!(a | b);
            }
            Op::Xor => {
                let b = pop!();
                let a = pop!();
                push!(a ^ b);
            }
            Op::Jmp => {
                let t = pop!();
                if !targets.contains(&(t as usize)) {
                    return Err(VmError::BadJump(t));
                }
                pc = t as usize;
            }
            Op::JmpIf => {
                let t = pop!();
                let cond = pop!();
                if cond != 0 {
                    if !targets.contains(&(t as usize)) {
                        return Err(VmError::BadJump(t));
                    }
                    pc = t as usize;
                }
            }
            Op::SLoad => {
                let k = pop!();
                push!(storage.get(&k).copied().unwrap_or(0));
            }
            Op::SStore => {
                let v = pop!();
                let k = pop!();
                storage.insert(k, v);
            }
            Op::Caller => push!(env.caller),
            Op::Input => {
                let i = pop!();
                push!(env.input.get(i as usize).copied().unwrap_or(0));
            }
            Op::InputLen => push!(env.input.len() as Word),
            Op::Return => {
                let n = pop!() as usize;
                if n > stack.len() {
                    return Err(VmError::StackUnderflow);
                }
                let output = stack.split_off(stack.len() - n);
                return Ok(ExecOutcome {
                    output,
                    gas_used: gas,
                });
            }
        }
    }
    Ok(ExecOutcome {
        output: Vec::new(),
        gas_used: gas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str, input: Vec<Word>) -> Result<ExecOutcome, VmError> {
        let code = assemble(src).expect("assembles");
        let mut storage = BTreeMap::new();
        execute(
            &code,
            &mut storage,
            &ExecEnv {
                caller: 7,
                input,
                gas_limit: 100_000,
            },
        )
    }

    #[test]
    fn arithmetic() {
        let out = run("push 5\npush 3\nadd\npush 1\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![8]);
        let out = run("push 10\npush 3\nsub\npush 1\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![7]);
        let out = run("push 6\npush 7\nmul\npush 1\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![42]);
        let out = run("push 17\npush 5\ndiv\npush 1\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![3]);
        let out = run("push 17\npush 5\nmod\npush 1\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![2]);
    }

    #[test]
    fn comparisons_and_logic() {
        let out = run("push 2\npush 3\nlt\npush 1\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![1]);
        let out = run("push 3\npush 3\neq\npush 1\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![1]);
        let out = run("push 0\nnot\npush 1\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![1]);
        let out = run("push 12\npush 10\nxor\npush 1\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![6]);
    }

    #[test]
    fn storage_round_trip() {
        let code = assemble("push 42\npush 99\nsstore\npush 42\nsload\npush 1\nret").unwrap();
        let mut storage = BTreeMap::new();
        let out = execute(
            &code,
            &mut storage,
            &ExecEnv {
                caller: 0,
                input: vec![],
                gas_limit: 1000,
            },
        )
        .unwrap();
        assert_eq!(out.output, vec![99]);
        assert_eq!(storage.get(&42), Some(&99));
    }

    #[test]
    fn loop_with_labels_sums_1_to_10() {
        // sum = 0; i = 10; while i != 0 { sum += i; i -= 1 } return sum
        let src = r#"
            push 0          ; sum
            push 10         ; i
        loop:
            dup 0           ; i i
            not             ; i==0?
            push end
            jmpif
            dup 0           ; sum i i
            swap 2          ; i i sum
            add             ; i sum'
            swap 1          ; sum' i
            push 1
            sub
            push loop
            jmp
        end:
            pop
            push 1
            ret
        "#;
        let out = run(src, vec![]).unwrap();
        assert_eq!(out.output, vec![55]);
    }

    #[test]
    fn caller_and_input() {
        let out = run("caller\npush 1\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![7]);
        let out = run("push 1\ninput\npush 1\nret", vec![10, 20, 30]).unwrap();
        assert_eq!(out.output, vec![20]);
        let out = run("inputlen\npush 1\nret", vec![10, 20, 30]).unwrap();
        assert_eq!(out.output, vec![3]);
        // Out-of-range input reads zero.
        let out = run("push 9\ninput\npush 1\nret", vec![1]).unwrap();
        assert_eq!(out.output, vec![0]);
    }

    #[test]
    fn gas_exhaustion() {
        let src = "start:\npush start\njmp";
        let code = assemble(src).unwrap();
        let mut st = BTreeMap::new();
        let err = execute(
            &code,
            &mut st,
            &ExecEnv {
                caller: 0,
                input: vec![],
                gas_limit: 100,
            },
        )
        .unwrap_err();
        assert_eq!(err, VmError::OutOfGas);
    }

    #[test]
    fn gas_accounting_is_exact() {
        // push(1) + push(1) + add(1) + push(1) + ret(1) = 5 gas
        let out = run("push 1\npush 2\nadd\npush 1\nret", vec![]).unwrap();
        assert_eq!(out.gas_used, 5);
    }

    #[test]
    fn div_by_zero_and_underflow() {
        assert_eq!(
            run("push 1\npush 0\ndiv\nhalt", vec![]).unwrap_err(),
            VmError::DivByZero
        );
        assert_eq!(
            run("add\nhalt", vec![]).unwrap_err(),
            VmError::StackUnderflow
        );
        assert_eq!(
            run("pop\nhalt", vec![]).unwrap_err(),
            VmError::StackUnderflow
        );
    }

    #[test]
    fn bad_jump_rejected() {
        // Jump into the middle of a push immediate.
        assert_eq!(
            run("push 2\njmp\npush 7\nhalt", vec![]).unwrap_err(),
            VmError::BadJump(2)
        );
    }

    #[test]
    fn stack_overflow_detected() {
        let src = "start:\npush 1\npush start\njmp";
        let code = assemble(src).unwrap();
        let mut st = BTreeMap::new();
        let err = execute(
            &code,
            &mut st,
            &ExecEnv {
                caller: 0,
                input: vec![],
                gas_limit: 1_000_000,
            },
        )
        .unwrap_err();
        assert_eq!(err, VmError::StackOverflow);
    }

    #[test]
    fn validate_rejects_bad_bytecode() {
        assert!(matches!(
            validate(&[0xff]),
            Err(VmError::BadOpcode { byte: 0xff, at: 0 })
        ));
        assert!(matches!(
            validate(&[Op::Push as u8, 1, 2]),
            Err(VmError::TruncatedImmediate(0))
        ));
        assert!(matches!(
            validate(&[Op::Dup as u8]),
            Err(VmError::TruncatedImmediate(0))
        ));
    }

    #[test]
    fn halt_and_fallthrough_return_empty() {
        assert_eq!(run("halt", vec![]).unwrap().output, Vec::<Word>::new());
        assert_eq!(
            run("push 1\npop", vec![]).unwrap().output,
            Vec::<Word>::new()
        );
    }

    #[test]
    fn dup_swap_depths() {
        let out = run("push 1\npush 2\npush 3\ndup 2\npush 1\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![1]);
        let out = run("push 1\npush 2\npush 3\nswap 2\npush 3\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![3, 2, 1]);
        assert_eq!(
            run("push 1\ndup 5\nhalt", vec![]).unwrap_err(),
            VmError::BadDepth(5)
        );
    }

    #[test]
    fn return_multiple_words() {
        let out = run("push 10\npush 20\npush 30\npush 3\nret", vec![]).unwrap();
        assert_eq!(out.output, vec![10, 20, 30]);
    }
}
