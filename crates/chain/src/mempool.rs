//! Transaction mempool with fee prioritisation and per-account nonce
//! ordering.

use std::collections::{BTreeMap, HashSet};

use tn_crypto::{Address, Hash256};
use tn_telemetry::TelemetrySink;
use tn_trace::{lanes, TraceId, TraceSink};

use crate::error::ChainError;
use crate::sigcache::SigCache;
use crate::state::State;
use crate::transaction::Transaction;

/// A bounded mempool.
///
/// Transactions are grouped per sender and kept nonce-sorted; block
/// assembly pops the highest-fee-first ready transactions while preserving
/// nonce order within each account.
#[derive(Debug)]
pub struct Mempool {
    /// Per-account pending transactions keyed by nonce. `BTreeMap` keyed
    /// by address so selection tie-breaking is deterministic.
    by_account: BTreeMap<Address, BTreeMap<u64, Transaction>>,
    /// Known transaction ids for dedup.
    seen: HashSet<Hash256>,
    capacity: usize,
    len: usize,
    telemetry: TelemetrySink,
    trace: TraceSink,
    /// Optional verified-transaction cache. When set (usually to the
    /// chain store's cache), admission-time verification is recorded so
    /// proposal and import skip re-verifying the same signature.
    sig_cache: Option<SigCache>,
}

impl Mempool {
    /// Creates a mempool that holds at most `capacity` transactions.
    pub fn new(capacity: usize) -> Mempool {
        Mempool {
            by_account: BTreeMap::new(),
            seen: HashSet::new(),
            capacity,
            len: 0,
            telemetry: TelemetrySink::disabled(),
            trace: TraceSink::disabled(),
            sig_cache: None,
        }
    }

    /// Routes admission metrics (`mempool.admitted` / `mempool.rejected`)
    /// to `sink`. The default sink is disabled and records nothing.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Routes admission spans to `sink`. Each admitted transaction mints
    /// its trace here: a cluster-once `tx.admission` span keyed by the
    /// transaction id, the root of that transaction's causal trace.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Shares a verified-transaction cache (usually
    /// `ChainStore::sig_cache`) with this mempool: transactions verified
    /// at admission are recorded there, so block proposal and import see
    /// cache hits instead of repeating the EC verification.
    pub fn set_sig_cache(&mut self, cache: SigCache) {
        self.sig_cache = Some(cache);
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no transactions are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds a transaction after signature/stateless checks.
    ///
    /// # Errors
    ///
    /// - [`ChainError::DuplicateTransaction`] if already pending;
    /// - [`ChainError::MempoolFull`] at capacity;
    /// - signature errors from [`Transaction::verify`];
    /// - [`ChainError::BadNonce`] if the nonce is already below the
    ///   account's committed nonce in `state`.
    pub fn insert(&mut self, tx: Transaction, state: &State) -> Result<(), ChainError> {
        let t0 = self.trace.now_ns();
        let tx_trace = if self.trace.is_enabled() {
            TraceId::from_seed(tx.id().as_bytes())
        } else {
            TraceId::NONE
        };
        let result = self.insert_inner(tx, state);
        match &result {
            Ok(()) => {
                self.telemetry.incr("mempool.admitted");
                // Every replica admits every transaction; only the first
                // admission mints the trace's root span.
                self.trace
                    .complete_once(tx_trace, "tx.admission", 0, lanes::ADMISSION, t0, &[]);
            }
            Err(err) => {
                self.telemetry.incr("mempool.rejected");
                self.telemetry.event("mempool_reject", || err.to_string());
            }
        }
        result
    }

    fn insert_inner(&mut self, tx: Transaction, state: &State) -> Result<(), ChainError> {
        let id = tx.id();
        if self.seen.contains(&id) {
            return Err(ChainError::DuplicateTransaction(id));
        }
        if self.len >= self.capacity {
            return Err(ChainError::MempoolFull);
        }
        match &self.sig_cache {
            Some(cache) => cache.verify_tx(&tx, &self.telemetry)?,
            None => tx.verify()?,
        }
        let committed = state.nonce(&tx.from);
        if tx.nonce < committed {
            return Err(ChainError::BadNonce {
                account: tx.from,
                expected: committed,
                actual: tx.nonce,
            });
        }
        let slot = self.by_account.entry(tx.from).or_default();
        // Replace-by-fee semantics for a duplicate nonce: keep the higher fee.
        if let Some(existing) = slot.get(&tx.nonce) {
            if existing.fee >= tx.fee {
                return Err(ChainError::DuplicateTransaction(id));
            }
            self.seen.remove(&existing.id());
            self.len -= 1;
        }
        slot.insert(tx.nonce, tx);
        self.seen.insert(id);
        self.len += 1;
        Ok(())
    }

    /// Selects up to `max` transactions for a block: repeatedly takes the
    /// highest-fee *ready* transaction (one whose nonce is next for its
    /// account given `state` and prior selections). Ties break by address
    /// order, so selection is fully deterministic.
    pub fn select(&self, state: &State, max: usize) -> Vec<Transaction> {
        let mut next_nonce: BTreeMap<Address, u64> = BTreeMap::new();
        let mut out = Vec::new();
        while out.len() < max {
            let mut best: Option<&Transaction> = None;
            for (addr, txs) in &self.by_account {
                let want = *next_nonce.get(addr).unwrap_or(&state.nonce(addr));
                if let Some(tx) = txs.get(&want) {
                    if best.is_none_or(|b| tx.fee > b.fee) {
                        best = Some(tx);
                    }
                }
            }
            match best {
                Some(tx) => {
                    next_nonce.insert(tx.from, tx.nonce + 1);
                    out.push(tx.clone());
                }
                None => break,
            }
        }
        out
    }

    /// Removes transactions that were committed in a block (and any whose
    /// nonce is now stale).
    pub fn prune_committed(&mut self, state: &State) {
        let mut removed = Vec::new();
        self.by_account.retain(|addr, txs| {
            let committed = state.nonce(addr);
            txs.retain(|nonce, tx| {
                if *nonce < committed {
                    removed.push(tx.id());
                    false
                } else {
                    true
                }
            });
            !txs.is_empty()
        });
        for id in removed {
            self.seen.remove(&id);
        }
        self.len = self.by_account.values().map(BTreeMap::len).sum();
    }

    /// All pending transactions (unordered), for inspection.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.by_account.values().flat_map(|m| m.values())
    }

    /// The next free nonce per account with pending transactions:
    /// `max(pending nonce) + 1`. Lets a caller re-derive its nonce
    /// reservations from actual pool content instead of tracking them
    /// separately (and drifting when transactions are dropped or pruned).
    pub fn next_nonces(&self) -> BTreeMap<Address, u64> {
        self.by_account
            .iter()
            .filter_map(|(addr, txs)| txs.keys().next_back().map(|n| (*addr, n + 1)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NoExecutor;
    use crate::transaction::Payload;
    use tn_crypto::Keypair;

    fn alice() -> Keypair {
        Keypair::from_seed(b"alice")
    }

    fn bob() -> Keypair {
        Keypair::from_seed(b"bob")
    }

    fn state() -> State {
        State::genesis([(alice().address(), 10_000), (bob().address(), 10_000)])
    }

    fn tx(kp: &Keypair, nonce: u64, fee: u64) -> Transaction {
        Transaction::signed(
            kp,
            nonce,
            fee,
            Payload::Blob {
                tag: 1,
                data: vec![nonce as u8],
            },
        )
    }

    #[test]
    fn insert_and_select_orders_by_fee_then_nonce() {
        let s = state();
        let mut pool = Mempool::new(100);
        pool.insert(tx(&alice(), 0, 1), &s).unwrap();
        pool.insert(tx(&alice(), 1, 100), &s).unwrap(); // high fee but nonce-gated
        pool.insert(tx(&bob(), 0, 50), &s).unwrap();

        let picked = pool.select(&s, 10);
        let order: Vec<(Address, u64)> = picked.iter().map(|t| (t.from, t.nonce)).collect();
        // Bob's 50-fee tx is ready and beats alice's 1-fee; alice nonce 1
        // only becomes ready after nonce 0 is taken.
        assert_eq!(
            order,
            vec![
                (bob().address(), 0),
                (alice().address(), 0),
                (alice().address(), 1)
            ]
        );
    }

    #[test]
    fn duplicate_rejected() {
        let s = state();
        let mut pool = Mempool::new(100);
        let t = tx(&alice(), 0, 1);
        pool.insert(t.clone(), &s).unwrap();
        assert!(matches!(
            pool.insert(t, &s),
            Err(ChainError::DuplicateTransaction(_))
        ));
    }

    #[test]
    fn replace_by_fee() {
        let s = state();
        let mut pool = Mempool::new(100);
        pool.insert(tx(&alice(), 0, 1), &s).unwrap();
        // Same nonce, higher fee replaces.
        pool.insert(tx(&alice(), 0, 10), &s).unwrap();
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.select(&s, 1)[0].fee, 10);
        // Same nonce, lower fee rejected.
        assert!(pool.insert(tx(&alice(), 0, 5), &s).is_err());
    }

    #[test]
    fn capacity_enforced() {
        let s = state();
        let mut pool = Mempool::new(2);
        pool.insert(tx(&alice(), 0, 1), &s).unwrap();
        pool.insert(tx(&alice(), 1, 1), &s).unwrap();
        assert!(matches!(
            pool.insert(tx(&alice(), 2, 1), &s),
            Err(ChainError::MempoolFull)
        ));
    }

    #[test]
    fn stale_nonce_rejected() {
        let mut s = state();
        let mut ex = NoExecutor;
        let committed = tx(&alice(), 0, 1);
        s.apply(&committed, &Address::SYSTEM, &mut ex).unwrap();
        let mut pool = Mempool::new(10);
        assert!(matches!(
            pool.insert(tx(&alice(), 0, 1), &s),
            Err(ChainError::BadNonce { .. })
        ));
    }

    #[test]
    fn prune_removes_committed() {
        let mut s = state();
        let mut pool = Mempool::new(10);
        pool.insert(tx(&alice(), 0, 1), &s).unwrap();
        pool.insert(tx(&alice(), 1, 1), &s).unwrap();
        // Commit nonce 0.
        let mut ex = NoExecutor;
        s.apply(&tx(&alice(), 0, 1), &Address::SYSTEM, &mut ex)
            .unwrap();
        pool.prune_committed(&s);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.iter().next().unwrap().nonce, 1);
    }

    #[test]
    fn select_respects_max() {
        let s = state();
        let mut pool = Mempool::new(100);
        for n in 0..10 {
            pool.insert(tx(&alice(), n, 1), &s).unwrap();
        }
        assert_eq!(pool.select(&s, 3).len(), 3);
    }

    #[test]
    fn next_nonces_tracks_pool_content() {
        let s = state();
        let mut pool = Mempool::new(100);
        assert!(pool.next_nonces().is_empty());
        pool.insert(tx(&alice(), 0, 1), &s).unwrap();
        pool.insert(tx(&alice(), 1, 1), &s).unwrap();
        pool.insert(tx(&bob(), 0, 1), &s).unwrap();
        let next = pool.next_nonces();
        assert_eq!(next.get(&alice().address()), Some(&2));
        assert_eq!(next.get(&bob().address()), Some(&1));
    }

    #[test]
    fn nonce_gaps_block_selection() {
        let s = state();
        let mut pool = Mempool::new(100);
        pool.insert(tx(&alice(), 1, 1), &s).unwrap(); // gap: nonce 0 missing
        assert!(pool.select(&s, 10).is_empty());
    }
}
