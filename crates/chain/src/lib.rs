//! # tn-chain
//!
//! The permissioned blockchain substrate of the trusting-news platform.
//!
//! The paper builds its trusting-news ecosystem on a Hyperledger-style
//! permissioned chain; this crate is that substrate, reimplemented from
//! scratch:
//!
//! - [`codec`]: canonical binary encoding (consensus-critical bytes are
//!   never produced by a general-purpose serializer).
//! - [`transaction`]: signed transactions. News publications, propagation
//!   edges, ratings and fact attestations all travel as transactions, which
//!   is what gives the platform its accountability ("each record is signed
//!   and easy to track") and immutability properties.
//! - [`block`]: proposer-signed, hash-linked blocks with Merkle transaction
//!   roots.
//! - [`state`]: the replicated world state — balances (the incentive
//!   currency), nonces, and namespaced anchor roots (the factual-DB root is
//!   anchored here) — plus the transition function with a pluggable
//!   contract executor.
//! - [`store`]: block storage, parent-state validation, longest-chain fork
//!   choice, and [`observer`] notification.
//! - [`observer`]: the [`BlockObserver`] projection trait — derived views
//!   (supply-chain graph, identity registry, fact admissions, …) as pure
//!   functions of canonical block history, each with a state digest so
//!   replicas and replays can be compared by hash.
//! - [`mempool`]: fee-prioritised pending-transaction pool.
//!
//! Consensus (who gets to append) lives in `tn-consensus`; contract
//! execution lives in `tn-contracts` and plugs in through
//! [`state::TxExecutor`].
//!
//! # Example
//!
//! ```
//! use tn_chain::prelude::*;
//! use tn_crypto::Keypair;
//!
//! let alice = Keypair::from_seed(b"alice");
//! let validator = Keypair::from_seed(b"validator");
//! let genesis = State::genesis([(alice.address(), 1_000)]);
//! let mut store = ChainStore::new(genesis, &validator);
//!
//! let tx = Transaction::signed(
//!     &alice,
//!     0,
//!     1,
//!     Payload::Blob { tag: blob_tags::NEWS_PUBLISH, data: b"story bytes".to_vec() },
//! );
//! let block = store.propose(&validator, 1, vec![tx], &mut NoExecutor);
//! store.import(block, &mut NoExecutor)?;
//! assert_eq!(store.height(), 1);
//! # Ok::<(), tn_chain::ChainError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod block;
pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod mempool;
pub mod observer;
pub mod sigcache;
pub mod state;
pub mod store;
pub mod transaction;

pub use block::{BatchVerifyPolicy, Block, BlockHeader};
pub use checkpoint::ChainCheckpoint;
pub use error::ChainError;
pub use mempool::Mempool;
pub use observer::{projection_root, BlockObserver};
pub use sigcache::SigCache;
pub use state::{AccountState, NoExecutor, Receipt, State, TxExecutor};
pub use store::ChainStore;
pub use transaction::{blob_tags, Payload, Transaction};

/// Common imports for downstream crates.
pub mod prelude {
    pub use crate::block::{BatchVerifyPolicy, Block, BlockHeader};
    pub use crate::codec::{Decodable, Decoder, Encodable, Encoder};
    pub use crate::error::ChainError;
    pub use crate::mempool::Mempool;
    pub use crate::observer::{projection_root, BlockObserver};
    pub use crate::sigcache::SigCache;
    pub use crate::state::{NoExecutor, Receipt, State, TxExecutor};
    pub use crate::store::ChainStore;
    pub use crate::transaction::{blob_tags, Payload, Transaction};
}
