//! Chain checkpoints: the blob the chain layer persists through
//! [`tn_storage::Storage::put_checkpoint`].
//!
//! A checkpoint captures everything a restarted replica needs to resume
//! without replaying from genesis: the canonical head at checkpoint time,
//! the full account [`State`] at that block, and a set of named extension
//! blobs contributed by higher layers (projection snapshots, the contract
//! registry). Recovery decodes the checkpoint, restores state and
//! extensions, then replays only the storage records past the checkpoint
//! height — so restart cost is proportional to downtime, not chain length.

use tn_crypto::Hash256;

use crate::codec::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use crate::state::State;

/// Durable snapshot of chain state at a canonical block, plus named
/// extension blobs from higher layers.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainCheckpoint {
    /// Height of the canonical block the checkpoint was taken at.
    pub height: u64,
    /// Id of that block (the head at checkpoint time).
    pub head_id: Hash256,
    /// Full account state after executing the checkpoint block.
    pub state: State,
    /// Named opaque blobs saved by projections and the execution layer.
    /// Order is preserved; names should be unique.
    pub extensions: Vec<(String, Vec<u8>)>,
}

impl ChainCheckpoint {
    /// Looks up an extension blob by name.
    pub fn extension(&self, name: &str) -> Option<&[u8]> {
        self.extensions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Encodes the checkpoint for storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Decodes a checkpoint previously produced by
    /// [`ChainCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`DecodeError`] when the buffer does not parse exactly.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let cp = Self::decode(&mut dec)?;
        dec.expect_end()?;
        Ok(cp)
    }
}

impl Encodable for ChainCheckpoint {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.height).put_hash(&self.head_id);
        self.state.encode(enc);
        enc.put_varint(self.extensions.len() as u64);
        for (name, blob) in &self.extensions {
            enc.put_str(name).put_bytes(blob);
        }
    }
}

impl Decodable for ChainCheckpoint {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let height = dec.get_u64()?;
        let head_id = dec.get_hash()?;
        let state = State::decode(dec)?;
        let n = dec.get_varint()? as usize;
        let mut extensions = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            let name = dec.get_str()?;
            let blob = dec.get_bytes()?;
            extensions.push((name, blob));
        }
        Ok(ChainCheckpoint {
            height,
            head_id,
            state,
            extensions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_crypto::Address;

    fn sample() -> ChainCheckpoint {
        let mut state = State::new();
        state.credit(&Address::from_hash(Hash256::ZERO), 1_000);
        ChainCheckpoint {
            height: 42,
            head_id: tn_crypto::sha256::tagged_hash("t", b"head"),
            state,
            extensions: vec![
                ("supplychain".into(), vec![1, 2, 3]),
                ("contracts".into(), vec![]),
            ],
        }
    }

    #[test]
    fn round_trip() {
        let cp = sample();
        let bytes = cp.to_bytes();
        assert_eq!(ChainCheckpoint::from_bytes(&bytes).unwrap(), cp);
    }

    #[test]
    fn extension_lookup() {
        let cp = sample();
        assert_eq!(cp.extension("supplychain"), Some(&[1u8, 2, 3][..]));
        assert_eq!(cp.extension("contracts"), Some(&[][..]));
        assert_eq!(cp.extension("missing"), None);
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample().to_bytes();
        assert!(ChainCheckpoint::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }
}
