//! Blocks and block headers.

use tn_crypto::merkle::{leaf_hash, merkle_root, merkle_root_of_leaves_par};
use tn_crypto::sha256::tagged_hash;
use tn_crypto::{verify_batch, Address, BatchItem, Hash256, Keypair, PublicKey, Signature};
use tn_par::Pool;
use tn_telemetry::TelemetrySink;
use tn_trace::{lanes, TraceId, TraceSink};

use crate::codec::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use crate::error::ChainError;
use crate::sigcache::SigCache;
use crate::transaction::Transaction;

/// Telemetry counter: chunks whose batched signature equation verified.
pub const BATCH_CHUNKS_COUNTER: &str = "chain.verify.batch.chunks";
/// Telemetry counter: transactions verified through the batch equation
/// (cache hits are counted by `chain.sigcache.hit` instead).
pub const BATCH_TXS_COUNTER: &str = "chain.verify.batch.txs";
/// Telemetry counter: batched verifications that failed and fell back to
/// the per-transaction scan (only invalid blocks take this path).
pub const BATCH_FALLBACK_COUNTER: &str = "chain.verify.batch.fallback";

/// Policy for the batched-Schnorr fast path on block verification.
///
/// `chunk` is the number of transactions folded into one batched
/// signature equation. It is a **consensus-visible constant in spirit**:
/// chunk boundaries (and hence the Fiat–Shamir transcripts) depend only on
/// this value, never on the worker count, so replicas with different
/// parallelism compute bit-identical batch equations. Accept/reject
/// outcomes are identical for *any* chunk value — a failing batch falls
/// back to the sequential-semantics per-transaction scan — so the knob
/// only moves performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchVerifyPolicy {
    /// Whether the batch fast path runs at all.
    pub enabled: bool,
    /// Transactions per batched equation (clamped to ≥ 1 at use sites).
    pub chunk: usize,
}

impl BatchVerifyPolicy {
    /// Default transactions per batch equation. Large enough that the
    /// Pippenger bucket MSM amortises well, small enough that several
    /// chunks exist to spread over verify workers at realistic block
    /// sizes.
    pub const DEFAULT_CHUNK: usize = 512;

    /// Batching off: every transaction pays an individual verification.
    pub fn disabled() -> BatchVerifyPolicy {
        BatchVerifyPolicy {
            enabled: false,
            chunk: Self::DEFAULT_CHUNK,
        }
    }
}

impl Default for BatchVerifyPolicy {
    /// Batching on with [`BatchVerifyPolicy::DEFAULT_CHUNK`] transactions
    /// per equation.
    fn default() -> Self {
        BatchVerifyPolicy {
            enabled: true,
            chunk: Self::DEFAULT_CHUNK,
        }
    }
}

/// A block header: the hash-linked, proposer-signed commitment to a batch
/// of transactions and the resulting state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Parent block id ([`Hash256::ZERO`] for genesis).
    pub parent: Hash256,
    /// Merkle root over the block's transaction ids.
    pub tx_root: Hash256,
    /// State commitment after executing this block.
    pub state_root: Hash256,
    /// Logical timestamp (simulation ticks or milliseconds).
    pub timestamp: u64,
    /// Proposer account.
    pub proposer: Address,
}

impl BlockHeader {
    /// The header digest that the proposer signs and that serves as the
    /// block id.
    pub fn digest(&self) -> Hash256 {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        tagged_hash("TN/block", &enc.finish())
    }
}

impl Encodable for BlockHeader {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.height)
            .put_hash(&self.parent)
            .put_hash(&self.tx_root)
            .put_hash(&self.state_root)
            .put_u64(self.timestamp)
            .put_hash(self.proposer.as_hash());
    }
}

impl Decodable for BlockHeader {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(BlockHeader {
            height: dec.get_u64()?,
            parent: dec.get_hash()?,
            tx_root: dec.get_hash()?,
            state_root: dec.get_hash()?,
            timestamp: dec.get_u64()?,
            proposer: Address::from_hash(dec.get_hash()?),
        })
    }
}

/// A full block: header, proposer signature, and transaction list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// Proposer's public key.
    pub proposer_key: PublicKey,
    /// Proposer's signature over the header digest.
    pub signature: Signature,
    /// Ordered transactions.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// Computes the Merkle root of a transaction list (what `tx_root` must
    /// equal).
    pub fn compute_tx_root(txs: &[Transaction]) -> Hash256 {
        merkle_root(txs.iter().map(|t| t.id().into_bytes()))
    }

    /// [`Block::compute_tx_root`] with transaction hashing and Merkle
    /// reduction fanned out over `pool`. Byte-identical to the sequential
    /// version for every input and worker count.
    pub fn compute_tx_root_par(txs: &[Transaction], pool: &Pool) -> Hash256 {
        let leaves = pool.map(txs, |t| leaf_hash(t.id().as_bytes()));
        merkle_root_of_leaves_par(leaves, pool)
    }

    /// Assembles and signs a block.
    pub fn build(
        proposer: &Keypair,
        height: u64,
        parent: Hash256,
        state_root: Hash256,
        timestamp: u64,
        transactions: Vec<Transaction>,
    ) -> Block {
        let header = BlockHeader {
            height,
            parent,
            tx_root: Block::compute_tx_root(&transactions),
            state_root,
            timestamp,
            proposer: proposer.address(),
        };
        let signature = proposer.sign(&header.digest());
        Block {
            header,
            proposer_key: *proposer.public(),
            signature,
            transactions,
        }
    }

    /// The block id (header digest).
    pub fn id(&self) -> Hash256 {
        self.header.digest()
    }

    /// Builds a Merkle inclusion proof for the transaction at `index`
    /// against this block's `tx_root`. Returns `None` when out of range.
    ///
    /// Verify with [`Block::verify_tx_proof`] — this is what lets a light
    /// client check "this news event is really on-chain" from the header
    /// alone.
    pub fn prove_tx(&self, index: usize) -> Option<tn_crypto::merkle::MerkleProof> {
        if index >= self.transactions.len() {
            return None;
        }
        let tree = tn_crypto::merkle::MerkleTree::from_leaves(
            self.transactions
                .iter()
                .map(|t| tn_crypto::merkle::leaf_hash(t.id().as_bytes()))
                .collect(),
        );
        tree.prove(index)
    }

    /// Verifies that a transaction with id `tx_id` is committed under
    /// `tx_root` by `proof`.
    pub fn verify_tx_proof(
        tx_id: &Hash256,
        proof: &tn_crypto::merkle::MerkleProof,
        tx_root: &Hash256,
    ) -> bool {
        proof.verify(&tn_crypto::merkle::leaf_hash(tx_id.as_bytes()), tx_root)
    }

    /// Structural validation: proposer signature, proposer address
    /// consistency, tx-root match, and per-transaction signatures.
    ///
    /// # Errors
    ///
    /// [`ChainError::AddressMismatch`], [`ChainError::BadSignature`] or
    /// [`ChainError::BadTxRoot`].
    pub fn verify_structure(&self) -> Result<(), ChainError> {
        self.verify_structure_with(&Pool::sequential(), None, &TelemetrySink::disabled())
    }

    /// [`Block::verify_structure`] with the per-transaction work fanned
    /// out over `pool` and (optionally) short-circuited through a
    /// verified-transaction `cache`.
    ///
    /// The result is byte-identical to the sequential path for every
    /// worker count and cache state: header checks run in the same order,
    /// and when several transactions are invalid the error reported is
    /// always the one at the **lowest** transaction index (the pool's
    /// `try_check` guarantees first-error semantics). Cache hits bump
    /// `chain.sigcache.hit` on `telemetry`, misses bump
    /// `chain.sigcache.miss` and pay the actual EC verification.
    ///
    /// # Errors
    ///
    /// Same as [`Block::verify_structure`].
    pub fn verify_structure_with(
        &self,
        pool: &Pool,
        cache: Option<&SigCache>,
        telemetry: &TelemetrySink,
    ) -> Result<(), ChainError> {
        self.verify_structure_traced(pool, cache, telemetry, &TraceSink::disabled(), 0)
    }

    /// [`Block::verify_structure_with`] recording one `tx.verify` span per
    /// transaction into `trace`, parented under `parent` (the importing
    /// replica's `chain.verify` span). Each span carries the verify worker
    /// that owned the transaction's chunk (from [`Pool::chunk_bounds`])
    /// and the transaction's index, so Perfetto shows which tn-par worker
    /// checked which signature. A disabled `trace` makes this identical
    /// to [`Block::verify_structure_with`].
    ///
    /// # Errors
    ///
    /// Same as [`Block::verify_structure`].
    pub fn verify_structure_traced(
        &self,
        pool: &Pool,
        cache: Option<&SigCache>,
        telemetry: &TelemetrySink,
        trace: &TraceSink,
        parent: u64,
    ) -> Result<(), ChainError> {
        self.verify_structure_policy(
            pool,
            cache,
            telemetry,
            trace,
            parent,
            BatchVerifyPolicy::default(),
        )
    }

    /// [`Block::verify_structure_traced`] with an explicit
    /// [`BatchVerifyPolicy`].
    ///
    /// With batching enabled (and tracing disabled — per-transaction
    /// spans require per-transaction verification), transactions are split
    /// into fixed-size chunks and each chunk's signatures are folded into
    /// one random-linear-combination Schnorr equation seeded by the block
    /// id and chunk index ([`tn_crypto::verify_batch`]). Chunks fan out
    /// over `pool` via [`Pool::map_chunks`], so the equations themselves
    /// are independent of the worker count. Per chunk, cached
    /// transactions are skipped (bumping `chain.sigcache.hit`) and the
    /// rest are batch-verified (bumping `chain.sigcache.miss` and
    /// [`BATCH_TXS_COUNTER`], then populating the cache) — so across
    /// admission → proposal → import each signature still pays at most
    /// one EC verification, exactly like the per-transaction path.
    ///
    /// A valid block is **never** rejected by batching (each term of a
    /// batched equation is the identity precisely when that signature
    /// verifies). When any chunk fails — which implies some transaction
    /// is invalid, up to the 2⁻¹²⁸ soundness error — the whole
    /// transaction list is rescanned with the pool's first-error
    /// `try_check`, so the reported error is byte-identical to the
    /// sequential scan's lowest-index failure for every pool × chunk
    /// configuration ([`BATCH_FALLBACK_COUNTER`] records the rescan).
    ///
    /// # Errors
    ///
    /// Same as [`Block::verify_structure`].
    pub fn verify_structure_policy(
        &self,
        pool: &Pool,
        cache: Option<&SigCache>,
        telemetry: &TelemetrySink,
        trace: &TraceSink,
        parent: u64,
        policy: BatchVerifyPolicy,
    ) -> Result<(), ChainError> {
        if self.proposer_key.address() != self.header.proposer {
            return Err(ChainError::AddressMismatch);
        }
        if !self
            .proposer_key
            .verify(&self.header.digest(), &self.signature)
        {
            return Err(ChainError::BadSignature);
        }
        if Block::compute_tx_root_par(&self.transactions, pool) != self.header.tx_root {
            return Err(ChainError::BadTxRoot);
        }
        if policy.enabled
            && !trace.is_enabled()
            && !self.transactions.is_empty()
            && self.batch_verify_txs(pool, cache, telemetry, policy.chunk)
        {
            return Ok(());
        }
        let bounds = if trace.is_enabled() {
            pool.chunk_bounds(self.transactions.len())
        } else {
            Vec::new()
        };
        pool.try_check(&self.transactions, |i, tx| {
            let t0 = trace.now_ns();
            let result = match cache {
                Some(cache) => cache.verify_tx(tx, telemetry),
                None => tx.verify(),
            };
            if trace.is_enabled() {
                let worker = bounds
                    .iter()
                    .position(|(lo, hi)| (*lo..*hi).contains(&i))
                    .unwrap_or(0) as u64;
                trace.complete(
                    TraceId::from_seed(tx.id().as_bytes()),
                    "tx.verify",
                    parent,
                    lanes::VERIFY,
                    t0,
                    &[("worker", worker), ("index", i as u64)],
                );
            }
            result
        })
        .map_err(|(_, err)| err)
    }

    /// Runs the batched signature check over all transactions in
    /// fixed-size chunks fanned out over `pool`. Returns `true` when every
    /// chunk's equation holds — in which case sigcache/batch counters are
    /// bumped and `cache` is populated — and `false` otherwise, deciding
    /// nothing (the caller rescans per-transaction for the exact error).
    ///
    /// Counters are only touched for *successful* chunks, so on the
    /// all-valid path each transaction is counted exactly once (hit or
    /// miss). A failing batch implies an invalid block, where per-import
    /// counter totals are not part of the one-verify-per-tx contract.
    fn batch_verify_txs(
        &self,
        pool: &Pool,
        cache: Option<&SigCache>,
        telemetry: &TelemetrySink,
        chunk: usize,
    ) -> bool {
        let block_id = self.id();
        let ok = pool
            .map_chunks(&self.transactions, chunk, |ci, txs| {
                let mut items: Vec<BatchItem> = Vec::with_capacity(txs.len());
                let mut ids = Vec::with_capacity(txs.len());
                let mut hits = 0u64;
                for tx in txs {
                    if tx.pubkey.address() != tx.from {
                        return false;
                    }
                    let id = tx.id();
                    if cache.is_some_and(|c| c.contains(&id)) {
                        hits += 1;
                        continue;
                    }
                    let digest =
                        Transaction::signing_digest(&tx.from, tx.nonce, tx.fee, &tx.payload);
                    items.push((tx.pubkey, digest, tx.signature));
                    ids.push(id);
                }
                // The Fiat–Shamir seed binds the block id and chunk index:
                // replicas chunking the same block derive bit-identical
                // batch coefficients regardless of worker count.
                let mut seed = [0u8; 40];
                seed[..32].copy_from_slice(block_id.as_bytes());
                seed[32..].copy_from_slice(&(ci as u64).to_be_bytes());
                if !verify_batch(&items, &seed) {
                    return false;
                }
                if cache.is_some() {
                    if hits > 0 {
                        telemetry.add(crate::sigcache::HIT_COUNTER, hits);
                    }
                    if !ids.is_empty() {
                        telemetry.add(crate::sigcache::MISS_COUNTER, ids.len() as u64);
                    }
                }
                if !ids.is_empty() {
                    telemetry.add(BATCH_TXS_COUNTER, ids.len() as u64);
                }
                telemetry.incr(BATCH_CHUNKS_COUNTER);
                if let Some(cache) = cache {
                    for id in ids {
                        cache.insert(id);
                    }
                }
                true
            })
            .into_iter()
            .all(|chunk_ok| chunk_ok);
        if !ok {
            telemetry.incr(BATCH_FALLBACK_COUNTER);
        }
        ok
    }
}

impl Encodable for Block {
    fn encode(&self, enc: &mut Encoder) {
        self.header.encode(enc);
        enc.put_bytes(&self.proposer_key.to_compressed());
        enc.put_bytes(&self.signature.to_bytes());
        enc.put_varint(self.transactions.len() as u64);
        for tx in &self.transactions {
            tx.encode(enc);
        }
    }
}

impl Decodable for Block {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let header = BlockHeader::decode(dec)?;
        let pk: [u8; 33] = dec
            .get_bytes()?
            .try_into()
            .map_err(|_| DecodeError::BadLength(33))?;
        let proposer_key = PublicKey::from_compressed(&pk).ok_or(DecodeError::BadTag(0xfe))?;
        let sig: [u8; 65] = dec
            .get_bytes()?
            .try_into()
            .map_err(|_| DecodeError::BadLength(65))?;
        let signature = Signature::from_bytes(&sig).ok_or(DecodeError::BadTag(0xff))?;
        let n = dec.get_varint()?;
        if n > 1_000_000 {
            return Err(DecodeError::BadLength(n));
        }
        let mut transactions = Vec::with_capacity(n as usize);
        for _ in 0..n {
            transactions.push(Transaction::decode(dec)?);
        }
        Ok(Block {
            header,
            proposer_key,
            signature,
            transactions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Payload;

    fn sample_block() -> (Keypair, Block) {
        let proposer = Keypair::from_seed(b"proposer");
        let alice = Keypair::from_seed(b"alice");
        let txs = vec![
            Transaction::signed(
                &alice,
                0,
                1,
                Payload::Blob {
                    tag: 1,
                    data: vec![1],
                },
            ),
            Transaction::signed(
                &alice,
                1,
                1,
                Payload::Blob {
                    tag: 1,
                    data: vec![2],
                },
            ),
        ];
        let block = Block::build(
            &proposer,
            1,
            tn_crypto::sha256::sha256(b"genesis"),
            tn_crypto::sha256::sha256(b"state"),
            1000,
            txs,
        );
        (proposer, block)
    }

    #[test]
    fn built_block_verifies() {
        let (_, block) = sample_block();
        block.verify_structure().expect("valid");
    }

    #[test]
    fn block_round_trips() {
        let (_, block) = sample_block();
        let decoded = Block::from_bytes(&block.to_bytes()).expect("decodes");
        assert_eq!(decoded, block);
        assert_eq!(decoded.id(), block.id());
    }

    #[test]
    fn tampered_tx_list_detected() {
        let (_, mut block) = sample_block();
        block.transactions.pop();
        assert_eq!(block.verify_structure(), Err(ChainError::BadTxRoot));
    }

    #[test]
    fn tampered_header_detected() {
        let (_, mut block) = sample_block();
        block.header.timestamp += 1;
        assert_eq!(block.verify_structure(), Err(ChainError::BadSignature));
    }

    #[test]
    fn forged_proposer_detected() {
        let (_, mut block) = sample_block();
        let eve = Keypair::from_seed(b"eve");
        block.proposer_key = *eve.public();
        assert_eq!(block.verify_structure(), Err(ChainError::AddressMismatch));
    }

    #[test]
    fn empty_block_is_valid() {
        let proposer = Keypair::from_seed(b"p");
        let block = Block::build(&proposer, 0, Hash256::ZERO, Hash256::ZERO, 0, vec![]);
        block.verify_structure().expect("valid");
        assert_eq!(block.header.tx_root, Hash256::ZERO);
    }

    #[test]
    fn tx_inclusion_proofs() {
        let (_, block) = sample_block();
        for (i, tx) in block.transactions.iter().enumerate() {
            let proof = block.prove_tx(i).expect("in range");
            assert!(Block::verify_tx_proof(
                &tx.id(),
                &proof,
                &block.header.tx_root
            ));
            // Wrong tx id fails.
            let other = block.transactions[(i + 1) % block.transactions.len()].id();
            if other != tx.id() {
                assert!(!Block::verify_tx_proof(
                    &other,
                    &proof,
                    &block.header.tx_root
                ));
            }
        }
        assert!(block.prove_tx(99).is_none());
    }

    fn block_with_txs(count: usize) -> Block {
        let proposer = Keypair::from_seed(b"proposer");
        let alice = Keypair::from_seed(b"alice");
        let txs = (0..count)
            .map(|i| {
                Transaction::signed(
                    &alice,
                    i as u64,
                    1,
                    Payload::Blob {
                        tag: 1,
                        data: vec![i as u8],
                    },
                )
            })
            .collect();
        Block::build(
            &proposer,
            1,
            tn_crypto::sha256::sha256(b"genesis"),
            tn_crypto::sha256::sha256(b"state"),
            1000,
            txs,
        )
    }

    #[test]
    fn parallel_verify_matches_sequential_on_valid_blocks() {
        for count in [0usize, 1, 2, 7, 33] {
            let block = block_with_txs(count);
            let seq = block.verify_structure();
            for workers in [1usize, 2, 3, 4, 8] {
                let par = block.verify_structure_with(
                    &Pool::new(workers),
                    None,
                    &TelemetrySink::disabled(),
                );
                assert_eq!(par, seq, "count={count} workers={workers}");
            }
            assert_eq!(
                Block::compute_tx_root_par(&block.transactions, &Pool::new(4)),
                Block::compute_tx_root(&block.transactions),
            );
        }
    }

    #[test]
    fn parallel_verify_reports_lowest_index_error() {
        // Corrupt 1..=k signatures at pseudo-random indices and check every
        // worker count reports exactly the sequential first error.
        let mut rng_state = 0x5eed_5eedu64;
        let mut next = move |bound: usize| {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as usize) % bound
        };
        for k in 1..=5usize {
            let mut block = block_with_txs(32);
            let mut corrupted = Vec::new();
            for c in 0..k {
                let mut idx = next(block.transactions.len());
                while corrupted.contains(&idx) {
                    idx = next(block.transactions.len());
                }
                // Alternate corruption kinds so "which index errored first"
                // is visible in the error value itself.
                if c % 2 == 0 {
                    block.transactions[idx].fee ^= 1; // BadSignature
                } else {
                    block.transactions[idx].from = Keypair::from_seed(b"eve").address();
                    // AddressMismatch
                }
                corrupted.push(idx);
            }
            let first_bad = *corrupted.iter().min().expect("k >= 1");
            let expected = block.transactions[first_bad].verify();
            assert!(expected.is_err());
            // Re-root and re-sign so only the tx signatures are invalid.
            let proposer = Keypair::from_seed(b"proposer");
            block.header.tx_root = Block::compute_tx_root(&block.transactions);
            block.signature = proposer.sign(&block.header.digest());
            let seq = block.verify_structure();
            assert_eq!(seq, expected, "sequential reports the lowest-index error");
            for workers in [1usize, 2, 3, 4, 8] {
                let par = block.verify_structure_with(
                    &Pool::new(workers),
                    None,
                    &TelemetrySink::disabled(),
                );
                assert_eq!(par, seq, "k={k} workers={workers}");
            }
        }
    }

    #[test]
    fn parallel_verify_with_cache_matches_and_hits() {
        let block = block_with_txs(16);
        let cache = crate::sigcache::SigCache::new(64);
        let pool = Pool::new(4);
        let sink = TelemetrySink::disabled();
        assert_eq!(
            block.verify_structure_with(&pool, Some(&cache), &sink),
            Ok(())
        );
        assert_eq!(cache.len(), 16);
        // Second pass is served entirely from the cache.
        assert_eq!(
            block.verify_structure_with(&pool, Some(&cache), &sink),
            Ok(())
        );
    }

    #[test]
    fn batch_policy_matches_sequential_verdicts() {
        // Valid and corrupted blocks must produce identical results for
        // every worker count × chunk size, batching on or off.
        for corrupt in [false, true] {
            for count in [0usize, 1, 5, 33] {
                let mut block = block_with_txs(count);
                if corrupt && count > 0 {
                    block.transactions[count / 2].fee ^= 1;
                    let proposer = Keypair::from_seed(b"proposer");
                    block.header.tx_root = Block::compute_tx_root(&block.transactions);
                    block.signature = proposer.sign(&block.header.digest());
                }
                let seq = block.verify_structure();
                for workers in [1usize, 3, 8] {
                    for chunk in [1usize, 4, 16, 512] {
                        let got = block.verify_structure_policy(
                            &Pool::new(workers),
                            None,
                            &TelemetrySink::disabled(),
                            &tn_trace::TraceSink::disabled(),
                            0,
                            BatchVerifyPolicy {
                                enabled: true,
                                chunk,
                            },
                        );
                        assert_eq!(
                            got, seq,
                            "corrupt={corrupt} count={count} workers={workers} chunk={chunk}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_verify_populates_cache_and_counters() {
        let block = block_with_txs(16);
        let cache = crate::sigcache::SigCache::new(64);
        let registry = tn_telemetry::Registry::new();
        let sink = registry.sink();
        let pool = Pool::new(4);
        let policy = BatchVerifyPolicy {
            enabled: true,
            chunk: 4,
        };
        let trace = tn_trace::TraceSink::disabled();
        block
            .verify_structure_policy(&pool, Some(&cache), &sink, &trace, 0, policy)
            .expect("valid");
        let snap = registry.snapshot();
        assert_eq!(cache.len(), 16, "every tx cached after batch verify");
        assert_eq!(snap.counter(crate::sigcache::MISS_COUNTER), Some(16));
        assert_eq!(snap.counter(BATCH_TXS_COUNTER), Some(16));
        assert_eq!(snap.counter(BATCH_CHUNKS_COUNTER), Some(4));
        assert_eq!(snap.counter(crate::sigcache::HIT_COUNTER), None);
        assert_eq!(snap.counter(BATCH_FALLBACK_COUNTER), None);
        // Second pass: all txs served from the cache, no new misses.
        block
            .verify_structure_policy(&pool, Some(&cache), &sink, &trace, 0, policy)
            .expect("valid");
        let snap = registry.snapshot();
        assert_eq!(snap.counter(crate::sigcache::MISS_COUNTER), Some(16));
        assert_eq!(snap.counter(crate::sigcache::HIT_COUNTER), Some(16));
        assert_eq!(snap.counter(BATCH_TXS_COUNTER), Some(16));
    }

    #[test]
    fn failed_batch_falls_back_and_counts() {
        let mut block = block_with_txs(8);
        block.transactions[3].fee ^= 1;
        let proposer = Keypair::from_seed(b"proposer");
        block.header.tx_root = Block::compute_tx_root(&block.transactions);
        block.signature = proposer.sign(&block.header.digest());
        let registry = tn_telemetry::Registry::new();
        let sink = registry.sink();
        let got = block.verify_structure_policy(
            &Pool::new(2),
            None,
            &sink,
            &tn_trace::TraceSink::disabled(),
            0,
            BatchVerifyPolicy::default(),
        );
        assert_eq!(got, block.verify_structure());
        assert!(got.is_err());
        assert_eq!(registry.snapshot().counter(BATCH_FALLBACK_COUNTER), Some(1));
    }

    #[test]
    fn id_commits_to_transactions() {
        let (proposer, block) = sample_block();
        let other = Block::build(
            &proposer,
            block.header.height,
            block.header.parent,
            block.header.state_root,
            block.header.timestamp,
            vec![],
        );
        assert_ne!(block.id(), other.id());
    }
}
