//! Bounded verified-transaction cache shared across the import path.
//!
//! Schnorr verification is the dominant cost of block import (the E16/E17
//! telemetry shows `chain.verify_ns` dwarfing every other span), and the
//! same transaction is routinely verified more than once: at mempool
//! admission, again during block proposal, and a third time when the block
//! is imported. Like Bitcoin Core's sigcache, this module memoises the
//! fact "this exact transaction verified" so each signature pays for one
//! elliptic-curve verification per process, not one per pipeline stage.
//!
//! The cache key is [`Transaction::id`] — the tagged hash of the *full*
//! canonical encoding, signature and public key included — so a hit can
//! only be produced by byte-identical bytes that already passed
//! [`Transaction::verify`]. Caching therefore never changes the outcome of
//! verification, only its cost, and replicas with differently-warmed
//! caches stay byte-identical.
//!
//! Handles are cheap clones of one shared LRU ([`SigCache`] is `Arc`
//! inside); the chain store, the mempool and the platform all hold handles
//! to the same cache so admission-time verification pre-warms import.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use tn_crypto::Hash256;
use tn_telemetry::TelemetrySink;

use crate::error::ChainError;
use crate::transaction::Transaction;

/// Telemetry counter bumped on every cache hit.
pub const HIT_COUNTER: &str = "chain.sigcache.hit";
/// Telemetry counter bumped on every cache miss (== actual EC verifies).
pub const MISS_COUNTER: &str = "chain.sigcache.miss";

/// Default cache capacity: 65 536 transactions ≈ a few MiB, hundreds of
/// full blocks of headroom.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// True LRU over transaction ids: recency stamps in a `HashMap`, eviction
/// order in a `BTreeMap` keyed by stamp. All operations are O(log n) and
/// fully deterministic.
#[derive(Debug)]
struct LruInner {
    stamps: HashMap<Hash256, u64>,
    order: BTreeMap<u64, Hash256>,
    next_stamp: u64,
    capacity: usize,
}

impl LruInner {
    fn touch(&mut self, id: &Hash256) -> bool {
        let Some(stamp) = self.stamps.get_mut(id) else {
            return false;
        };
        self.order.remove(stamp);
        *stamp = self.next_stamp;
        self.order.insert(self.next_stamp, *id);
        self.next_stamp += 1;
        true
    }

    fn insert(&mut self, id: Hash256) {
        if self.touch(&id) {
            return;
        }
        if self.stamps.len() >= self.capacity {
            if let Some((_, oldest)) = self.order.pop_first() {
                self.stamps.remove(&oldest);
            }
        }
        self.stamps.insert(id, self.next_stamp);
        self.order.insert(self.next_stamp, id);
        self.next_stamp += 1;
    }
}

/// A shared, bounded, thread-safe verified-transaction cache.
///
/// Cloning produces another handle to the same cache.
#[derive(Debug, Clone)]
pub struct SigCache {
    inner: Arc<Mutex<LruInner>>,
}

impl Default for SigCache {
    /// A cache with [`DEFAULT_CAPACITY`].
    fn default() -> Self {
        SigCache::new(DEFAULT_CAPACITY)
    }
}

impl SigCache {
    /// Creates a cache holding at most `capacity` transaction ids
    /// (clamped to at least one).
    pub fn new(capacity: usize) -> SigCache {
        SigCache {
            inner: Arc::new(Mutex::new(LruInner {
                stamps: HashMap::new(),
                order: BTreeMap::new(),
                next_stamp: 0,
                capacity: capacity.max(1),
            })),
        }
    }

    /// True when `id` is cached; refreshes its recency on hit.
    pub fn contains(&self, id: &Hash256) -> bool {
        self.inner.lock().expect("sigcache poisoned").touch(id)
    }

    /// Records `id` as verified, evicting the least recently used entry
    /// when full.
    pub fn insert(&self, id: Hash256) {
        self.inner.lock().expect("sigcache poisoned").insert(id);
    }

    /// Number of cached ids.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("sigcache poisoned").stamps.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("sigcache poisoned").capacity
    }

    /// True when the two handles share one underlying cache.
    pub fn shares_with(&self, other: &SigCache) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Cache-aware [`Transaction::verify`]: a hit skips the EC
    /// verification entirely; a miss verifies and, on success, caches.
    /// Bumps [`HIT_COUNTER`] / [`MISS_COUNTER`] on `telemetry`.
    ///
    /// # Errors
    ///
    /// The same errors as [`Transaction::verify`]; failures are never
    /// cached.
    pub fn verify_tx(&self, tx: &Transaction, telemetry: &TelemetrySink) -> Result<(), ChainError> {
        let id = tx.id();
        if self.contains(&id) {
            telemetry.incr(HIT_COUNTER);
            return Ok(());
        }
        telemetry.incr(MISS_COUNTER);
        tx.verify()?;
        self.insert(id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Payload;
    use tn_crypto::Keypair;
    use tn_telemetry::Registry;

    fn tx(nonce: u64) -> Transaction {
        Transaction::signed(
            &Keypair::from_seed(b"cache tests"),
            nonce,
            1,
            Payload::Blob {
                tag: 1,
                data: vec![nonce as u8],
            },
        )
    }

    #[test]
    fn verify_tx_caches_success() {
        let cache = SigCache::new(16);
        let registry = Registry::new();
        let sink = registry.sink();
        let t = tx(0);
        cache.verify_tx(&t, &sink).expect("valid");
        cache.verify_tx(&t, &sink).expect("valid");
        let snap = registry.snapshot();
        assert_eq!(snap.counter(MISS_COUNTER), Some(1));
        assert_eq!(snap.counter(HIT_COUNTER), Some(1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failures_are_not_cached() {
        let cache = SigCache::new(16);
        let sink = TelemetrySink::disabled();
        let mut bad = tx(0);
        bad.fee += 1; // breaks the signature
        assert!(cache.verify_tx(&bad, &sink).is_err());
        assert!(cache.is_empty());
        // And the same corrupted tx keeps failing (no poisoning).
        assert!(cache.verify_tx(&bad, &sink).is_err());
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let cache = SigCache::new(2);
        let (a, b, c) = (tx(0).id(), tx(1).id(), tx(2).id());
        cache.insert(a);
        cache.insert(b);
        // Touch `a` so `b` is now the least recently used.
        assert!(cache.contains(&a));
        cache.insert(c);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&a));
        assert!(cache.contains(&c));
        assert!(!cache.contains(&b));
    }

    #[test]
    fn clones_share_state() {
        let cache = SigCache::new(8);
        let clone = cache.clone();
        assert!(cache.shares_with(&clone));
        clone.insert(tx(0).id());
        assert!(cache.contains(&tx(0).id()));
        assert!(!cache.shares_with(&SigCache::new(8)));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let cache = SigCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(tx(0).id());
        cache.insert(tx(1).id());
        assert_eq!(cache.len(), 1);
    }
}
