//! Block observers: deterministic projections of the canonical chain.
//!
//! The paper's accountability claim is that every derived view of the
//! platform — supply-chain graph, identity registry, fact admissions,
//! headline caches — is a pure function of block history. A
//! [`BlockObserver`] is exactly that function: it consumes canonical
//! `(block, receipts)` pairs in order and exposes a digest of its
//! derived state, so two replicas (or a live node and a replay from
//! genesis) can compare projections by hash.
//!
//! Observers registered with a [`ChainStore`](crate::store::ChainStore)
//! are fed every head-extending import; on a reorg the store resets them
//! and replays the new canonical chain from genesis, so an observer only
//! ever reflects the canonical history.

use std::any::Any;

use tn_crypto::sha256::tagged_hash;
use tn_crypto::Hash256;

use crate::block::Block;
use crate::state::Receipt;

/// A deterministic projection over canonical blocks.
///
/// Implementations must be pure functions of the observed sequence: two
/// observers of the same type fed the same `(block, receipts)` sequence
/// must report identical [`digest`](BlockObserver::digest)s.
pub trait BlockObserver {
    /// Stable identifier used in digest reports (e.g. `"supplychain"`).
    fn name(&self) -> &'static str;

    /// Consumes the next canonical block and its execution receipts.
    /// `receipts[i]` corresponds to `block.transactions[i]`.
    fn on_block(&mut self, block: &Block, receipts: &[Receipt]);

    /// A hash of the observer's entire derived state.
    fn digest(&self) -> Hash256;

    /// Returns the observer to its genesis (empty) state, ahead of a
    /// replay after a reorg.
    fn reset(&mut self);

    /// Serializes the observer's derived state for inclusion in a storage
    /// checkpoint. Observers returning `None` (the default) are rebuilt by
    /// replaying block history on recovery instead.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state previously produced by
    /// [`save_state`](BlockObserver::save_state).
    ///
    /// # Errors
    ///
    /// A message describing the failure; the default implementation always
    /// fails (no checkpoint support).
    fn load_state(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err(format!(
            "projection {} cannot load checkpoints",
            self.name()
        ))
    }

    /// Downcast support (the store owns observers as trait objects).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Combines named per-projection digests into one projection root:
/// `H("TN/projections" || (len(name) name digest)*)`.
///
/// Replicas agree on their full derived state iff they agree on this
/// root (given the same registered projection set, in order).
pub fn projection_root(digests: &[(&'static str, Hash256)]) -> Hash256 {
    let mut data = Vec::with_capacity(digests.len() * 40);
    for (name, digest) in digests {
        data.extend_from_slice(&(name.len() as u64).to_le_bytes());
        data.extend_from_slice(name.as_bytes());
        data.extend_from_slice(digest.as_bytes());
    }
    tagged_hash("TN/projections", &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_root_is_order_and_name_sensitive() {
        let a = ("alpha", tagged_hash("t", b"a"));
        let b = ("beta", tagged_hash("t", b"b"));
        let root_ab = projection_root(&[a, b]);
        let root_ba = projection_root(&[b, a]);
        assert_ne!(root_ab, root_ba);
        let renamed = ("alpha2", tagged_hash("t", b"b"));
        assert_ne!(projection_root(&[a, renamed]), projection_root(&[a, b]));
        assert_eq!(root_ab, projection_root(&[a, b]));
    }

    #[test]
    fn projection_root_of_empty_set_is_stable() {
        assert_eq!(projection_root(&[]), projection_root(&[]));
    }
}
