//! Canonical binary encoding for chain data structures.
//!
//! Everything that is hashed or signed must have exactly one byte
//! representation, so the chain does not rely on a general-purpose
//! serializer for consensus-critical paths. The codec is deliberately tiny:
//! little-endian fixed-width integers, LEB128 varints for lengths, and
//! length-prefixed byte strings.

use std::error::Error;
use std::fmt;

use tn_crypto::Hash256;

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A varint exceeded 64 bits or was not minimally encoded.
    BadVarint,
    /// A length prefix exceeded the remaining input (or a sanity bound).
    BadLength(u64),
    /// An enum discriminant was out of range.
    BadTag(u8),
    /// A UTF-8 string field contained invalid UTF-8.
    BadUtf8,
    /// Trailing bytes remained after the value was decoded.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => f.write_str("unexpected end of input"),
            DecodeError::BadVarint => f.write_str("malformed varint"),
            DecodeError::BadLength(l) => write!(f, "length prefix {l} out of range"),
            DecodeError::BadTag(t) => write!(f, "unknown enum tag {t}"),
            DecodeError::BadUtf8 => f.write_str("invalid utf-8 in string field"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl Error for DecodeError {}

/// Append-only encoder over a byte vector.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) -> &mut Self {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
        self
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_varint(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Writes a 32-byte hash (fixed width, no prefix).
    pub fn put_hash(&mut self, h: &Hash256) -> &mut Self {
        self.buf.extend_from_slice(h.as_bytes());
        self
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) -> &mut Self {
        self.put_u8(v as u8)
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps input bytes.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless the input was fully consumed.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TrailingBytes`] when bytes remain.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an unsigned LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(DecodeError::BadVarint);
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::BadVarint);
            }
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.get_varint()?;
        if len > self.remaining() as u64 {
            return Err(DecodeError::BadLength(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.get_bytes()?).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads a fixed 32-byte hash.
    pub fn get_hash(&mut self) -> Result<Hash256, DecodeError> {
        let b = self.take(32)?;
        Ok(Hash256::from_bytes(b.try_into().expect("32 bytes")))
    }

    /// Reads a bool (rejecting values other than 0/1).
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// Types with a canonical binary encoding.
pub trait Encodable {
    /// Appends this value's canonical encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience: encodes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }
}

/// Types decodable from the canonical encoding.
pub trait Decodable: Sized {
    /// Reads one value from the decoder.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Convenience: decodes from a complete byte slice, requiring full
    /// consumption.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input or trailing bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        dec.expect_end()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tn_crypto::sha256::sha256;

    #[test]
    fn primitive_round_trips() {
        let mut e = Encoder::new();
        e.put_u8(7)
            .put_u32(0xdeadbeef)
            .put_u64(u64::MAX)
            .put_varint(300)
            .put_bytes(b"hello")
            .put_str("wörld")
            .put_hash(&sha256(b"h"))
            .put_bool(true);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0xdeadbeef);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_varint().unwrap(), 300);
        assert_eq!(d.get_bytes().unwrap(), b"hello");
        assert_eq!(d.get_str().unwrap(), "wörld");
        assert_eq!(d.get_hash().unwrap(), sha256(b"h"));
        assert!(d.get_bool().unwrap());
        d.expect_end().unwrap();
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut e = Encoder::new();
            e.put_varint(v);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            assert_eq!(d.get_varint().unwrap(), v);
            d.expect_end().unwrap();
        }
    }

    #[test]
    fn varint_rejects_overflow() {
        // 10 bytes of 0xff overflows 64 bits.
        let bytes = [0xffu8; 10];
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.get_varint(), Err(DecodeError::BadVarint)));
    }

    #[test]
    fn truncated_inputs_error() {
        let mut e = Encoder::new();
        e.put_bytes(b"some payload");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes[..bytes.len() - 1]);
        assert!(matches!(d.get_bytes(), Err(DecodeError::BadLength(_))));

        let mut d = Decoder::new(&[]);
        assert!(matches!(d.get_u64(), Err(DecodeError::UnexpectedEnd)));
    }

    #[test]
    fn length_prefix_cannot_exceed_input() {
        let mut e = Encoder::new();
        e.put_varint(1_000_000);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.get_bytes(),
            Err(DecodeError::BadLength(1_000_000))
        ));
    }

    #[test]
    fn bool_rejects_junk() {
        let mut d = Decoder::new(&[2]);
        assert!(matches!(d.get_bool(), Err(DecodeError::BadTag(2))));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut d = Decoder::new(&[1, 2, 3]);
        d.get_u8().unwrap();
        assert!(matches!(d.expect_end(), Err(DecodeError::TrailingBytes(2))));
    }

    #[test]
    fn bad_utf8_detected() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.get_str(), Err(DecodeError::BadUtf8)));
    }

    proptest! {
        #[test]
        fn prop_varint_round_trip(v in any::<u64>()) {
            let mut e = Encoder::new();
            e.put_varint(v);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            prop_assert_eq!(d.get_varint().unwrap(), v);
            prop_assert!(d.expect_end().is_ok());
        }

        #[test]
        fn prop_bytes_round_trip(v in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut e = Encoder::new();
            e.put_bytes(&v);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            prop_assert_eq!(d.get_bytes().unwrap(), v);
        }

        #[test]
        fn prop_varint_is_minimal_prefix_free(a in any::<u64>(), b in any::<u64>()) {
            // Two varints in sequence decode unambiguously.
            let mut e = Encoder::new();
            e.put_varint(a).put_varint(b);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            prop_assert_eq!(d.get_varint().unwrap(), a);
            prop_assert_eq!(d.get_varint().unwrap(), b);
            prop_assert!(d.expect_end().is_ok());
        }
    }
}
