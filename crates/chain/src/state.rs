//! The replicated world state and its transition function.

use std::collections::BTreeMap;

use tn_crypto::sha256::tagged_hash;
use tn_crypto::{Address, Hash256};

use crate::codec::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use crate::error::ChainError;
use crate::transaction::{Payload, Transaction};

/// Per-account record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccountState {
    /// Token balance (the incentive currency of the ecosystem).
    pub balance: u64,
    /// Next expected nonce.
    pub nonce: u64,
}

/// Outcome of executing one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// Transaction id.
    pub tx_id: Hash256,
    /// Whether execution succeeded (failed txs still pay fees and bump the
    /// nonce, like mainstream chains).
    pub success: bool,
    /// Gas consumed by contract execution (0 for native payloads).
    pub gas_used: u64,
    /// Output bytes from contract execution, if any.
    pub output: Vec<u8>,
    /// Error message for failed executions.
    pub error: Option<String>,
}

/// Hook through which the contracts crate plugs its VM into the chain
/// without a dependency cycle. The chain executes native payloads itself
/// and delegates `ContractDeploy`/`ContractCall` to this trait.
pub trait TxExecutor {
    /// Deploys `code`, returning the new contract's address.
    ///
    /// # Errors
    ///
    /// Implementations return a message describing why deployment failed.
    fn deploy(&mut self, deployer: &Address, nonce: u64, code: &[u8]) -> Result<Address, String>;

    /// Executes a call, returning `(gas_used, output)`.
    ///
    /// # Errors
    ///
    /// Implementations return a message describing why the call failed.
    fn call(
        &mut self,
        caller: &Address,
        contract: &Address,
        input: &[u8],
        gas_limit: u64,
    ) -> Result<(u64, Vec<u8>), String>;
}

/// Executor used when no contract VM is attached: all contract payloads
/// fail cleanly.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoExecutor;

impl TxExecutor for NoExecutor {
    fn deploy(&mut self, _: &Address, _: u64, _: &[u8]) -> Result<Address, String> {
        Err("no contract executor attached".into())
    }

    fn call(
        &mut self,
        _: &Address,
        _: &Address,
        _: &[u8],
        _: u64,
    ) -> Result<(u64, Vec<u8>), String> {
        Err("no contract executor attached".into())
    }
}

/// The world state: account balances/nonces plus named anchor roots.
///
/// Uses `BTreeMap` so iteration order — and therefore the state root — is
/// canonical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct State {
    accounts: BTreeMap<Address, AccountState>,
    /// Namespaced Merkle anchors (e.g. `"factdb"` → current factual-DB
    /// root) with the owner allowed to update each.
    anchors: BTreeMap<String, (Address, Hash256)>,
}

impl State {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a genesis state from initial balances.
    pub fn genesis<I: IntoIterator<Item = (Address, u64)>>(grants: I) -> Self {
        let mut s = State::new();
        for (addr, amount) in grants {
            s.accounts.insert(
                addr,
                AccountState {
                    balance: amount,
                    nonce: 0,
                },
            );
        }
        s
    }

    /// Account record (zero-value default for unknown accounts).
    pub fn account(&self, addr: &Address) -> AccountState {
        self.accounts.get(addr).copied().unwrap_or_default()
    }

    /// Balance helper.
    pub fn balance(&self, addr: &Address) -> u64 {
        self.account(addr).balance
    }

    /// Next-nonce helper.
    pub fn nonce(&self, addr: &Address) -> u64 {
        self.account(addr).nonce
    }

    /// Number of accounts with state.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Current anchor root for a namespace.
    pub fn anchor(&self, namespace: &str) -> Option<Hash256> {
        self.anchors.get(namespace).map(|(_, r)| *r)
    }

    /// Credits tokens (used by genesis and block rewards).
    pub fn credit(&mut self, addr: &Address, amount: u64) {
        let acct = self.accounts.entry(*addr).or_default();
        acct.balance = acct.balance.saturating_add(amount);
    }

    /// Canonical state commitment: a tagged hash over the sorted account
    /// table and anchor table.
    pub fn root(&self) -> Hash256 {
        let mut enc = Encoder::new();
        enc.put_varint(self.accounts.len() as u64);
        for (addr, acct) in &self.accounts {
            enc.put_hash(addr.as_hash())
                .put_u64(acct.balance)
                .put_u64(acct.nonce);
        }
        enc.put_varint(self.anchors.len() as u64);
        for (ns, (owner, root)) in &self.anchors {
            enc.put_str(ns).put_hash(owner.as_hash()).put_hash(root);
        }
        tagged_hash("TN/state", &enc.finish())
    }

    /// Iterates accounts in canonical (address) order.
    pub fn accounts(&self) -> impl Iterator<Item = (&Address, &AccountState)> {
        self.accounts.iter()
    }

    /// Validates a transaction against current state without applying it
    /// (signature, nonce, balance).
    ///
    /// # Errors
    ///
    /// Any of the [`ChainError`] validation variants.
    pub fn validate(&self, tx: &Transaction) -> Result<(), ChainError> {
        tx.verify()?;
        self.validate_prechecked(tx)
    }

    /// [`State::validate`] minus the signature check, for transactions
    /// whose signatures were already verified (block-level batch
    /// verification, or a verified-transaction cache hit). Checks nonce
    /// and balance only.
    ///
    /// # Errors
    ///
    /// [`ChainError::BadNonce`] or [`ChainError::InsufficientBalance`].
    pub fn validate_prechecked(&self, tx: &Transaction) -> Result<(), ChainError> {
        let acct = self.account(&tx.from);
        if tx.nonce != acct.nonce {
            return Err(ChainError::BadNonce {
                account: tx.from,
                expected: acct.nonce,
                actual: tx.nonce,
            });
        }
        let needed = tx.total_debit();
        if acct.balance < needed {
            return Err(ChainError::InsufficientBalance {
                account: tx.from,
                needed,
                available: acct.balance,
            });
        }
        Ok(())
    }

    /// Applies a validated transaction, returning its receipt. `proposer`
    /// receives the fee.
    ///
    /// Contract payloads are delegated to `executor`; a failed execution
    /// still consumes the fee and bumps the nonce but produces a
    /// `success: false` receipt (state changes made by the failed contract
    /// are the executor's responsibility to roll back).
    ///
    /// # Errors
    ///
    /// Returns validation errors; execution failures are reported in the
    /// receipt, not as `Err`.
    pub fn apply(
        &mut self,
        tx: &Transaction,
        proposer: &Address,
        executor: &mut dyn TxExecutor,
    ) -> Result<Receipt, ChainError> {
        tx.verify()?;
        self.apply_prechecked(tx, proposer, executor)
    }

    /// [`State::apply`] minus the per-transaction signature verification,
    /// for transactions whose signatures were already checked at the block
    /// level (or found in a verified-transaction cache). This is what lets
    /// the import path verify each signature exactly once instead of
    /// twice.
    ///
    /// # Errors
    ///
    /// Same as [`State::apply`] except signature errors, which the caller
    /// has already ruled out.
    pub fn apply_prechecked(
        &mut self,
        tx: &Transaction,
        proposer: &Address,
        executor: &mut dyn TxExecutor,
    ) -> Result<Receipt, ChainError> {
        self.validate_prechecked(tx)?;
        // Debit fee + value, bump nonce.
        {
            let acct = self.accounts.entry(tx.from).or_default();
            acct.balance -= tx.total_debit();
            acct.nonce += 1;
        }
        self.credit(proposer, tx.fee);

        let mut receipt = Receipt {
            tx_id: tx.id(),
            success: true,
            gas_used: 0,
            output: Vec::new(),
            error: None,
        };
        match &tx.payload {
            Payload::Transfer { to, amount } => {
                self.credit(to, *amount);
            }
            Payload::Blob { .. } => {
                // Blobs have no native state effect; upper layers index them.
            }
            Payload::ContractDeploy { code } => match executor.deploy(&tx.from, tx.nonce, code) {
                Ok(addr) => receipt.output = addr.as_hash().as_bytes().to_vec(),
                Err(e) => {
                    receipt.success = false;
                    receipt.error = Some(e);
                }
            },
            Payload::ContractCall {
                contract,
                input,
                gas_limit,
            } => match executor.call(&tx.from, contract, input, *gas_limit) {
                Ok((gas, out)) => {
                    receipt.gas_used = gas;
                    receipt.output = out;
                }
                Err(e) => {
                    receipt.success = false;
                    receipt.gas_used = *gas_limit;
                    receipt.error = Some(e);
                }
            },
            Payload::AnchorRoot { namespace, root } => match self.anchors.get(namespace) {
                Some((owner, _)) if owner != &tx.from => {
                    receipt.success = false;
                    receipt.error = Some(format!(
                        "anchor namespace {namespace:?} owned by {}",
                        owner.short()
                    ));
                }
                _ => {
                    self.anchors.insert(namespace.clone(), (tx.from, *root));
                }
            },
        }
        Ok(receipt)
    }
}

impl Encodable for State {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.accounts.len() as u64);
        for (addr, acct) in &self.accounts {
            enc.put_hash(addr.as_hash())
                .put_u64(acct.balance)
                .put_u64(acct.nonce);
        }
        enc.put_varint(self.anchors.len() as u64);
        for (ns, (owner, root)) in &self.anchors {
            enc.put_str(ns).put_hash(owner.as_hash()).put_hash(root);
        }
    }
}

impl Decodable for State {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = dec.get_varint()?;
        if n > 10_000_000 {
            return Err(DecodeError::BadLength(n));
        }
        let mut state = State::new();
        for _ in 0..n {
            let addr = Address::from_hash(dec.get_hash()?);
            let balance = dec.get_u64()?;
            let nonce = dec.get_u64()?;
            state.accounts.insert(addr, AccountState { balance, nonce });
        }
        let m = dec.get_varint()?;
        if m > 1_000_000 {
            return Err(DecodeError::BadLength(m));
        }
        for _ in 0..m {
            let ns = dec.get_str()?;
            let owner = Address::from_hash(dec.get_hash()?);
            let root = dec.get_hash()?;
            state.anchors.insert(ns, (owner, root));
        }
        Ok(state)
    }
}

impl Encodable for Receipt {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_hash(&self.tx_id)
            .put_bool(self.success)
            .put_u64(self.gas_used)
            .put_bytes(&self.output)
            .put_bool(self.error.is_some());
        if let Some(err) = &self.error {
            enc.put_str(err);
        }
    }
}

impl Decodable for Receipt {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let tx_id = dec.get_hash()?;
        let success = dec.get_bool()?;
        let gas_used = dec.get_u64()?;
        let output = dec.get_bytes()?;
        let error = if dec.get_bool()? {
            Some(dec.get_str()?)
        } else {
            None
        };
        Ok(Receipt {
            tx_id,
            success,
            gas_used,
            output,
            error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::blob_tags;
    use tn_crypto::Keypair;

    fn setup() -> (Keypair, Keypair, State) {
        let alice = Keypair::from_seed(b"alice");
        let bob = Keypair::from_seed(b"bob");
        let state = State::genesis([(alice.address(), 1000)]);
        (alice, bob, state)
    }

    #[test]
    fn genesis_balances() {
        let (alice, bob, state) = setup();
        assert_eq!(state.balance(&alice.address()), 1000);
        assert_eq!(state.balance(&bob.address()), 0);
        assert_eq!(state.nonce(&alice.address()), 0);
    }

    #[test]
    fn transfer_moves_balance_and_fee() {
        let (alice, bob, mut state) = setup();
        let proposer = Keypair::from_seed(b"proposer").address();
        let tx = Transaction::signed(
            &alice,
            0,
            10,
            Payload::Transfer {
                to: bob.address(),
                amount: 100,
            },
        );
        let r = state
            .apply(&tx, &proposer, &mut NoExecutor)
            .expect("applies");
        assert!(r.success);
        assert_eq!(state.balance(&alice.address()), 890);
        assert_eq!(state.balance(&bob.address()), 100);
        assert_eq!(state.balance(&proposer), 10);
        assert_eq!(state.nonce(&alice.address()), 1);
    }

    #[test]
    fn nonce_must_be_sequential() {
        let (alice, bob, mut state) = setup();
        let tx = Transaction::signed(
            &alice,
            5,
            0,
            Payload::Transfer {
                to: bob.address(),
                amount: 1,
            },
        );
        match state.apply(&tx, &Address::SYSTEM, &mut NoExecutor) {
            Err(ChainError::BadNonce {
                expected: 0,
                actual: 5,
                ..
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn replay_is_rejected_by_nonce() {
        let (alice, bob, mut state) = setup();
        let tx = Transaction::signed(
            &alice,
            0,
            1,
            Payload::Transfer {
                to: bob.address(),
                amount: 1,
            },
        );
        state
            .apply(&tx, &Address::SYSTEM, &mut NoExecutor)
            .expect("first");
        assert!(matches!(
            state.apply(&tx, &Address::SYSTEM, &mut NoExecutor),
            Err(ChainError::BadNonce { .. })
        ));
    }

    #[test]
    fn overspend_rejected() {
        let (alice, bob, mut state) = setup();
        let tx = Transaction::signed(
            &alice,
            0,
            1,
            Payload::Transfer {
                to: bob.address(),
                amount: 1000,
            },
        );
        assert!(matches!(
            state.apply(&tx, &Address::SYSTEM, &mut NoExecutor),
            Err(ChainError::InsufficientBalance {
                needed: 1001,
                available: 1000,
                ..
            })
        ));
    }

    #[test]
    fn anchor_ownership_enforced() {
        let (alice, bob, mut state) = setup();
        state.credit(&bob.address(), 100);
        let root1 = tn_crypto::sha256::sha256(b"r1");
        let tx = Transaction::signed(
            &alice,
            0,
            0,
            Payload::AnchorRoot {
                namespace: "factdb".into(),
                root: root1,
            },
        );
        let r = state
            .apply(&tx, &Address::SYSTEM, &mut NoExecutor)
            .expect("applies");
        assert!(r.success);
        assert_eq!(state.anchor("factdb"), Some(root1));

        // Bob cannot overwrite alice's namespace.
        let root2 = tn_crypto::sha256::sha256(b"r2");
        let tx = Transaction::signed(
            &bob,
            0,
            0,
            Payload::AnchorRoot {
                namespace: "factdb".into(),
                root: root2,
            },
        );
        let r = state
            .apply(&tx, &Address::SYSTEM, &mut NoExecutor)
            .expect("applies");
        assert!(!r.success);
        assert_eq!(state.anchor("factdb"), Some(root1));

        // Alice can update her own namespace.
        let tx = Transaction::signed(
            &alice,
            1,
            0,
            Payload::AnchorRoot {
                namespace: "factdb".into(),
                root: root2,
            },
        );
        assert!(
            state
                .apply(&tx, &Address::SYSTEM, &mut NoExecutor)
                .unwrap()
                .success
        );
        assert_eq!(state.anchor("factdb"), Some(root2));
    }

    #[test]
    fn contract_payloads_fail_cleanly_without_executor() {
        let (alice, _, mut state) = setup();
        let tx = Transaction::signed(&alice, 0, 5, Payload::ContractDeploy { code: vec![1] });
        let r = state
            .apply(&tx, &Address::SYSTEM, &mut NoExecutor)
            .expect("applies");
        assert!(!r.success);
        assert!(r
            .error
            .as_deref()
            .unwrap_or("")
            .contains("no contract executor"));
        // Fee still charged, nonce bumped.
        assert_eq!(state.balance(&alice.address()), 995);
        assert_eq!(state.nonce(&alice.address()), 1);
    }

    #[test]
    fn state_root_changes_with_state() {
        let (alice, bob, mut state) = setup();
        let r0 = state.root();
        let tx = Transaction::signed(
            &alice,
            0,
            0,
            Payload::Transfer {
                to: bob.address(),
                amount: 1,
            },
        );
        state
            .apply(&tx, &Address::SYSTEM, &mut NoExecutor)
            .expect("applies");
        assert_ne!(state.root(), r0);
    }

    #[test]
    fn state_root_is_order_independent() {
        let a = Keypair::from_seed(b"a").address();
        let b = Keypair::from_seed(b"b").address();
        let s1 = State::genesis([(a, 1), (b, 2)]);
        let s2 = State::genesis([(b, 2), (a, 1)]);
        assert_eq!(s1.root(), s2.root());
    }

    #[test]
    fn blob_costs_only_fee() {
        let (alice, _, mut state) = setup();
        let tx = Transaction::signed(
            &alice,
            0,
            3,
            Payload::Blob {
                tag: blob_tags::NEWS_PUBLISH,
                data: b"story".to_vec(),
            },
        );
        let r = state
            .apply(&tx, &Address::SYSTEM, &mut NoExecutor)
            .expect("applies");
        assert!(r.success);
        assert_eq!(state.balance(&alice.address()), 997);
    }
}
