//! The chain store: block storage, validation against parent state, and
//! longest-chain fork choice.
//!
//! In the full platform the consensus layer (PBFT) decides a single block
//! per height, so forks never persist; the store nevertheless implements
//! fork choice so it can also back the PoA baseline (where brief forks are
//! possible) and so tests can exercise reorg behaviour.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use tn_crypto::{Address, Hash256, Keypair};
use tn_par::Pool;
use tn_telemetry::TelemetrySink;
use tn_trace::{lanes, replica_span_id, span_id, TraceId, TraceSink};

use crate::block::Block;
use crate::error::ChainError;
use crate::observer::{self, BlockObserver};
use crate::sigcache::SigCache;
use crate::state::{Receipt, State, TxExecutor};
use crate::transaction::Transaction;

/// A stored block together with its post-state and receipts.
#[derive(Debug, Clone)]
struct StoredBlock {
    block: Block,
    post_state: State,
    receipts: Vec<Receipt>,
}

/// The block store and canonical-chain tracker.
///
/// Registered [`BlockObserver`] projections are fed every canonical
/// block in order: head-extending imports notify observers directly,
/// while reorgs reset them and replay the new canonical chain from
/// genesis, so observers always reflect exactly the canonical history.
pub struct ChainStore {
    blocks: HashMap<Hash256, StoredBlock>,
    /// Current head (tip of the canonical chain).
    head: Hash256,
    genesis: Hash256,
    observers: Vec<Box<dyn BlockObserver>>,
    telemetry: TelemetrySink,
    trace: TraceSink,
    /// Worker pool used for block verification (tx hashing, Merkle
    /// reduction, signature checks). Defaults to [`Pool::auto`].
    pool: Pool,
    /// Verified-transaction cache shared with the mempool and proposer so
    /// each signature pays for at most one EC verification per process.
    sig_cache: SigCache,
}

impl fmt::Debug for ChainStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChainStore")
            .field("blocks", &self.blocks.len())
            .field("head", &self.head)
            .field("genesis", &self.genesis)
            .field(
                "observers",
                &self.observers.iter().map(|o| o.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ChainStore {
    /// Creates a store holding only a genesis block that commits
    /// `genesis_state`.
    pub fn new(genesis_state: State, genesis_proposer: &Keypair) -> ChainStore {
        let block = Block::build(
            genesis_proposer,
            0,
            Hash256::ZERO,
            genesis_state.root(),
            0,
            Vec::new(),
        );
        let id = block.id();
        let mut blocks = HashMap::new();
        blocks.insert(
            id,
            StoredBlock {
                block,
                post_state: genesis_state,
                receipts: Vec::new(),
            },
        );
        ChainStore {
            blocks,
            head: id,
            genesis: id,
            observers: Vec::new(),
            telemetry: TelemetrySink::disabled(),
            trace: TraceSink::disabled(),
            pool: Pool::auto(),
            sig_cache: SigCache::default(),
        }
    }

    /// Routes the store's metrics (import latency, per-projection apply
    /// time, reorg and replay counters) to `sink`. The default sink is
    /// disabled, so an uninstrumented store records nothing.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Routes the store's spans to `sink`: per-block `chain.import` with
    /// `chain.verify` / `chain.execute` / `chain.projections` children,
    /// per-transaction `tx.verify` and `tx.apply`, and per-projection
    /// `projection.<name>` spans.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Sets the worker pool used for block verification. `Pool::new(0)`
    /// and [`Pool::auto`] both resolve to the machine's available
    /// parallelism; [`Pool::sequential`] forces single-threaded
    /// verification. Results are byte-identical for every worker count.
    pub fn set_verify_pool(&mut self, pool: Pool) {
        self.pool = pool;
    }

    /// The worker pool currently used for block verification.
    pub fn verify_pool(&self) -> Pool {
        self.pool
    }

    /// Replaces the verified-transaction cache. Use this to share one
    /// cache between the store and other pipeline stages (mempool,
    /// proposer) — see [`ChainStore::sig_cache`].
    pub fn set_sig_cache(&mut self, cache: SigCache) {
        self.sig_cache = cache;
    }

    /// A handle to the store's verified-transaction cache. Clones share
    /// the underlying cache, so handing this to the mempool means
    /// admission-time verification pre-warms block import.
    pub fn sig_cache(&self) -> SigCache {
        self.sig_cache.clone()
    }

    /// The genesis block id.
    pub fn genesis_id(&self) -> Hash256 {
        self.genesis
    }

    /// The canonical head block id.
    pub fn head_id(&self) -> Hash256 {
        self.head
    }

    /// The canonical head block.
    pub fn head(&self) -> &Block {
        &self.blocks[&self.head].block
    }

    /// Height of the canonical head.
    pub fn height(&self) -> u64 {
        self.head().header.height
    }

    /// State after the canonical head.
    pub fn head_state(&self) -> &State {
        &self.blocks[&self.head].post_state
    }

    /// Looks up a block by id.
    pub fn block(&self, id: &Hash256) -> Option<&Block> {
        self.blocks.get(id).map(|s| &s.block)
    }

    /// Post-state of an arbitrary stored block.
    pub fn state_of(&self, id: &Hash256) -> Option<&State> {
        self.blocks.get(id).map(|s| &s.post_state)
    }

    /// Receipts of an arbitrary stored block.
    pub fn receipts_of(&self, id: &Hash256) -> Option<&[Receipt]> {
        self.blocks.get(id).map(|s| s.receipts.as_slice())
    }

    /// Number of stored blocks (including genesis and non-canonical forks).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Always false: the store always holds at least genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Validates `block` against its parent and, if valid, stores it and
    /// re-evaluates fork choice (longest chain; ties broken by smaller
    /// block id for determinism).
    ///
    /// # Errors
    ///
    /// Any structural or stateful [`ChainError`].
    pub fn import(
        &mut self,
        block: Block,
        executor: &mut dyn TxExecutor,
    ) -> Result<Vec<Receipt>, ChainError> {
        let telemetry = self.telemetry.clone();
        let _span = telemetry.span("chain.import_ns");
        let trace = self.trace.clone();
        let t0 = trace.now_ns();
        let block_trace = if trace.is_enabled() {
            TraceId::from_seed(block.id().as_bytes())
        } else {
            TraceId::NONE
        };
        let height = block.header.height;
        let n_txs = block.transactions.len() as u64;
        let result = self.import_inner(block, executor);
        if trace.is_enabled() && result.is_ok() {
            // The pipeline's commit span id is computable from the block
            // trace alone, so the link holds whether or not a pipeline
            // actually drove this import.
            let parent = replica_span_id(block_trace, "pipeline.commit", trace.replica());
            trace.complete(
                block_trace,
                "chain.import",
                parent,
                lanes::PIPELINE,
                t0,
                &[("height", height), ("txs", n_txs)],
            );
        }
        match &result {
            Ok(receipts) => {
                telemetry.incr("chain.blocks_imported");
                telemetry.add("chain.txs_executed", receipts.len() as u64);
            }
            Err(err) => {
                telemetry.incr("chain.blocks_rejected");
                telemetry.event("block_rejected", || err.to_string());
            }
        }
        result
    }

    fn import_inner(
        &mut self,
        block: Block,
        executor: &mut dyn TxExecutor,
    ) -> Result<Vec<Receipt>, ChainError> {
        let id = block.id();
        if self.blocks.contains_key(&id) {
            return Err(ChainError::DuplicateBlock(id));
        }
        let trace = self.trace.clone();
        let block_trace = if trace.is_enabled() {
            TraceId::from_seed(id.as_bytes())
        } else {
            TraceId::NONE
        };
        let import_span = replica_span_id(block_trace, "chain.import", trace.replica());
        {
            let _verify = self.telemetry.span("chain.verify_ns");
            let v0 = trace.now_ns();
            let verify_span = replica_span_id(block_trace, "chain.verify", trace.replica());
            block.verify_structure_traced(
                &self.pool,
                Some(&self.sig_cache),
                &self.telemetry,
                &trace,
                verify_span,
            )?;
            trace.complete(
                block_trace,
                "chain.verify",
                import_span,
                lanes::VERIFY,
                v0,
                &[
                    ("txs", block.transactions.len() as u64),
                    ("workers", self.pool.workers() as u64),
                ],
            );
        }
        let parent = self
            .blocks
            .get(&block.header.parent)
            .ok_or(ChainError::UnknownParent(block.header.parent))?;
        let expected_height = parent.block.header.height + 1;
        if block.header.height != expected_height {
            return Err(ChainError::BadHeight {
                expected: expected_height,
                actual: block.header.height,
            });
        }
        if block.header.timestamp < parent.block.header.timestamp {
            return Err(ChainError::TimestampRegression);
        }
        let mut state = parent.post_state.clone();
        let mut receipts = Vec::with_capacity(block.transactions.len());
        let e0 = trace.now_ns();
        for tx in &block.transactions {
            // Signatures were batch-verified in `verify_structure_with`;
            // only nonce/balance/execution remain.
            let a0 = trace.now_ns();
            receipts.push(state.apply_prechecked(tx, &block.header.proposer, executor)?);
            if trace.is_enabled() {
                // Each replica applies the tx; all of these spans parent
                // to the single cluster-wide `tx.commit` span, whose id is
                // computable from the tx trace without coordination.
                let tx_trace = TraceId::from_seed(tx.id().as_bytes());
                trace.complete(
                    tx_trace,
                    "tx.apply",
                    span_id(tx_trace, "tx.commit"),
                    lanes::EXECUTE,
                    a0,
                    &[("height", block.header.height)],
                );
            }
        }
        trace.complete(
            block_trace,
            "chain.execute",
            import_span,
            lanes::EXECUTE,
            e0,
            &[("txs", block.transactions.len() as u64)],
        );
        if state.root() != block.header.state_root {
            return Err(ChainError::BadStateRoot);
        }
        let height = block.header.height;
        let parent_id = block.header.parent;
        self.blocks.insert(
            id,
            StoredBlock {
                block,
                post_state: state,
                receipts: receipts.clone(),
            },
        );
        // Fork choice: longest chain, deterministic tie-break.
        let old_head = self.head;
        let head_height = self.height();
        if height > head_height || (height == head_height && id < self.head) {
            self.head = id;
        }
        // Keep projections in lock-step with the canonical chain.
        if self.head == id {
            if parent_id == old_head {
                let timed = self.telemetry.is_enabled();
                let telemetry = self.telemetry.clone();
                let mut observers = std::mem::take(&mut self.observers);
                let stored = &self.blocks[&id];
                let p0 = trace.now_ns();
                let projections_span =
                    replica_span_id(block_trace, "chain.projections", trace.replica());
                for ob in observers.iter_mut() {
                    let o0 = trace.now_ns();
                    if timed {
                        let started = Instant::now();
                        ob.on_block(&stored.block, &stored.receipts);
                        telemetry.observe(
                            &format!("chain.projection.{}.apply_ns", ob.name()),
                            started.elapsed().as_nanos() as u64,
                        );
                    } else {
                        ob.on_block(&stored.block, &stored.receipts);
                    }
                    trace.complete(
                        block_trace,
                        format!("projection.{}", ob.name()),
                        projections_span,
                        lanes::PROJECTION,
                        o0,
                        &[],
                    );
                }
                if !observers.is_empty() {
                    trace.complete(
                        block_trace,
                        "chain.projections",
                        import_span,
                        lanes::PROJECTION,
                        p0,
                        &[("projections", observers.len() as u64)],
                    );
                }
                self.observers = observers;
            } else {
                // Reorg: the new head is not a child of the old one.
                self.telemetry.incr("chain.reorgs");
                self.rebuild_observers();
            }
        }
        Ok(receipts)
    }

    /// Registers a projection. The existing canonical history (genesis
    /// first) is replayed into it, so observers registered after blocks
    /// were imported still see the complete canonical sequence.
    pub fn register_observer(&mut self, mut observer: Box<dyn BlockObserver>) {
        observer.reset();
        let mut ids = self.canonical_chain();
        ids.reverse();
        for id in &ids {
            let stored = &self.blocks[id];
            observer.on_block(&stored.block, &stored.receipts);
        }
        self.observers.push(observer);
    }

    /// Looks up a registered observer by name, downcast to its concrete
    /// projection type.
    pub fn observer<T: 'static>(&self, name: &str) -> Option<&T> {
        self.observers
            .iter()
            .find(|o| o.name() == name)
            .and_then(|o| o.as_any().downcast_ref::<T>())
    }

    /// Mutable variant of [`ChainStore::observer`].
    pub fn observer_mut<T: 'static>(&mut self, name: &str) -> Option<&mut T> {
        self.observers
            .iter_mut()
            .find(|o| o.name() == name)
            .and_then(|o| o.as_any_mut().downcast_mut::<T>())
    }

    /// Per-projection state digests, in registration order.
    pub fn projection_digests(&self) -> Vec<(&'static str, Hash256)> {
        self.observers
            .iter()
            .map(|o| (o.name(), o.digest()))
            .collect()
    }

    /// Combined digest over all registered projections (see
    /// [`observer::projection_root`]).
    pub fn projection_root(&self) -> Hash256 {
        observer::projection_root(&self.projection_digests())
    }

    /// Replays the canonical chain from genesis into an external set of
    /// (fresh or stale) observers. This is the audit path: digests of
    /// the replayed observers must match the live registered ones.
    pub fn replay_into(&self, observers: &mut [Box<dyn BlockObserver>]) {
        let _span = self.telemetry.span("chain.replay_ns");
        self.telemetry.incr("chain.replays");
        for ob in observers.iter_mut() {
            ob.reset();
        }
        let mut ids = self.canonical_chain();
        ids.reverse();
        for id in &ids {
            let stored = &self.blocks[id];
            for ob in observers.iter_mut() {
                ob.on_block(&stored.block, &stored.receipts);
            }
            self.telemetry.incr("chain.replay_blocks");
        }
    }

    /// Resets every observer and replays the canonical chain (used after
    /// a reorg changes canonical history).
    fn rebuild_observers(&mut self) {
        if self.observers.is_empty() {
            return;
        }
        let mut observers = std::mem::take(&mut self.observers);
        self.replay_into(&mut observers);
        self.observers = observers;
    }

    /// Produces (but does not import) a block extending the canonical head,
    /// executing `txs` against the head state. Transactions that fail
    /// validation are skipped (like a real proposer dropping invalid txs).
    pub fn propose(
        &self,
        proposer: &Keypair,
        timestamp: u64,
        txs: Vec<Transaction>,
        executor: &mut dyn TxExecutor,
    ) -> Block {
        let mut state = self.head_state().clone();
        let mut included = Vec::with_capacity(txs.len());
        for tx in txs {
            // Cache-aware verification: txs admitted through a mempool
            // sharing this store's cache skip the EC check here.
            if self.sig_cache.verify_tx(&tx, &self.telemetry).is_ok()
                && state
                    .apply_prechecked(&tx, &proposer.address(), executor)
                    .is_ok()
            {
                included.push(tx);
            }
        }
        Block::build(
            proposer,
            self.height() + 1,
            self.head_id(),
            state.root(),
            timestamp,
            included,
        )
    }

    /// Walks the canonical chain from head back to genesis, returning block
    /// ids (head first).
    pub fn canonical_chain(&self) -> Vec<Hash256> {
        let mut out = Vec::new();
        let mut cur = self.head;
        loop {
            out.push(cur);
            let b = &self.blocks[&cur].block;
            if b.header.height == 0 {
                break;
            }
            cur = b.header.parent;
        }
        out
    }

    /// Iterates all transactions on the canonical chain in execution order
    /// (genesis-era first). Used by the indexing layers (supply-chain graph,
    /// ratings ledger).
    pub fn canonical_transactions(&self) -> Vec<&Transaction> {
        let mut ids = self.canonical_chain();
        ids.reverse();
        ids.iter()
            .flat_map(|id| self.blocks[id].block.transactions.iter())
            .collect()
    }

    /// Convenience accessor: the balance of `addr` at the head state.
    pub fn balance(&self, addr: &Address) -> u64 {
        self.head_state().balance(addr)
    }

    /// Serializes the full chain — genesis state, genesis block, and every
    /// stored block — into one snapshot blob (see [`ChainStore::restore`]).
    pub fn snapshot(&self) -> Vec<u8> {
        use crate::codec::{Encodable, Encoder};
        let mut enc = Encoder::new();
        let genesis = &self.blocks[&self.genesis];
        genesis.post_state.encode(&mut enc);
        genesis.block.encode(&mut enc);
        // Non-genesis blocks in height order (parents before children).
        let mut blocks: Vec<&StoredBlock> = self
            .blocks
            .values()
            .filter(|b| b.block.header.height > 0)
            .collect();
        blocks.sort_by_key(|b| (b.block.header.height, b.block.id()));
        enc.put_varint(blocks.len() as u64);
        for b in blocks {
            b.block.encode(&mut enc);
        }
        enc.finish()
    }

    /// Restores a chain from a snapshot, re-validating and re-executing
    /// every block against `executor` (so the restored state is recomputed,
    /// never trusted from the snapshot).
    ///
    /// # Errors
    ///
    /// Decode errors or any validation error hit during replay.
    pub fn restore(bytes: &[u8], executor: &mut dyn TxExecutor) -> Result<ChainStore, ChainError> {
        use crate::codec::{Decodable, Decoder};
        let mut dec = Decoder::new(bytes);
        let genesis_state = State::decode(&mut dec)?;
        let genesis_block = Block::decode(&mut dec)?;
        genesis_block.verify_structure()?;
        if genesis_block.header.height != 0
            || genesis_block.header.state_root != genesis_state.root()
        {
            return Err(ChainError::BadStateRoot);
        }
        let id = genesis_block.id();
        let mut blocks = HashMap::new();
        blocks.insert(
            id,
            StoredBlock {
                block: genesis_block,
                post_state: genesis_state,
                receipts: Vec::new(),
            },
        );
        let mut store = ChainStore {
            blocks,
            head: id,
            genesis: id,
            observers: Vec::new(),
            telemetry: TelemetrySink::disabled(),
            trace: TraceSink::disabled(),
            pool: Pool::auto(),
            sig_cache: SigCache::default(),
        };
        let n = dec.get_varint()?;
        if n > 10_000_000 {
            return Err(crate::codec::DecodeError::BadLength(n).into());
        }
        for _ in 0..n {
            let block = Block::decode(&mut dec)?;
            store.import(block, executor)?;
        }
        dec.expect_end().map_err(ChainError::from)?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NoExecutor;
    use crate::transaction::Payload;

    fn alice() -> Keypair {
        Keypair::from_seed(b"alice")
    }

    fn proposer() -> Keypair {
        Keypair::from_seed(b"proposer")
    }

    fn store_with_funds() -> ChainStore {
        let state = State::genesis([(alice().address(), 10_000)]);
        ChainStore::new(state, &proposer())
    }

    fn blob(nonce: u64) -> Transaction {
        Transaction::signed(
            &alice(),
            nonce,
            1,
            Payload::Blob {
                tag: 1,
                data: vec![nonce as u8],
            },
        )
    }

    #[test]
    fn genesis_is_head() {
        let store = store_with_funds();
        assert_eq!(store.height(), 0);
        assert_eq!(store.head_id(), store.genesis_id());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn propose_and_import_extends_chain() {
        let mut store = store_with_funds();
        let block = store.propose(&proposer(), 10, vec![blob(0), blob(1)], &mut NoExecutor);
        let receipts = store
            .import(block.clone(), &mut NoExecutor)
            .expect("imports");
        assert_eq!(receipts.len(), 2);
        assert!(receipts.iter().all(|r| r.success));
        assert_eq!(store.height(), 1);
        assert_eq!(store.head_id(), block.id());
        // Fees accrued to proposer.
        assert_eq!(store.balance(&proposer().address()), 2);
    }

    #[test]
    fn duplicate_block_rejected() {
        let mut store = store_with_funds();
        let block = store.propose(&proposer(), 10, vec![blob(0)], &mut NoExecutor);
        store
            .import(block.clone(), &mut NoExecutor)
            .expect("first import");
        assert!(matches!(
            store.import(block, &mut NoExecutor),
            Err(ChainError::DuplicateBlock(_))
        ));
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut store = store_with_funds();
        let block = Block::build(
            &proposer(),
            1,
            tn_crypto::sha256::sha256(b"nowhere"),
            Hash256::ZERO,
            10,
            vec![],
        );
        assert!(matches!(
            store.import(block, &mut NoExecutor),
            Err(ChainError::UnknownParent(_))
        ));
    }

    #[test]
    fn wrong_height_rejected() {
        let mut store = store_with_funds();
        let block = Block::build(
            &proposer(),
            5,
            store.head_id(),
            store.head_state().root(),
            10,
            vec![],
        );
        assert!(matches!(
            store.import(block, &mut NoExecutor),
            Err(ChainError::BadHeight {
                expected: 1,
                actual: 5
            })
        ));
    }

    #[test]
    fn wrong_state_root_rejected() {
        let mut store = store_with_funds();
        let block = Block::build(
            &proposer(),
            1,
            store.head_id(),
            tn_crypto::sha256::sha256(b"bogus state"),
            10,
            vec![],
        );
        assert!(matches!(
            store.import(block, &mut NoExecutor),
            Err(ChainError::BadStateRoot)
        ));
    }

    #[test]
    fn timestamp_regression_rejected() {
        let mut store = store_with_funds();
        let b1 = store.propose(&proposer(), 100, vec![], &mut NoExecutor);
        store.import(b1, &mut NoExecutor).expect("imports");
        let mut state = store.head_state().clone();
        let b2 = Block::build(&proposer(), 2, store.head_id(), state.root(), 50, vec![]);
        let _ = &mut state;
        assert!(matches!(
            store.import(b2, &mut NoExecutor),
            Err(ChainError::TimestampRegression)
        ));
    }

    #[test]
    fn longest_chain_wins_reorg() {
        let mut store = store_with_funds();
        let genesis = store.head_id();
        let p1 = proposer();
        let p2 = Keypair::from_seed(b"rival");

        // Branch A: one block on genesis.
        let a1 = store.propose(&p1, 10, vec![blob(0)], &mut NoExecutor);
        store.import(a1.clone(), &mut NoExecutor).expect("a1");
        assert_eq!(store.head_id(), a1.id());

        // Branch B: two blocks on genesis → should win.
        let genesis_state = store.state_of(&genesis).expect("genesis state").clone();
        let b1 = Block::build(&p2, 1, genesis, genesis_state.root(), 11, vec![]);
        store.import(b1.clone(), &mut NoExecutor).expect("b1");
        let b1_state = store.state_of(&b1.id()).expect("b1 state").clone();
        let b2 = Block::build(&p2, 2, b1.id(), b1_state.root(), 12, vec![]);
        store.import(b2.clone(), &mut NoExecutor).expect("b2");

        assert_eq!(store.head_id(), b2.id());
        assert_eq!(store.height(), 2);
        let chain = store.canonical_chain();
        assert_eq!(chain, vec![b2.id(), b1.id(), genesis]);
    }

    #[test]
    fn canonical_transactions_in_order() {
        let mut store = store_with_funds();
        let b1 = store.propose(&proposer(), 1, vec![blob(0)], &mut NoExecutor);
        store.import(b1, &mut NoExecutor).expect("b1");
        let b2 = store.propose(&proposer(), 2, vec![blob(1), blob(2)], &mut NoExecutor);
        store.import(b2, &mut NoExecutor).expect("b2");
        let txs = store.canonical_transactions();
        assert_eq!(txs.len(), 3);
        let nonces: Vec<u64> = txs.iter().map(|t| t.nonce).collect();
        assert_eq!(nonces, vec![0, 1, 2]);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut store = store_with_funds();
        for i in 0..4u64 {
            let block = store.propose(&proposer(), 10 + i, vec![blob(i)], &mut NoExecutor);
            store.import(block, &mut NoExecutor).expect("imports");
        }
        let snap = store.snapshot();
        let restored = ChainStore::restore(&snap, &mut NoExecutor).expect("restores");
        assert_eq!(restored.head_id(), store.head_id());
        assert_eq!(restored.height(), store.height());
        assert_eq!(restored.head_state().root(), store.head_state().root());
        assert_eq!(restored.canonical_chain(), store.canonical_chain());
        // The restored store keeps working.
        let mut restored = restored;
        let block = restored.propose(&proposer(), 99, vec![blob(4)], &mut NoExecutor);
        restored.import(block, &mut NoExecutor).expect("extends");
        assert_eq!(restored.height(), 5);
    }

    #[test]
    fn restore_rejects_tampered_snapshot() {
        let mut store = store_with_funds();
        let block = store.propose(&proposer(), 10, vec![blob(0)], &mut NoExecutor);
        store.import(block, &mut NoExecutor).expect("imports");
        let snap = store.snapshot();
        // Flip one byte near the end (inside the last block's signature or
        // payload): restore must fail, never silently accept.
        for flip in [snap.len() - 1, snap.len() / 2] {
            let mut bad = snap.clone();
            bad[flip] ^= 0xff;
            assert!(
                ChainStore::restore(&bad, &mut NoExecutor).is_err(),
                "tampered snapshot (byte {flip}) accepted"
            );
        }
        assert!(ChainStore::restore(&[], &mut NoExecutor).is_err());
    }

    #[test]
    fn propose_skips_invalid_txs() {
        let store = store_with_funds();
        // Bad nonce tx is dropped by the proposer.
        let good = blob(0);
        let bad = blob(7);
        let block = store.propose(&proposer(), 1, vec![bad, good], &mut NoExecutor);
        assert_eq!(block.transactions.len(), 1);
        assert_eq!(block.transactions[0].nonce, 0);
    }

    /// Test projection: a running hash over observed `(block id, receipt
    /// successes)` — sensitive to both sequence and content.
    #[derive(Default)]
    struct ChainTrace {
        acc: Vec<u8>,
        blocks_seen: usize,
    }

    impl crate::observer::BlockObserver for ChainTrace {
        fn name(&self) -> &'static str {
            "trace"
        }

        fn on_block(&mut self, block: &Block, receipts: &[Receipt]) {
            self.acc.extend_from_slice(block.id().as_bytes());
            for r in receipts {
                self.acc.push(r.success as u8);
            }
            self.blocks_seen += 1;
        }

        fn digest(&self) -> Hash256 {
            tn_crypto::sha256::tagged_hash("test/trace", &self.acc)
        }

        fn reset(&mut self) {
            self.acc.clear();
            self.blocks_seen = 0;
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn observer_sees_imports_and_catches_up_on_registration() {
        let mut store = store_with_funds();
        let b1 = store.propose(&proposer(), 10, vec![blob(0)], &mut NoExecutor);
        store.import(b1, &mut NoExecutor).expect("b1");

        // Late registration replays history (genesis + b1).
        store.register_observer(Box::new(ChainTrace::default()));
        assert_eq!(
            store.observer::<ChainTrace>("trace").unwrap().blocks_seen,
            2
        );

        let b2 = store.propose(&proposer(), 11, vec![blob(1)], &mut NoExecutor);
        store.import(b2, &mut NoExecutor).expect("b2");
        assert_eq!(
            store.observer::<ChainTrace>("trace").unwrap().blocks_seen,
            3
        );

        // Live digest equals a replay into a fresh observer.
        let mut fresh: Vec<Box<dyn BlockObserver>> = vec![Box::new(ChainTrace::default())];
        store.replay_into(&mut fresh);
        assert_eq!(fresh[0].digest(), store.projection_digests()[0].1);
        assert_eq!(
            store.projection_root(),
            observer::projection_root(&[("trace", fresh[0].digest())])
        );
    }

    #[test]
    fn reorg_rebuilds_observers_from_canonical_chain() {
        let mut store = store_with_funds();
        store.register_observer(Box::new(ChainTrace::default()));
        let genesis = store.head_id();
        let p1 = proposer();
        let p2 = Keypair::from_seed(b"rival");

        // Branch A extends the head — observer follows it live.
        let a1 = store.propose(&p1, 10, vec![blob(0)], &mut NoExecutor);
        store.import(a1, &mut NoExecutor).expect("a1");
        let digest_on_a = store.projection_digests()[0].1;

        // Branch B (two empty blocks) wins the reorg; the observer must
        // now reflect B's history, not A's.
        let genesis_state = store.state_of(&genesis).expect("genesis state").clone();
        let b1 = Block::build(&p2, 1, genesis, genesis_state.root(), 11, vec![]);
        store.import(b1.clone(), &mut NoExecutor).expect("b1");
        let b1_state = store.state_of(&b1.id()).expect("b1 state").clone();
        let b2 = Block::build(&p2, 2, b1.id(), b1_state.root(), 12, vec![]);
        store.import(b2.clone(), &mut NoExecutor).expect("b2");
        assert_eq!(store.head_id(), b2.id());

        let trace = store.observer::<ChainTrace>("trace").unwrap();
        assert_eq!(trace.blocks_seen, 3, "reset + genesis, b1, b2");
        let digest_on_b = store.projection_digests()[0].1;
        assert_ne!(digest_on_a, digest_on_b);

        // And the rebuilt state matches a from-scratch replay.
        let mut fresh: Vec<Box<dyn BlockObserver>> = vec![Box::new(ChainTrace::default())];
        store.replay_into(&mut fresh);
        assert_eq!(fresh[0].digest(), digest_on_b);
    }

    #[test]
    fn non_canonical_import_does_not_notify() {
        let mut store = store_with_funds();
        let genesis = store.head_id();
        let b1 = store.propose(&proposer(), 10, vec![blob(0)], &mut NoExecutor);
        store.import(b1, &mut NoExecutor).expect("b1");
        store.register_observer(Box::new(ChainTrace::default()));

        // A same-height rival that loses the tie-break must not disturb
        // the projection.
        let rival = Keypair::from_seed(b"rival");
        let genesis_state = store.state_of(&genesis).expect("genesis state").clone();
        let r1 = Block::build(&rival, 1, genesis, genesis_state.root(), 11, vec![]);
        let head_before = store.head_id();
        store.import(r1.clone(), &mut NoExecutor).expect("r1");
        if store.head_id() == head_before {
            assert_eq!(
                store.observer::<ChainTrace>("trace").unwrap().blocks_seen,
                2
            );
        } else {
            // Tie-break picked the rival: observer was rebuilt onto it.
            assert_eq!(store.canonical_chain(), vec![r1.id(), genesis]);
            assert_eq!(
                store.observer::<ChainTrace>("trace").unwrap().blocks_seen,
                2
            );
        }
    }
}
