//! The chain store: block validation against parent state, longest-chain
//! fork choice, and a bounded in-memory window over a durable
//! [`Storage`] backend.
//!
//! In the full platform the consensus layer (PBFT) decides a single block
//! per height, so forks never persist; the store nevertheless implements
//! fork choice so it can also back the PoA baseline (where brief forks are
//! possible) and so tests can exercise reorg behaviour.
//!
//! ## Storage layout
//!
//! The store keeps only a recent *window* of blocks fully materialized in
//! memory (block, post-state, receipts — including fork branches). Every
//! imported block is first made durable in the backend's write-ahead log;
//! when a height falls `retention` blocks behind the head it is
//! *finalized* into the backend (sealed into segment files on the disk
//! backend, fork siblings discarded) and evicted from the window. The
//! full height → id canonical map stays in memory (40 bytes per block),
//! so canonical-chain walks never touch the backend.
//!
//! Historical queries against evicted blocks are served from the backend:
//! blocks and receipts are read back directly, while historical *states*
//! are reconstructed by replaying forward from the nearest checkpoint at
//! or below the requested height. The replay uses [`NoExecutor`], which
//! is sound because contract execution never writes chain [`State`] —
//! the proposer path proves this invariant on every block (it builds
//! state roots with `NoExecutor` that import then validates under the
//! real executor).
//!
//! Checkpoints ([`ChainCheckpoint`]) bundle the head state with
//! projection and executor extension blobs; a restarted replica restores
//! the latest durable checkpoint and replays only the storage records
//! past it ([`ChainStore::open_recovering`] + [`ChainStore::replay_tail`]),
//! so restart cost is proportional to downtime, not chain length.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Instant;

use tn_crypto::{Address, Hash256, Keypair};
use tn_par::Pool;
use tn_storage::{BlockRecord, HeadMeta, Key, Storage, StorageConfig, TxIndexEntry, TxLocation};
use tn_telemetry::TelemetrySink;
use tn_trace::{lanes, replica_span_id, span_id, TraceId, TraceSink};

use crate::block::{BatchVerifyPolicy, Block};
use crate::checkpoint::ChainCheckpoint;
use crate::codec::{Decodable, Decoder, Encodable, Encoder};
use crate::error::ChainError;
use crate::observer::{self, BlockObserver};
use crate::sigcache::SigCache;
use crate::state::{NoExecutor, Receipt, State, TxExecutor};
use crate::transaction::{Payload, Transaction};

/// A windowed block together with its post-state and receipts.
#[derive(Debug, Clone)]
struct StoredBlock {
    block: Block,
    post_state: State,
    receipts: Vec<Receipt>,
}

fn encode_block(block: &Block) -> Vec<u8> {
    let mut enc = Encoder::new();
    block.encode(&mut enc);
    enc.finish()
}

fn decode_block(bytes: &[u8]) -> Result<Block, ChainError> {
    let mut dec = Decoder::new(bytes);
    let block = Block::decode(&mut dec)?;
    dec.expect_end()?;
    Ok(block)
}

fn encode_receipts(receipts: &[Receipt]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_varint(receipts.len() as u64);
    for r in receipts {
        r.encode(&mut enc);
    }
    enc.finish()
}

fn decode_receipts(bytes: &[u8]) -> Result<Vec<Receipt>, ChainError> {
    let mut dec = Decoder::new(bytes);
    let n = dec.get_varint()? as usize;
    let mut receipts = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        receipts.push(Receipt::decode(&mut dec)?);
    }
    dec.expect_end()?;
    Ok(receipts)
}

/// The account keys a transaction touches, for the backend's account
/// index: always the sender, plus the transfer recipient or called
/// contract.
fn index_accounts(tx: &Transaction) -> Vec<Key> {
    let mut accounts = vec![*tx.from.as_hash().as_bytes()];
    match &tx.payload {
        Payload::Transfer { to, .. } => accounts.push(*to.as_hash().as_bytes()),
        Payload::ContractCall { contract, .. } => accounts.push(*contract.as_hash().as_bytes()),
        _ => {}
    }
    accounts
}

fn block_record(block: &Block, receipts: &[Receipt]) -> BlockRecord {
    BlockRecord {
        height: block.header.height,
        id: *block.id().as_bytes(),
        parent: *block.header.parent.as_bytes(),
        block_bytes: encode_block(block),
        receipts_bytes: encode_receipts(receipts),
        txs: block
            .transactions
            .iter()
            .map(|tx| TxIndexEntry {
                id: *tx.id().as_bytes(),
                accounts: index_accounts(tx),
            })
            .collect(),
    }
}

/// The block store and canonical-chain tracker.
///
/// Registered [`BlockObserver`] projections are fed every canonical
/// block in order: head-extending imports notify observers directly,
/// while reorgs reset them and replay the new canonical chain from
/// genesis, so observers always reflect exactly the canonical history.
pub struct ChainStore {
    /// Recent blocks (canonical and fork) fully materialized in memory.
    /// Genesis stays pinned; everything else is evicted once finalized.
    window: HashMap<Hash256, StoredBlock>,
    /// Full canonical height → id map (covers genesis through head).
    canonical: BTreeMap<u64, Hash256>,
    backend: Box<dyn Storage>,
    /// Window size in blocks; heights more than this far behind the head
    /// are finalized into the backend and evicted.
    retention: u64,
    /// Periodic checkpoint spacing (0 = only explicit checkpoints).
    checkpoint_interval: u64,
    /// Run backend compaction after each checkpoint.
    auto_compact: bool,
    /// Height of the most recent checkpoint written (or restored).
    last_checkpoint: u64,
    /// True while `replay_tail` re-imports records the backend already
    /// holds (suppresses re-appending them).
    replaying: bool,
    /// Current head (tip of the canonical chain).
    head: Hash256,
    genesis: Hash256,
    observers: Vec<Box<dyn BlockObserver>>,
    telemetry: TelemetrySink,
    trace: TraceSink,
    /// Worker pool used for block verification (tx hashing, Merkle
    /// reduction, signature checks). Defaults to [`Pool::auto`].
    pool: Pool,
    /// Verified-transaction cache shared with the mempool and proposer so
    /// each signature pays for at most one EC verification per process.
    sig_cache: SigCache,
    /// Batched-Schnorr policy applied during block verification.
    batch_policy: BatchVerifyPolicy,
}

impl fmt::Debug for ChainStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChainStore")
            .field("backend", &self.backend.kind())
            .field("window", &self.window.len())
            .field("canonical", &self.canonical.len())
            .field("head", &self.head)
            .field("genesis", &self.genesis)
            .field(
                "observers",
                &self.observers.iter().map(|o| o.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ChainStore {
    /// Creates a store holding only a genesis block that commits
    /// `genesis_state`, on the default in-memory backend.
    pub fn new(genesis_state: State, genesis_proposer: &Keypair) -> ChainStore {
        Self::with_config(genesis_state, genesis_proposer, StorageConfig::default())
            .expect("in-memory backend construction cannot fail")
    }

    /// Creates a store on the backend selected by `config`.
    ///
    /// # Errors
    ///
    /// [`ChainError::Storage`] when the backend cannot be initialized
    /// (e.g. the disk directory already contains data — use
    /// [`ChainStore::open_recovering`] for that).
    pub fn with_config(
        genesis_state: State,
        genesis_proposer: &Keypair,
        config: StorageConfig,
    ) -> Result<ChainStore, ChainError> {
        let backend = config.build()?;
        Self::with_backend(genesis_state, genesis_proposer, backend, &config)
    }

    /// Creates a store on an explicit (fresh) backend instance.
    ///
    /// # Errors
    ///
    /// [`ChainError::Storage`] when writing the genesis record fails.
    pub fn with_backend(
        genesis_state: State,
        genesis_proposer: &Keypair,
        backend: Box<dyn Storage>,
        config: &StorageConfig,
    ) -> Result<ChainStore, ChainError> {
        let block = Block::build(
            genesis_proposer,
            0,
            Hash256::ZERO,
            genesis_state.root(),
            0,
            Vec::new(),
        );
        Self::from_genesis(block, genesis_state, backend, config)
    }

    /// Builds a store around an already-constructed genesis block,
    /// persisting the genesis record and a genesis checkpoint.
    fn from_genesis(
        block: Block,
        genesis_state: State,
        mut backend: Box<dyn Storage>,
        config: &StorageConfig,
    ) -> Result<ChainStore, ChainError> {
        let id = block.id();
        let rec = block_record(&block, &[]);
        backend.append_block(&rec)?;
        backend.finalize(0, id.as_bytes())?;
        backend.set_head(HeadMeta {
            height: 0,
            id: *id.as_bytes(),
        })?;
        // The genesis checkpoint anchors both historical state replay and
        // crash recovery: `checkpoint_at_or_before` always finds at least
        // this one, and recovery needs it to reconstruct the genesis
        // state (block headers commit only the state root).
        let cp = ChainCheckpoint {
            height: 0,
            head_id: id,
            state: genesis_state.clone(),
            extensions: Vec::new(),
        };
        backend.put_checkpoint(0, id.as_bytes(), &cp.to_bytes())?;
        backend.flush()?;
        let mut window = HashMap::new();
        window.insert(
            id,
            StoredBlock {
                block,
                post_state: genesis_state,
                receipts: Vec::new(),
            },
        );
        let mut canonical = BTreeMap::new();
        canonical.insert(0, id);
        Ok(ChainStore {
            window,
            canonical,
            backend,
            retention: config.retention.max(1),
            checkpoint_interval: config.checkpoint_interval,
            auto_compact: config.compact,
            last_checkpoint: 0,
            replaying: false,
            head: id,
            genesis: id,
            observers: Vec::new(),
            telemetry: TelemetrySink::disabled(),
            trace: TraceSink::disabled(),
            pool: Pool::auto(),
            sig_cache: SigCache::default(),
            batch_policy: BatchVerifyPolicy::default(),
        })
    }

    /// Reopens a store from an existing backend (typically
    /// [`tn_storage::DiskBackend::open`]), restoring the newest usable
    /// checkpoint. Returns the store positioned at the checkpoint block
    /// together with the decoded checkpoint, so callers can restore
    /// projection and executor state from its extensions before calling
    /// [`ChainStore::replay_tail`].
    ///
    /// Checkpoint selection is defensive: a checkpoint whose blob fails
    /// to decode, whose block is not durable, or whose state root does
    /// not match the block header is skipped in favor of the next older
    /// one (the genesis checkpoint is always a valid last resort).
    ///
    /// # Errors
    ///
    /// [`ChainError::Checkpoint`] when no usable checkpoint exists;
    /// [`ChainError::Storage`] on backend failures.
    pub fn open_recovering(
        mut backend: Box<dyn Storage>,
        config: &StorageConfig,
    ) -> Result<(ChainStore, ChainCheckpoint), ChainError> {
        // Genesis: id from the always-written genesis checkpoint, block
        // record by id (a freshly reopened disk backend holds it in the
        // WAL live set, not in finalized-height lookups), state from the
        // checkpoint (verified against the header's state root).
        let genesis_raw = backend
            .checkpoint_at_or_before(0)?
            .ok_or_else(|| ChainError::Checkpoint("genesis checkpoint missing".into()))?;
        let genesis_cp = ChainCheckpoint::from_bytes(&genesis_raw.blob)
            .map_err(|e| ChainError::Checkpoint(format!("genesis checkpoint malformed: {e}")))?;
        let genesis_rec = backend
            .block_by_id(genesis_cp.head_id.as_bytes())?
            .ok_or_else(|| ChainError::Checkpoint("genesis block missing from storage".into()))?;
        let genesis_block = decode_block(&genesis_rec.block_bytes)?;
        let genesis_id = genesis_block.id();
        if genesis_block.header.height != 0
            || genesis_cp.state.root() != genesis_block.header.state_root
            || genesis_cp.head_id != genesis_id
        {
            return Err(ChainError::Checkpoint(
                "genesis checkpoint does not match genesis block".into(),
            ));
        }

        // Canonical map from finalized history (id-only reads).
        let frontier = backend.finalized_height();
        let mut canonical = BTreeMap::new();
        canonical.insert(0u64, genesis_id);
        for h in 1..=frontier {
            match backend.finalized_id(h)? {
                Some(id) => {
                    canonical.insert(h, Hash256::from_bytes(id));
                }
                None => break,
            }
        }

        // Newest checkpoint whose block is durable and consistent AND
        // whose ancestry walks back to the finalized frontier (a crash
        // can lose finalize calls for heights the window had already
        // evicted; torn storage can lose whole record ranges — a
        // checkpoint stranded above such a hole is unusable, so selection
        // falls back to the next older one). The surviving walk is the
        // gap to re-finalize, ascending.
        let mut at = u64::MAX;
        let (cp, cp_block, cp_receipts, gap) = loop {
            let Some(raw) = backend.checkpoint_at_or_before(at)? else {
                return Err(ChainError::Checkpoint("no usable checkpoint".into()));
            };
            let candidate = ChainCheckpoint::from_bytes(&raw.blob).ok().and_then(|cp| {
                let rec = backend.block_by_id(cp.head_id.as_bytes()).ok().flatten()?;
                let block = decode_block(&rec.block_bytes).ok()?;
                let receipts = decode_receipts(&rec.receipts_bytes).ok()?;
                if block.header.state_root != cp.state.root() || block.header.height != cp.height {
                    return None;
                }
                let mut gap = Vec::new();
                let mut cur = cp.head_id;
                let mut h = cp.height;
                while h > frontier {
                    let rec = backend.block_by_id(cur.as_bytes()).ok().flatten()?;
                    if rec.height != h {
                        return None;
                    }
                    gap.push((h, cur));
                    cur = Hash256::from_bytes(rec.parent);
                    h -= 1;
                }
                (canonical.get(&h) == Some(&cur)).then_some((cp, block, receipts, gap))
            });
            match candidate {
                Some(found) => break found,
                None if raw.height == 0 => {
                    return Err(ChainError::Checkpoint("no usable checkpoint".into()));
                }
                None => at = raw.height - 1,
            }
        };
        for &(h, id) in gap.iter().rev() {
            backend.finalize(h, id.as_bytes())?;
            canonical.insert(h, id);
        }

        let mut window = HashMap::new();
        window.insert(
            genesis_id,
            StoredBlock {
                block: genesis_block,
                post_state: genesis_cp.state.clone(),
                receipts: Vec::new(),
            },
        );
        let head = cp.head_id;
        if head != genesis_id {
            window.insert(
                head,
                StoredBlock {
                    block: cp_block,
                    post_state: cp.state.clone(),
                    receipts: cp_receipts,
                },
            );
        }
        let store = ChainStore {
            window,
            canonical,
            backend,
            retention: config.retention.max(1),
            checkpoint_interval: config.checkpoint_interval,
            auto_compact: config.compact,
            last_checkpoint: cp.height,
            replaying: false,
            head,
            genesis: genesis_id,
            observers: Vec::new(),
            telemetry: TelemetrySink::disabled(),
            trace: TraceSink::disabled(),
            pool: Pool::auto(),
            sig_cache: SigCache::default(),
            batch_policy: BatchVerifyPolicy::default(),
        };
        Ok((store, cp))
    }

    /// Re-imports every storage record past the restored checkpoint (the
    /// WAL tail plus any finalized blocks above it), re-validating and
    /// re-executing each block. Observer projections restored via
    /// [`ChainStore::register_observer_restored`] are fed the tail
    /// live. Orphaned fork records (whose parents were discarded) are
    /// skipped and counted. Returns the number of blocks replayed.
    ///
    /// # Errors
    ///
    /// Validation or storage errors on canonical records (a canonical
    /// record that fails re-execution indicates corruption).
    pub fn replay_tail(&mut self, executor: &mut dyn TxExecutor) -> Result<u64, ChainError> {
        let _span = self.telemetry.span("chain.recover_replay_ns");
        let records = self.backend.blocks_after(self.last_checkpoint)?;
        let mut replayed = 0u64;
        let mut orphaned = 0u64;
        self.replaying = true;
        for rec in records {
            if self.window.contains_key(&Hash256::from_bytes(rec.id)) {
                continue;
            }
            let block = match decode_block(&rec.block_bytes) {
                Ok(b) => b,
                Err(_) => {
                    // A torn fork record past the last valid canonical
                    // prefix; the WAL scan already truncated real tears,
                    // so treat this as an orphan.
                    orphaned += 1;
                    continue;
                }
            };
            match self.import(block, executor) {
                Ok(_) => replayed += 1,
                Err(ChainError::DuplicateBlock(_)) => {}
                Err(
                    ChainError::UnknownParent(_)
                    | ChainError::BadHeight { .. }
                    | ChainError::TimestampRegression,
                ) => orphaned += 1,
                Err(e) => {
                    self.replaying = false;
                    return Err(e);
                }
            }
        }
        self.replaying = false;
        self.telemetry
            .add("chain.recover.blocks_replayed", replayed);
        self.telemetry
            .add("chain.recover.orphans_skipped", orphaned);
        Ok(replayed)
    }

    /// Routes the store's metrics (import latency, per-projection apply
    /// time, reorg and replay counters, backend `storage.*` series) to
    /// `sink`. The default sink is disabled, so an uninstrumented store
    /// records nothing.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.backend.set_telemetry(sink.clone());
        self.telemetry = sink;
    }

    /// Routes the store's spans to `sink`: per-block `chain.import` with
    /// `chain.verify` / `chain.execute` / `chain.projections` children,
    /// per-transaction `tx.verify` and `tx.apply`, and per-projection
    /// `projection.<name>` spans.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Sets the worker pool used for block verification. `Pool::new(0)`
    /// and [`Pool::auto`] both resolve to the machine's available
    /// parallelism; [`Pool::sequential`] forces single-threaded
    /// verification. Results are byte-identical for every worker count.
    pub fn set_verify_pool(&mut self, pool: Pool) {
        self.pool = pool;
    }

    /// The worker pool currently used for block verification.
    pub fn verify_pool(&self) -> Pool {
        self.pool
    }

    /// Replaces the verified-transaction cache. Use this to share one
    /// cache between the store and other pipeline stages (mempool,
    /// proposer) — see [`ChainStore::sig_cache`].
    pub fn set_sig_cache(&mut self, cache: SigCache) {
        self.sig_cache = cache;
    }

    /// A handle to the store's verified-transaction cache. Clones share
    /// the underlying cache, so handing this to the mempool means
    /// admission-time verification pre-warms block import.
    pub fn sig_cache(&self) -> SigCache {
        self.sig_cache.clone()
    }

    /// Sets the batched-Schnorr policy used during block verification.
    /// Accept/reject outcomes are identical for every policy (a failing
    /// batch falls back to the per-transaction scan); the policy only
    /// moves import cost.
    pub fn set_batch_policy(&mut self, policy: BatchVerifyPolicy) {
        self.batch_policy = policy;
    }

    /// The batched-Schnorr policy currently applied during verification.
    pub fn batch_policy(&self) -> BatchVerifyPolicy {
        self.batch_policy
    }

    /// The genesis block id.
    pub fn genesis_id(&self) -> Hash256 {
        self.genesis
    }

    /// The canonical head block id.
    pub fn head_id(&self) -> Hash256 {
        self.head
    }

    /// The canonical head block (always resident in the window).
    pub fn head(&self) -> &Block {
        &self.window[&self.head].block
    }

    /// Height of the canonical head.
    pub fn height(&self) -> u64 {
        self.head().header.height
    }

    /// State after the canonical head.
    pub fn head_state(&self) -> &State {
        &self.window[&self.head].post_state
    }

    /// A shared reference to the storage backend.
    pub fn storage(&self) -> &dyn Storage {
        &*self.backend
    }

    /// Backend name (`"mem"`, `"disk"`).
    pub fn storage_kind(&self) -> &'static str {
        self.backend.kind()
    }

    /// Consumes the store, returning its backend (used by recovery tests
    /// and tooling to reopen the same storage).
    ///
    /// # Errors
    ///
    /// [`ChainError::Storage`] when the final flush fails.
    pub fn into_backend(mut self) -> Result<Box<dyn Storage>, ChainError> {
        self.backend.flush()?;
        Ok(self.backend)
    }

    /// Number of blocks currently materialized in the in-memory window
    /// (bounded by `retention` plus fork branches, regardless of chain
    /// length).
    pub fn resident_blocks(&self) -> usize {
        self.window.len()
    }

    /// Looks up a block by id — from the window, or read back from the
    /// backend for evicted history.
    pub fn block(&self, id: &Hash256) -> Option<Block> {
        if let Some(sb) = self.window.get(id) {
            return Some(sb.block.clone());
        }
        let rec = self.backend.block_by_id(id.as_bytes()).ok().flatten()?;
        decode_block(&rec.block_bytes).ok()
    }

    /// Post-state of an arbitrary canonical block. Windowed blocks answer
    /// from memory; evicted heights are reconstructed by replaying from
    /// the nearest checkpoint at or below the height (sound with
    /// [`NoExecutor`]: contract execution never writes chain state).
    /// Returns `None` for unknown ids and for evicted non-canonical
    /// blocks (whose states are discarded with the fork).
    pub fn state_of(&self, id: &Hash256) -> Option<State> {
        if let Some(sb) = self.window.get(id) {
            return Some(sb.post_state.clone());
        }
        let rec = self.backend.block_by_id(id.as_bytes()).ok().flatten()?;
        if self.canonical.get(&rec.height) != Some(id) {
            return None;
        }
        self.state_at_height(rec.height)
    }

    /// Reconstructs the canonical state at `height` from checkpoint +
    /// forward replay.
    fn state_at_height(&self, height: u64) -> Option<State> {
        let _span = self.telemetry.span("chain.state_replay_ns");
        let raw = self
            .backend
            .checkpoint_at_or_before(height)
            .ok()
            .flatten()?;
        let cp = ChainCheckpoint::from_bytes(&raw.blob).ok()?;
        let mut state = cp.state;
        let mut replayed = 0u64;
        for h in cp.height + 1..=height {
            let rec = self.backend.block_by_height(h).ok().flatten()?;
            let block = decode_block(&rec.block_bytes).ok()?;
            for tx in &block.transactions {
                state
                    .apply_prechecked(tx, &block.header.proposer, &mut NoExecutor)
                    .ok()?;
            }
            replayed += 1;
        }
        self.telemetry.add("chain.state_replay_blocks", replayed);
        Some(state)
    }

    /// Receipts of an arbitrary stored block (window or backend).
    pub fn receipts_of(&self, id: &Hash256) -> Option<Vec<Receipt>> {
        if let Some(sb) = self.window.get(id) {
            return Some(sb.receipts.clone());
        }
        let rec = self.backend.block_by_id(id.as_bytes()).ok().flatten()?;
        decode_receipts(&rec.receipts_bytes).ok()
    }

    /// Location (height, intra-block index) of a canonical transaction,
    /// covering both finalized history (backend index) and the recent
    /// window.
    pub fn tx_location(&self, tx: &Hash256) -> Option<TxLocation> {
        if let Ok(Some(loc)) = self.backend.tx_location(tx.as_bytes()) {
            return Some(loc);
        }
        let frontier = self.backend.finalized_height();
        for (&h, id) in self.canonical.range(frontier + 1..) {
            let sb = self.window.get(id)?;
            for (i, t) in sb.block.transactions.iter().enumerate() {
                if t.id() == *tx {
                    return Some(TxLocation {
                        height: h,
                        index: i as u32,
                    });
                }
            }
        }
        None
    }

    /// Ids of canonical transactions touching `account` (sender,
    /// transfer recipient, or called contract), in chain order.
    pub fn account_txs(&self, account: &Address) -> Vec<Hash256> {
        let key = *account.as_hash().as_bytes();
        let mut out: Vec<Hash256> = self
            .backend
            .account_txs(&key)
            .unwrap_or_default()
            .into_iter()
            .map(Hash256::from_bytes)
            .collect();
        let frontier = self.backend.finalized_height();
        for (_, id) in self.canonical.range(frontier + 1..) {
            if let Some(sb) = self.window.get(id) {
                for tx in &sb.block.transactions {
                    if index_accounts(tx).contains(&key) {
                        out.push(tx.id());
                    }
                }
            }
        }
        out
    }

    /// Number of blocks known: the canonical chain plus windowed fork
    /// blocks (evicted forks are forgotten).
    pub fn len(&self) -> usize {
        let fork_blocks = self
            .window
            .values()
            .filter(|sb| self.canonical.get(&sb.block.header.height) != Some(&sb.block.id()))
            .count();
        self.canonical.len() + fork_blocks
    }

    /// Always false: the store always holds at least genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Validates `block` against its parent and, if valid, makes it
    /// durable, stores it in the window and re-evaluates fork choice
    /// (longest chain; ties broken by smaller block id for determinism).
    ///
    /// # Errors
    ///
    /// Any structural or stateful [`ChainError`].
    pub fn import(
        &mut self,
        block: Block,
        executor: &mut dyn TxExecutor,
    ) -> Result<Vec<Receipt>, ChainError> {
        let telemetry = self.telemetry.clone();
        let _span = telemetry.span("chain.import_ns");
        let trace = self.trace.clone();
        let t0 = trace.now_ns();
        let block_trace = if trace.is_enabled() {
            TraceId::from_seed(block.id().as_bytes())
        } else {
            TraceId::NONE
        };
        let height = block.header.height;
        let n_txs = block.transactions.len() as u64;
        let result = self.import_inner(block, executor);
        if trace.is_enabled() && result.is_ok() {
            // The pipeline's commit span id is computable from the block
            // trace alone, so the link holds whether or not a pipeline
            // actually drove this import.
            let parent = replica_span_id(block_trace, "pipeline.commit", trace.replica());
            trace.complete(
                block_trace,
                "chain.import",
                parent,
                lanes::PIPELINE,
                t0,
                &[("height", height), ("txs", n_txs)],
            );
        }
        match &result {
            Ok(receipts) => {
                telemetry.incr("chain.blocks_imported");
                telemetry.add("chain.txs_executed", receipts.len() as u64);
            }
            Err(err) => {
                telemetry.incr("chain.blocks_rejected");
                telemetry.event("block_rejected", || err.to_string());
            }
        }
        result
    }

    fn import_inner(
        &mut self,
        block: Block,
        executor: &mut dyn TxExecutor,
    ) -> Result<Vec<Receipt>, ChainError> {
        let id = block.id();
        // During tail replay every record is, by definition, already in
        // the backend — only the window counts as "seen" then.
        if self.window.contains_key(&id)
            || (!self.replaying && matches!(self.backend.block_by_id(id.as_bytes()), Ok(Some(_))))
        {
            return Err(ChainError::DuplicateBlock(id));
        }
        let trace = self.trace.clone();
        let block_trace = if trace.is_enabled() {
            TraceId::from_seed(id.as_bytes())
        } else {
            TraceId::NONE
        };
        let import_span = replica_span_id(block_trace, "chain.import", trace.replica());
        {
            let _verify = self.telemetry.span("chain.verify_ns");
            let v0 = trace.now_ns();
            let verify_span = replica_span_id(block_trace, "chain.verify", trace.replica());
            block.verify_structure_policy(
                &self.pool,
                Some(&self.sig_cache),
                &self.telemetry,
                &trace,
                verify_span,
                self.batch_policy,
            )?;
            trace.complete(
                block_trace,
                "chain.verify",
                import_span,
                lanes::VERIFY,
                v0,
                &[
                    ("txs", block.transactions.len() as u64),
                    ("workers", self.pool.workers() as u64),
                ],
            );
        }
        let parent = self
            .window
            .get(&block.header.parent)
            .ok_or(ChainError::UnknownParent(block.header.parent))?;
        let expected_height = parent.block.header.height + 1;
        if block.header.height != expected_height {
            return Err(ChainError::BadHeight {
                expected: expected_height,
                actual: block.header.height,
            });
        }
        if block.header.timestamp < parent.block.header.timestamp {
            return Err(ChainError::TimestampRegression);
        }
        let mut state = parent.post_state.clone();
        let mut receipts = Vec::with_capacity(block.transactions.len());
        let e0 = trace.now_ns();
        for tx in &block.transactions {
            // Signatures were batch-verified in `verify_structure_with`;
            // only nonce/balance/execution remain.
            let a0 = trace.now_ns();
            receipts.push(state.apply_prechecked(tx, &block.header.proposer, executor)?);
            if trace.is_enabled() {
                // Each replica applies the tx; all of these spans parent
                // to the single cluster-wide `tx.commit` span, whose id is
                // computable from the tx trace without coordination.
                let tx_trace = TraceId::from_seed(tx.id().as_bytes());
                trace.complete(
                    tx_trace,
                    "tx.apply",
                    span_id(tx_trace, "tx.commit"),
                    lanes::EXECUTE,
                    a0,
                    &[("height", block.header.height)],
                );
            }
        }
        trace.complete(
            block_trace,
            "chain.execute",
            import_span,
            lanes::EXECUTE,
            e0,
            &[("txs", block.transactions.len() as u64)],
        );
        if state.root() != block.header.state_root {
            return Err(ChainError::BadStateRoot);
        }
        // Durability before visibility: the record reaches the WAL before
        // the window or fork choice can see the block. During tail replay
        // the backend already holds the record.
        if !self.replaying {
            self.backend
                .append_block(&block_record(&block, &receipts))?;
        }
        let height = block.header.height;
        let parent_id = block.header.parent;
        self.window.insert(
            id,
            StoredBlock {
                block,
                post_state: state,
                receipts: receipts.clone(),
            },
        );
        // Fork choice: longest chain, deterministic tie-break.
        let old_head = self.head;
        let head_height = self.height();
        if height > head_height || (height == head_height && id < self.head) {
            self.head = id;
        }
        // Keep projections in lock-step with the canonical chain.
        if self.head == id {
            if parent_id == old_head {
                self.canonical.insert(height, id);
            } else {
                // Reorg: the new head is not a child of the old one.
                self.telemetry.incr("chain.reorgs");
                self.rewrite_canonical();
            }
            self.backend.set_head(HeadMeta {
                height,
                id: *id.as_bytes(),
            })?;
            if parent_id == old_head {
                self.notify_observers(&id, block_trace, import_span, &trace);
            } else {
                self.rebuild_observers();
            }
            self.evict_and_finalize()?;
        }
        Ok(receipts)
    }

    /// Feeds the newly-canonical head block to every registered observer.
    fn notify_observers(
        &mut self,
        id: &Hash256,
        block_trace: TraceId,
        import_span: u64,
        trace: &TraceSink,
    ) {
        let timed = self.telemetry.is_enabled();
        let telemetry = self.telemetry.clone();
        let mut observers = std::mem::take(&mut self.observers);
        let stored = &self.window[id];
        let p0 = trace.now_ns();
        let projections_span = replica_span_id(block_trace, "chain.projections", trace.replica());
        for ob in observers.iter_mut() {
            let o0 = trace.now_ns();
            if timed {
                let started = Instant::now();
                ob.on_block(&stored.block, &stored.receipts);
                telemetry.observe(
                    &format!("chain.projection.{}.apply_ns", ob.name()),
                    started.elapsed().as_nanos() as u64,
                );
            } else {
                ob.on_block(&stored.block, &stored.receipts);
            }
            trace.complete(
                block_trace,
                format!("projection.{}", ob.name()),
                projections_span,
                lanes::PROJECTION,
                o0,
                &[],
            );
        }
        if !observers.is_empty() {
            trace.complete(
                block_trace,
                "chain.projections",
                import_span,
                lanes::PROJECTION,
                p0,
                &[("projections", observers.len() as u64)],
            );
        }
        self.observers = observers;
    }

    /// Rewrites the canonical map after a reorg: walks the new head's
    /// ancestry (all within the window — reorg depth is bounded by the
    /// retention window) down to the fork point.
    fn rewrite_canonical(&mut self) {
        let mut cur = self.head;
        loop {
            let Some(sb) = self.window.get(&cur) else {
                // Ancestry left the window: impossible for a legal reorg
                // (fork parents below the finalized frontier are rejected
                // as UnknownParent), so this indicates a logic error.
                self.telemetry
                    .event("chain.reorg_below_window", String::new);
                break;
            };
            let h = sb.block.header.height;
            if self.canonical.get(&h) == Some(&cur) {
                break;
            }
            self.canonical.insert(h, cur);
            if h == 0 {
                break;
            }
            cur = sb.block.header.parent;
        }
        // Drop stale entries above the new head (only possible if the old
        // branch was longer, which fork choice forbids — kept for safety).
        let head_height = self.height();
        self.canonical.split_off(&(head_height + 1));
    }

    /// Finalizes heights that fell out of the retention window into the
    /// backend and evicts them (and any losing fork siblings) from
    /// memory. Genesis stays pinned.
    fn evict_and_finalize(&mut self) -> Result<(), ChainError> {
        let head_height = self.height();
        let bound = head_height.saturating_sub(self.retention);
        if bound == 0 {
            return Ok(());
        }
        let frontier = self.backend.finalized_height();
        for h in (frontier + 1)..=bound {
            let id = *self
                .canonical
                .get(&h)
                .expect("canonical map covers every height up to head");
            self.backend.finalize(h, id.as_bytes())?;
        }
        let genesis = self.genesis;
        self.window
            .retain(|id, sb| sb.block.header.height > bound || *id == genesis);
        Ok(())
    }

    /// True when the configured checkpoint interval has elapsed since the
    /// last checkpoint.
    pub fn checkpoint_due(&self) -> bool {
        self.checkpoint_interval > 0
            && self.height()
                >= self
                    .last_checkpoint
                    .saturating_add(self.checkpoint_interval)
    }

    /// Writes a checkpoint at the current head: the head state plus the
    /// save-states of every registered observer and the caller-provided
    /// `extras` (e.g. the executor's contract registry). The WAL is
    /// flushed first so the checkpointed block is durable before the
    /// checkpoint that references it. Runs backend compaction afterwards
    /// when the store was configured with `compact`. Returns the
    /// checkpoint height.
    ///
    /// # Errors
    ///
    /// [`ChainError::Storage`] on backend write failures.
    pub fn checkpoint_now(&mut self, extras: Vec<(String, Vec<u8>)>) -> Result<u64, ChainError> {
        let _span = self.telemetry.span("chain.checkpoint_ns");
        self.backend.flush()?;
        let height = self.height();
        let head_id = self.head;
        let mut extensions: Vec<(String, Vec<u8>)> = self
            .observers
            .iter()
            .filter_map(|ob| ob.save_state().map(|bytes| (ob.name().to_string(), bytes)))
            .collect();
        extensions.extend(extras);
        let cp = ChainCheckpoint {
            height,
            head_id,
            state: self.head_state().clone(),
            extensions,
        };
        self.backend
            .put_checkpoint(height, head_id.as_bytes(), &cp.to_bytes())?;
        self.last_checkpoint = height;
        self.telemetry.incr("chain.checkpoints");
        if self.auto_compact {
            self.backend.compact()?;
        }
        Ok(height)
    }

    /// Writes a checkpoint if one is due (see
    /// [`ChainStore::checkpoint_due`]); returns its height when written.
    ///
    /// # Errors
    ///
    /// [`ChainError::Storage`] on backend write failures.
    pub fn maybe_checkpoint(
        &mut self,
        extras: Vec<(String, Vec<u8>)>,
    ) -> Result<Option<u64>, ChainError> {
        if self.checkpoint_due() {
            Ok(Some(self.checkpoint_now(extras)?))
        } else {
            Ok(None)
        }
    }

    /// Forces buffered backend writes (WAL, head metadata) to durable
    /// storage.
    ///
    /// # Errors
    ///
    /// [`ChainError::Storage`] on fsync failure.
    pub fn flush(&mut self) -> Result<(), ChainError> {
        self.backend.flush()?;
        Ok(())
    }

    /// Reads the canonical block and receipts at `height` (window first,
    /// then backend).
    fn canonical_block_and_receipts(
        &self,
        height: u64,
        id: &Hash256,
    ) -> Result<(Block, Vec<Receipt>), ChainError> {
        if let Some(sb) = self.window.get(id) {
            return Ok((sb.block.clone(), sb.receipts.clone()));
        }
        let rec = self
            .backend
            .block_by_height(height)?
            .ok_or(ChainError::HistoryPruned {
                first: self.backend.first_height(),
            })?;
        Ok((
            decode_block(&rec.block_bytes)?,
            decode_receipts(&rec.receipts_bytes)?,
        ))
    }

    /// Walks the canonical chain genesis-first, feeding each block to
    /// `f`. Evicted heights are read back from the backend.
    fn for_each_canonical(&self, f: &mut dyn FnMut(&Block, &[Receipt])) -> Result<(), ChainError> {
        for (&h, id) in self.canonical.iter() {
            let (block, receipts) = self.canonical_block_and_receipts(h, id)?;
            f(&block, &receipts);
        }
        Ok(())
    }

    /// Registers a projection. The existing canonical history (genesis
    /// first) is replayed into it, so observers registered after blocks
    /// were imported still see the complete canonical sequence.
    ///
    /// # Panics
    ///
    /// When canonical history cannot be read back from the backend
    /// (compaction pruned it, or the disk is corrupt).
    pub fn register_observer(&mut self, mut observer: Box<dyn BlockObserver>) {
        observer.reset();
        self.for_each_canonical(&mut |block, receipts| observer.on_block(block, receipts))
            .expect("canonical history readable (compaction disables observer replay)");
        self.observers.push(observer);
    }

    /// Registers a projection whose state was already restored from a
    /// checkpoint extension — no reset, no history replay. The caller
    /// must follow with [`ChainStore::replay_tail`] so the projection
    /// catches up with blocks past the checkpoint.
    pub fn register_observer_restored(&mut self, observer: Box<dyn BlockObserver>) {
        self.observers.push(observer);
    }

    /// Looks up a registered observer by name, downcast to its concrete
    /// projection type.
    pub fn observer<T: 'static>(&self, name: &str) -> Option<&T> {
        self.observers
            .iter()
            .find(|o| o.name() == name)
            .and_then(|o| o.as_any().downcast_ref::<T>())
    }

    /// Mutable variant of [`ChainStore::observer`].
    pub fn observer_mut<T: 'static>(&mut self, name: &str) -> Option<&mut T> {
        self.observers
            .iter_mut()
            .find(|o| o.name() == name)
            .and_then(|o| o.as_any_mut().downcast_mut::<T>())
    }

    /// Per-projection state digests, in registration order.
    pub fn projection_digests(&self) -> Vec<(&'static str, Hash256)> {
        self.observers
            .iter()
            .map(|o| (o.name(), o.digest()))
            .collect()
    }

    /// Combined digest over all registered projections (see
    /// [`observer::projection_root`]).
    pub fn projection_root(&self) -> Hash256 {
        observer::projection_root(&self.projection_digests())
    }

    /// Replays the canonical chain from genesis into an external set of
    /// (fresh or stale) observers. This is the audit path: digests of
    /// the replayed observers must match the live registered ones.
    ///
    /// # Panics
    ///
    /// When canonical history cannot be read back from the backend
    /// (compaction pruned it, or the disk is corrupt).
    pub fn replay_into(&self, observers: &mut [Box<dyn BlockObserver>]) {
        let _span = self.telemetry.span("chain.replay_ns");
        self.telemetry.incr("chain.replays");
        for ob in observers.iter_mut() {
            ob.reset();
        }
        self.for_each_canonical(&mut |block, receipts| {
            for ob in observers.iter_mut() {
                ob.on_block(block, receipts);
            }
            self.telemetry.incr("chain.replay_blocks");
        })
        .expect("canonical history readable (compaction disables audit replay)");
    }

    /// Resets every observer and replays the canonical chain (used after
    /// a reorg changes canonical history).
    fn rebuild_observers(&mut self) {
        if self.observers.is_empty() {
            return;
        }
        let mut observers = std::mem::take(&mut self.observers);
        self.replay_into(&mut observers);
        self.observers = observers;
    }

    /// Produces (but does not import) a block extending the canonical head,
    /// executing `txs` against the head state. Transactions that fail
    /// validation are skipped (like a real proposer dropping invalid txs).
    pub fn propose(
        &self,
        proposer: &Keypair,
        timestamp: u64,
        txs: Vec<Transaction>,
        executor: &mut dyn TxExecutor,
    ) -> Block {
        let mut state = self.head_state().clone();
        let mut included = Vec::with_capacity(txs.len());
        for tx in txs {
            // Cache-aware verification: txs admitted through a mempool
            // sharing this store's cache skip the EC check here.
            if self.sig_cache.verify_tx(&tx, &self.telemetry).is_ok()
                && state
                    .apply_prechecked(&tx, &proposer.address(), executor)
                    .is_ok()
            {
                included.push(tx);
            }
        }
        Block::build(
            proposer,
            self.height() + 1,
            self.head_id(),
            state.root(),
            timestamp,
            included,
        )
    }

    /// The canonical chain as block ids, head first down to genesis.
    pub fn canonical_chain(&self) -> Vec<Hash256> {
        self.canonical.values().rev().copied().collect()
    }

    /// Iterates all transactions on the canonical chain in execution order
    /// (genesis-era first). Used by the indexing layers (supply-chain graph,
    /// ratings ledger). Evicted blocks are read back from the backend.
    pub fn canonical_transactions(&self) -> Vec<Transaction> {
        let mut out = Vec::new();
        self.for_each_canonical(&mut |block, _| {
            out.extend(block.transactions.iter().cloned());
        })
        .expect("canonical history readable (compaction disables full iteration)");
        out
    }

    /// Convenience accessor: the balance of `addr` at the head state.
    pub fn balance(&self, addr: &Address) -> u64 {
        self.head_state().balance(addr)
    }

    /// Serializes the chain — genesis state, genesis block, the full
    /// canonical chain and any windowed fork blocks — into one snapshot
    /// blob (see [`ChainStore::restore`]). Evicted fork blocks are not
    /// included (they can never become canonical again).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        let genesis = &self.window[&self.genesis];
        genesis.post_state.encode(&mut enc);
        genesis.block.encode(&mut enc);
        let mut blocks: Vec<Block> = Vec::with_capacity(self.canonical.len());
        for (&h, id) in self.canonical.iter() {
            if h == 0 {
                continue;
            }
            blocks.push(
                self.block(id)
                    .expect("canonical block readable (compaction disables snapshots)"),
            );
        }
        for sb in self.window.values() {
            let h = sb.block.header.height;
            if h > 0 && self.canonical.get(&h) != Some(&sb.block.id()) {
                blocks.push(sb.block.clone());
            }
        }
        // Height order (parents before children), deterministic tie-break.
        blocks.sort_by_key(|b| (b.header.height, b.id()));
        enc.put_varint(blocks.len() as u64);
        for b in &blocks {
            b.encode(&mut enc);
        }
        enc.finish()
    }

    /// Restores a chain from a snapshot, re-validating and re-executing
    /// every block against `executor` (so the restored state is recomputed,
    /// never trusted from the snapshot). The restored store runs on a
    /// fresh in-memory backend.
    ///
    /// # Errors
    ///
    /// Decode errors or any validation error hit during replay.
    pub fn restore(bytes: &[u8], executor: &mut dyn TxExecutor) -> Result<ChainStore, ChainError> {
        let mut dec = Decoder::new(bytes);
        let genesis_state = State::decode(&mut dec)?;
        let genesis_block = Block::decode(&mut dec)?;
        genesis_block.verify_structure()?;
        if genesis_block.header.height != 0
            || genesis_block.header.state_root != genesis_state.root()
        {
            return Err(ChainError::BadStateRoot);
        }
        let config = StorageConfig::default();
        let backend = config.build()?;
        let mut store = Self::from_genesis(genesis_block, genesis_state, backend, &config)?;
        let n = dec.get_varint()?;
        if n > 10_000_000 {
            return Err(crate::codec::DecodeError::BadLength(n).into());
        }
        for _ in 0..n {
            let block = Block::decode(&mut dec)?;
            store.import(block, executor)?;
        }
        dec.expect_end().map_err(ChainError::from)?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NoExecutor;
    use crate::transaction::Payload;
    use tn_storage::MemBackend;

    fn alice() -> Keypair {
        Keypair::from_seed(b"alice")
    }

    fn proposer() -> Keypair {
        Keypair::from_seed(b"proposer")
    }

    fn store_with_funds() -> ChainStore {
        let state = State::genesis([(alice().address(), 10_000)]);
        ChainStore::new(state, &proposer())
    }

    fn blob(nonce: u64) -> Transaction {
        Transaction::signed(
            &alice(),
            nonce,
            1,
            Payload::Blob {
                tag: 1,
                data: vec![nonce as u8],
            },
        )
    }

    fn tight_config() -> StorageConfig {
        StorageConfig {
            retention: 4,
            checkpoint_interval: 8,
            ..StorageConfig::default()
        }
    }

    fn tight_store() -> ChainStore {
        let state = State::genesis([(alice().address(), 10_000)]);
        ChainStore::with_config(state, &proposer(), tight_config()).expect("builds")
    }

    #[test]
    fn genesis_is_head() {
        let store = store_with_funds();
        assert_eq!(store.height(), 0);
        assert_eq!(store.head_id(), store.genesis_id());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn propose_and_import_extends_chain() {
        let mut store = store_with_funds();
        let block = store.propose(&proposer(), 10, vec![blob(0), blob(1)], &mut NoExecutor);
        let receipts = store
            .import(block.clone(), &mut NoExecutor)
            .expect("imports");
        assert_eq!(receipts.len(), 2);
        assert!(receipts.iter().all(|r| r.success));
        assert_eq!(store.height(), 1);
        assert_eq!(store.head_id(), block.id());
        // Fees accrued to proposer.
        assert_eq!(store.balance(&proposer().address()), 2);
    }

    #[test]
    fn duplicate_block_rejected() {
        let mut store = store_with_funds();
        let block = store.propose(&proposer(), 10, vec![blob(0)], &mut NoExecutor);
        store
            .import(block.clone(), &mut NoExecutor)
            .expect("first import");
        assert!(matches!(
            store.import(block, &mut NoExecutor),
            Err(ChainError::DuplicateBlock(_))
        ));
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut store = store_with_funds();
        let block = Block::build(
            &proposer(),
            1,
            tn_crypto::sha256::sha256(b"nowhere"),
            Hash256::ZERO,
            10,
            vec![],
        );
        assert!(matches!(
            store.import(block, &mut NoExecutor),
            Err(ChainError::UnknownParent(_))
        ));
    }

    #[test]
    fn wrong_height_rejected() {
        let mut store = store_with_funds();
        let block = Block::build(
            &proposer(),
            5,
            store.head_id(),
            store.head_state().root(),
            10,
            vec![],
        );
        assert!(matches!(
            store.import(block, &mut NoExecutor),
            Err(ChainError::BadHeight {
                expected: 1,
                actual: 5
            })
        ));
    }

    #[test]
    fn wrong_state_root_rejected() {
        let mut store = store_with_funds();
        let block = Block::build(
            &proposer(),
            1,
            store.head_id(),
            tn_crypto::sha256::sha256(b"bogus state"),
            10,
            vec![],
        );
        assert!(matches!(
            store.import(block, &mut NoExecutor),
            Err(ChainError::BadStateRoot)
        ));
    }

    #[test]
    fn timestamp_regression_rejected() {
        let mut store = store_with_funds();
        let b1 = store.propose(&proposer(), 100, vec![], &mut NoExecutor);
        store.import(b1, &mut NoExecutor).expect("imports");
        let mut state = store.head_state().clone();
        let b2 = Block::build(&proposer(), 2, store.head_id(), state.root(), 50, vec![]);
        let _ = &mut state;
        assert!(matches!(
            store.import(b2, &mut NoExecutor),
            Err(ChainError::TimestampRegression)
        ));
    }

    #[test]
    fn longest_chain_wins_reorg() {
        let mut store = store_with_funds();
        let genesis = store.head_id();
        let p1 = proposer();
        let p2 = Keypair::from_seed(b"rival");

        // Branch A: one block on genesis.
        let a1 = store.propose(&p1, 10, vec![blob(0)], &mut NoExecutor);
        store.import(a1.clone(), &mut NoExecutor).expect("a1");
        assert_eq!(store.head_id(), a1.id());

        // Branch B: two blocks on genesis → should win.
        let genesis_state = store.state_of(&genesis).expect("genesis state").clone();
        let b1 = Block::build(&p2, 1, genesis, genesis_state.root(), 11, vec![]);
        store.import(b1.clone(), &mut NoExecutor).expect("b1");
        let b1_state = store.state_of(&b1.id()).expect("b1 state").clone();
        let b2 = Block::build(&p2, 2, b1.id(), b1_state.root(), 12, vec![]);
        store.import(b2.clone(), &mut NoExecutor).expect("b2");

        assert_eq!(store.head_id(), b2.id());
        assert_eq!(store.height(), 2);
        let chain = store.canonical_chain();
        assert_eq!(chain, vec![b2.id(), b1.id(), genesis]);
    }

    #[test]
    fn canonical_transactions_in_order() {
        let mut store = store_with_funds();
        let b1 = store.propose(&proposer(), 1, vec![blob(0)], &mut NoExecutor);
        store.import(b1, &mut NoExecutor).expect("b1");
        let b2 = store.propose(&proposer(), 2, vec![blob(1), blob(2)], &mut NoExecutor);
        store.import(b2, &mut NoExecutor).expect("b2");
        let txs = store.canonical_transactions();
        assert_eq!(txs.len(), 3);
        let nonces: Vec<u64> = txs.iter().map(|t| t.nonce).collect();
        assert_eq!(nonces, vec![0, 1, 2]);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut store = store_with_funds();
        for i in 0..4u64 {
            let block = store.propose(&proposer(), 10 + i, vec![blob(i)], &mut NoExecutor);
            store.import(block, &mut NoExecutor).expect("imports");
        }
        let snap = store.snapshot();
        let restored = ChainStore::restore(&snap, &mut NoExecutor).expect("restores");
        assert_eq!(restored.head_id(), store.head_id());
        assert_eq!(restored.height(), store.height());
        assert_eq!(restored.head_state().root(), store.head_state().root());
        assert_eq!(restored.canonical_chain(), store.canonical_chain());
        // The restored store keeps working.
        let mut restored = restored;
        let block = restored.propose(&proposer(), 99, vec![blob(4)], &mut NoExecutor);
        restored.import(block, &mut NoExecutor).expect("extends");
        assert_eq!(restored.height(), 5);
    }

    #[test]
    fn restore_rejects_tampered_snapshot() {
        let mut store = store_with_funds();
        let block = store.propose(&proposer(), 10, vec![blob(0)], &mut NoExecutor);
        store.import(block, &mut NoExecutor).expect("imports");
        let snap = store.snapshot();
        // Flip one byte near the end (inside the last block's signature or
        // payload): restore must fail, never silently accept.
        for flip in [snap.len() - 1, snap.len() / 2] {
            let mut bad = snap.clone();
            bad[flip] ^= 0xff;
            assert!(
                ChainStore::restore(&bad, &mut NoExecutor).is_err(),
                "tampered snapshot (byte {flip}) accepted"
            );
        }
        assert!(ChainStore::restore(&[], &mut NoExecutor).is_err());
    }

    #[test]
    fn propose_skips_invalid_txs() {
        let store = store_with_funds();
        // Bad nonce tx is dropped by the proposer.
        let good = blob(0);
        let bad = blob(7);
        let block = store.propose(&proposer(), 1, vec![bad, good], &mut NoExecutor);
        assert_eq!(block.transactions.len(), 1);
        assert_eq!(block.transactions[0].nonce, 0);
    }

    #[test]
    fn eviction_bounds_window_and_serves_old_queries() {
        let mut store = tight_store();
        let mut ids = Vec::new();
        for i in 0..20u64 {
            let block = store.propose(&proposer(), 10 + i, vec![blob(i)], &mut NoExecutor);
            ids.push(block.id());
            store.import(block, &mut NoExecutor).expect("imports");
        }
        // Window is bounded: retention blocks + pinned genesis.
        assert!(
            store.resident_blocks() <= 4 + 1,
            "window holds {} blocks",
            store.resident_blocks()
        );
        // Canonical map and chain walks still cover everything.
        assert_eq!(store.canonical_chain().len(), 21);
        assert_eq!(store.canonical_transactions().len(), 20);
        // Evicted blocks, receipts and states answer from the backend.
        let old = &ids[2];
        let block = store.block(old).expect("old block readable");
        assert_eq!(block.header.height, 3);
        let receipts = store.receipts_of(old).expect("old receipts readable");
        assert_eq!(receipts.len(), 1);
        let state = store.state_of(old).expect("old state reconstructed");
        assert_eq!(state.root(), block.header.state_root);
        // Evicted duplicate still rejected as duplicate.
        let dup = store.block(old).unwrap();
        assert!(matches!(
            store.import(dup, &mut NoExecutor),
            Err(ChainError::DuplicateBlock(_))
        ));
    }

    #[test]
    fn tx_and_account_index_cover_window_and_finalized() {
        let mut store = tight_store();
        let mut tx_ids = Vec::new();
        for i in 0..12u64 {
            let tx = blob(i);
            tx_ids.push(tx.id());
            let block = store.propose(&proposer(), 10 + i, vec![tx], &mut NoExecutor);
            store.import(block, &mut NoExecutor).expect("imports");
        }
        for (i, tx_id) in tx_ids.iter().enumerate() {
            let loc = store.tx_location(tx_id).expect("tx located");
            assert_eq!(loc.height, i as u64 + 1);
            assert_eq!(loc.index, 0);
        }
        let by_account = store.account_txs(&alice().address());
        assert_eq!(by_account, tx_ids);
    }

    #[test]
    fn checkpoint_recovery_round_trip() {
        let mut store = tight_store();
        for i in 0..19u64 {
            let block = store.propose(&proposer(), 10 + i, vec![blob(i)], &mut NoExecutor);
            store.import(block, &mut NoExecutor).expect("imports");
            store.maybe_checkpoint(Vec::new()).expect("checkpoints");
        }
        let head = store.head_id();
        let height = store.height();
        let root = store.head_state().root();
        let chain = store.canonical_chain();

        // "Crash": drop the store, keep the backend, reopen.
        let backend = store.into_backend().expect("flushes");
        let (mut recovered, cp) =
            ChainStore::open_recovering(backend, &tight_config()).expect("recovers");
        assert_eq!(cp.height, 16, "latest periodic checkpoint");
        let replayed = recovered.replay_tail(&mut NoExecutor).expect("replays");
        assert_eq!(replayed, height - cp.height, "restart cost ∝ tail length");
        assert_eq!(recovered.head_id(), head);
        assert_eq!(recovered.height(), height);
        assert_eq!(recovered.head_state().root(), root);
        assert_eq!(recovered.canonical_chain(), chain);

        // The recovered store keeps working.
        let block = recovered.propose(&proposer(), 99, vec![blob(19)], &mut NoExecutor);
        recovered.import(block, &mut NoExecutor).expect("extends");
        assert_eq!(recovered.height(), height + 1);
    }

    #[test]
    fn recovery_without_periodic_checkpoints_replays_from_genesis() {
        let cfg = StorageConfig {
            retention: 4,
            checkpoint_interval: 0,
            ..StorageConfig::default()
        };
        let state = State::genesis([(alice().address(), 10_000)]);
        let mut store =
            ChainStore::with_backend(state, &proposer(), Box::new(MemBackend::new()), &cfg)
                .expect("builds");
        for i in 0..9u64 {
            let block = store.propose(&proposer(), 10 + i, vec![blob(i)], &mut NoExecutor);
            store.import(block, &mut NoExecutor).expect("imports");
        }
        let head = store.head_id();
        let backend = store.into_backend().expect("flushes");
        let (mut recovered, cp) = ChainStore::open_recovering(backend, &cfg).expect("recovers");
        assert_eq!(cp.height, 0, "only the genesis checkpoint exists");
        let replayed = recovered.replay_tail(&mut NoExecutor).expect("replays");
        assert_eq!(replayed, 9);
        assert_eq!(recovered.head_id(), head);
    }

    /// Test projection: a running hash over observed `(block id, receipt
    /// successes)` — sensitive to both sequence and content.
    #[derive(Default)]
    struct ChainTrace {
        acc: Vec<u8>,
        blocks_seen: usize,
    }

    impl crate::observer::BlockObserver for ChainTrace {
        fn name(&self) -> &'static str {
            "trace"
        }

        fn on_block(&mut self, block: &Block, receipts: &[Receipt]) {
            self.acc.extend_from_slice(block.id().as_bytes());
            for r in receipts {
                self.acc.push(r.success as u8);
            }
            self.blocks_seen += 1;
        }

        fn digest(&self) -> Hash256 {
            tn_crypto::sha256::tagged_hash("test/trace", &self.acc)
        }

        fn reset(&mut self) {
            self.acc.clear();
            self.blocks_seen = 0;
        }

        fn save_state(&self) -> Option<Vec<u8>> {
            let mut out = self.acc.clone();
            out.extend_from_slice(&(self.blocks_seen as u64).to_le_bytes());
            Some(out)
        }

        fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
            if bytes.len() < 8 {
                return Err("short".into());
            }
            let (acc, count) = bytes.split_at(bytes.len() - 8);
            self.acc = acc.to_vec();
            self.blocks_seen = u64::from_le_bytes(count.try_into().unwrap()) as usize;
            Ok(())
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn observer_sees_imports_and_catches_up_on_registration() {
        let mut store = store_with_funds();
        let b1 = store.propose(&proposer(), 10, vec![blob(0)], &mut NoExecutor);
        store.import(b1, &mut NoExecutor).expect("b1");

        // Late registration replays history (genesis + b1).
        store.register_observer(Box::new(ChainTrace::default()));
        assert_eq!(
            store.observer::<ChainTrace>("trace").unwrap().blocks_seen,
            2
        );

        let b2 = store.propose(&proposer(), 11, vec![blob(1)], &mut NoExecutor);
        store.import(b2, &mut NoExecutor).expect("b2");
        assert_eq!(
            store.observer::<ChainTrace>("trace").unwrap().blocks_seen,
            3
        );

        // Live digest equals a replay into a fresh observer.
        let mut fresh: Vec<Box<dyn BlockObserver>> = vec![Box::new(ChainTrace::default())];
        store.replay_into(&mut fresh);
        assert_eq!(fresh[0].digest(), store.projection_digests()[0].1);
        assert_eq!(
            store.projection_root(),
            observer::projection_root(&[("trace", fresh[0].digest())])
        );
    }

    #[test]
    fn reorg_rebuilds_observers_from_canonical_chain() {
        let mut store = store_with_funds();
        store.register_observer(Box::new(ChainTrace::default()));
        let genesis = store.head_id();
        let p1 = proposer();
        let p2 = Keypair::from_seed(b"rival");

        // Branch A extends the head — observer follows it live.
        let a1 = store.propose(&p1, 10, vec![blob(0)], &mut NoExecutor);
        store.import(a1, &mut NoExecutor).expect("a1");
        let digest_on_a = store.projection_digests()[0].1;

        // Branch B (two empty blocks) wins the reorg; the observer must
        // now reflect B's history, not A's.
        let genesis_state = store.state_of(&genesis).expect("genesis state").clone();
        let b1 = Block::build(&p2, 1, genesis, genesis_state.root(), 11, vec![]);
        store.import(b1.clone(), &mut NoExecutor).expect("b1");
        let b1_state = store.state_of(&b1.id()).expect("b1 state").clone();
        let b2 = Block::build(&p2, 2, b1.id(), b1_state.root(), 12, vec![]);
        store.import(b2.clone(), &mut NoExecutor).expect("b2");
        assert_eq!(store.head_id(), b2.id());

        let trace = store.observer::<ChainTrace>("trace").unwrap();
        assert_eq!(trace.blocks_seen, 3, "reset + genesis, b1, b2");
        let digest_on_b = store.projection_digests()[0].1;
        assert_ne!(digest_on_a, digest_on_b);

        // And the rebuilt state matches a from-scratch replay.
        let mut fresh: Vec<Box<dyn BlockObserver>> = vec![Box::new(ChainTrace::default())];
        store.replay_into(&mut fresh);
        assert_eq!(fresh[0].digest(), digest_on_b);
    }

    #[test]
    fn non_canonical_import_does_not_notify() {
        let mut store = store_with_funds();
        let genesis = store.head_id();
        let b1 = store.propose(&proposer(), 10, vec![blob(0)], &mut NoExecutor);
        store.import(b1, &mut NoExecutor).expect("b1");
        store.register_observer(Box::new(ChainTrace::default()));

        // A same-height rival that loses the tie-break must not disturb
        // the projection.
        let rival = Keypair::from_seed(b"rival");
        let genesis_state = store.state_of(&genesis).expect("genesis state").clone();
        let r1 = Block::build(&rival, 1, genesis, genesis_state.root(), 11, vec![]);
        let head_before = store.head_id();
        store.import(r1.clone(), &mut NoExecutor).expect("r1");
        if store.head_id() == head_before {
            assert_eq!(
                store.observer::<ChainTrace>("trace").unwrap().blocks_seen,
                2
            );
        } else {
            // Tie-break picked the rival: observer was rebuilt onto it.
            assert_eq!(store.canonical_chain(), vec![r1.id(), genesis]);
            assert_eq!(
                store.observer::<ChainTrace>("trace").unwrap().blocks_seen,
                2
            );
        }
    }

    #[test]
    fn restored_observer_continues_through_tail_replay() {
        let mut store = tight_store();
        store.register_observer(Box::new(ChainTrace::default()));
        for i in 0..19u64 {
            let block = store.propose(&proposer(), 10 + i, vec![blob(i)], &mut NoExecutor);
            store.import(block, &mut NoExecutor).expect("imports");
            store.maybe_checkpoint(Vec::new()).expect("checkpoints");
        }
        let live_digest = store.projection_digests()[0].1;

        let backend = store.into_backend().expect("flushes");
        let (mut recovered, cp) =
            ChainStore::open_recovering(backend, &tight_config()).expect("recovers");
        let mut trace = ChainTrace::default();
        trace
            .load_state(cp.extension("trace").expect("projection saved"))
            .expect("loads");
        recovered.register_observer_restored(Box::new(trace));
        recovered.replay_tail(&mut NoExecutor).expect("replays");
        assert_eq!(recovered.projection_digests()[0].1, live_digest);
        assert_eq!(
            recovered
                .observer::<ChainTrace>("trace")
                .unwrap()
                .blocks_seen,
            20
        );
    }
}
