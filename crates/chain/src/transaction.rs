//! Signed transactions on the news chain.
//!
//! Every action in the platform — publishing a news item, relaying it,
//! voting on its truthfulness, anchoring the factual-database root — is a
//! [`Transaction`] signed by the acting account. The paper's accountability
//! and traceability properties ("each record is signed and easy to track…
//! can't deny that he/she has created this news") come directly from this
//! structure.

use tn_crypto::sha256::tagged_hash;
use tn_crypto::{Address, Hash256, Keypair, PublicKey, Signature};

use crate::codec::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use crate::error::ChainError;

/// The action a transaction performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Moves platform tokens (the incentive currency of §V) to another
    /// account.
    Transfer {
        /// Recipient address.
        to: Address,
        /// Token amount.
        amount: u64,
    },
    /// Carries an opaque domain record (news publication, propagation edge,
    /// rating, …). The `tag` namespaces the record type; the payload
    /// encoding is owned by the upper layer that defines the tag.
    Blob {
        /// Record-type tag (see [`blob_tags`]).
        tag: u16,
        /// Canonical record bytes.
        data: Vec<u8>,
    },
    /// Deploys contract bytecode; the contract account address is derived
    /// from the deployer and nonce.
    ContractDeploy {
        /// VM bytecode.
        code: Vec<u8>,
    },
    /// Calls a deployed contract.
    ContractCall {
        /// Contract account.
        contract: Address,
        /// ABI-encoded input.
        input: Vec<u8>,
        /// Gas limit the sender is willing to pay for.
        gas_limit: u64,
    },
    /// Anchors an external Merkle root (e.g. the factual database) under a
    /// namespace. Only the namespace owner may update it.
    AnchorRoot {
        /// Namespace, e.g. `"factdb"`.
        namespace: String,
        /// The committed root.
        root: Hash256,
    },
}

/// Well-known blob tags used by the upper layers. Collected here so tag
/// collisions are impossible to introduce silently.
pub mod blob_tags {
    /// News item publication (tn-supplychain).
    pub const NEWS_PUBLISH: u16 = 1;
    /// News propagation edge (tn-supplychain).
    pub const NEWS_PROPAGATE: u16 = 2;
    /// Crowd-sourced truthfulness rating (tn-crowdrank).
    pub const RATING: u16 = 3;
    /// Newsroom registration (tn-core).
    pub const NEWSROOM: u16 = 4;
    /// Fact-checker attestation (tn-factdb).
    pub const FACT_ATTEST: u16 = 5;
    /// AI-detector model registration (tn-core ecosystem).
    pub const MODEL_REGISTER: u16 = 6;
    /// Identity verification record (tn-core, "identification verified
    /// persons" of §V).
    pub const IDENTITY: u16 = 7;
    /// Fact-record proposal (tn-core): a candidate fact published on
    /// chain, admitted into the factual DB once enough [`FACT_ATTEST`]
    /// attestations accumulate. Putting proposals on chain makes fact
    /// admission a pure function of block history, so it can live in a
    /// replayable projection.
    pub const FACT_PROPOSE: u16 = 8;
}

impl Encodable for Payload {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Payload::Transfer { to, amount } => {
                enc.put_u8(0).put_hash(to.as_hash()).put_u64(*amount);
            }
            Payload::Blob { tag, data } => {
                enc.put_u8(1).put_u32(*tag as u32).put_bytes(data);
            }
            Payload::ContractDeploy { code } => {
                enc.put_u8(2).put_bytes(code);
            }
            Payload::ContractCall {
                contract,
                input,
                gas_limit,
            } => {
                enc.put_u8(3)
                    .put_hash(contract.as_hash())
                    .put_bytes(input)
                    .put_u64(*gas_limit);
            }
            Payload::AnchorRoot { namespace, root } => {
                enc.put_u8(4).put_str(namespace).put_hash(root);
            }
        }
    }
}

impl Decodable for Payload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(Payload::Transfer {
                to: Address::from_hash(dec.get_hash()?),
                amount: dec.get_u64()?,
            }),
            1 => Ok(Payload::Blob {
                tag: dec.get_u32()? as u16,
                data: dec.get_bytes()?,
            }),
            2 => Ok(Payload::ContractDeploy {
                code: dec.get_bytes()?,
            }),
            3 => Ok(Payload::ContractCall {
                contract: Address::from_hash(dec.get_hash()?),
                input: dec.get_bytes()?,
                gas_limit: dec.get_u64()?,
            }),
            4 => Ok(Payload::AnchorRoot {
                namespace: dec.get_str()?,
                root: dec.get_hash()?,
            }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// A signed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Sender account (must match `pubkey`'s address).
    pub from: Address,
    /// Sender's account nonce (strictly sequential).
    pub nonce: u64,
    /// Fee paid to the block proposer.
    pub fee: u64,
    /// The action.
    pub payload: Payload,
    /// Sender public key (needed to verify `signature`).
    pub pubkey: PublicKey,
    /// Schnorr signature over the signing digest.
    pub signature: Signature,
}

impl Transaction {
    /// Builds and signs a transaction in one step.
    pub fn signed(keypair: &Keypair, nonce: u64, fee: u64, payload: Payload) -> Transaction {
        let from = keypair.address();
        let digest = Transaction::signing_digest(&from, nonce, fee, &payload);
        let signature = keypair.sign(&digest);
        Transaction {
            from,
            nonce,
            fee,
            payload,
            pubkey: *keypair.public(),
            signature,
        }
    }

    /// The digest that is signed: a tagged hash over the canonical encoding
    /// of all fields except the signature.
    pub fn signing_digest(from: &Address, nonce: u64, fee: u64, payload: &Payload) -> Hash256 {
        let mut enc = Encoder::new();
        enc.put_hash(from.as_hash()).put_u64(nonce).put_u64(fee);
        payload.encode(&mut enc);
        tagged_hash("TN/tx", &enc.finish())
    }

    /// The transaction id: a tagged hash over the full canonical encoding
    /// (including the signature, so ids commit to the exact on-chain bytes).
    pub fn id(&self) -> Hash256 {
        tagged_hash("TN/txid", &self.to_bytes())
    }

    /// Checks signature validity and sender-address consistency.
    ///
    /// # Errors
    ///
    /// [`ChainError::AddressMismatch`] when the public key does not hash to
    /// `from`; [`ChainError::BadSignature`] when verification fails.
    pub fn verify(&self) -> Result<(), ChainError> {
        if self.pubkey.address() != self.from {
            return Err(ChainError::AddressMismatch);
        }
        let digest = Transaction::signing_digest(&self.from, self.nonce, self.fee, &self.payload);
        if !self.pubkey.verify(&digest, &self.signature) {
            return Err(ChainError::BadSignature);
        }
        Ok(())
    }

    /// Total tokens this transaction moves out of the sender's balance
    /// (transfer amount plus fee; other payloads cost only the fee).
    pub fn total_debit(&self) -> u64 {
        let value = match &self.payload {
            Payload::Transfer { amount, .. } => *amount,
            _ => 0,
        };
        value.saturating_add(self.fee)
    }
}

impl Encodable for Transaction {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_hash(self.from.as_hash())
            .put_u64(self.nonce)
            .put_u64(self.fee);
        self.payload.encode(enc);
        enc.put_bytes(&self.pubkey.to_compressed());
        enc.put_bytes(&self.signature.to_bytes());
    }
}

impl Decodable for Transaction {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let from = Address::from_hash(dec.get_hash()?);
        let nonce = dec.get_u64()?;
        let fee = dec.get_u64()?;
        let payload = Payload::decode(dec)?;
        let pk_bytes: [u8; 33] = dec
            .get_bytes()?
            .try_into()
            .map_err(|_| DecodeError::BadLength(33))?;
        let pubkey = PublicKey::from_compressed(&pk_bytes).ok_or(DecodeError::BadTag(0xfe))?;
        let sig_bytes: [u8; 65] = dec
            .get_bytes()?
            .try_into()
            .map_err(|_| DecodeError::BadLength(65))?;
        let signature = Signature::from_bytes(&sig_bytes).ok_or(DecodeError::BadTag(0xff))?;
        Ok(Transaction {
            from,
            nonce,
            fee,
            payload,
            pubkey,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp() -> Keypair {
        Keypair::from_seed(b"tx tests")
    }

    #[test]
    fn signed_transaction_verifies() {
        let tx = Transaction::signed(
            &kp(),
            0,
            10,
            Payload::Transfer {
                to: Keypair::from_seed(b"bob").address(),
                amount: 5,
            },
        );
        tx.verify().expect("valid");
    }

    #[test]
    fn all_payload_variants_round_trip() {
        let k = kp();
        let payloads = vec![
            Payload::Transfer {
                to: k.address(),
                amount: 42,
            },
            Payload::Blob {
                tag: blob_tags::NEWS_PUBLISH,
                data: vec![1, 2, 3],
            },
            Payload::ContractDeploy {
                code: vec![0xde, 0xad],
            },
            Payload::ContractCall {
                contract: k.address(),
                input: vec![9],
                gas_limit: 1000,
            },
            Payload::AnchorRoot {
                namespace: "factdb".into(),
                root: tn_crypto::sha256::sha256(b"root"),
            },
        ];
        for (i, p) in payloads.into_iter().enumerate() {
            let tx = Transaction::signed(&k, i as u64, 1, p);
            let decoded = Transaction::from_bytes(&tx.to_bytes()).expect("decodes");
            assert_eq!(decoded, tx);
            decoded.verify().expect("still verifies");
        }
    }

    #[test]
    fn tampering_with_fields_breaks_verification() {
        let k = kp();
        let tx = Transaction::signed(
            &k,
            3,
            7,
            Payload::Blob {
                tag: 1,
                data: vec![1],
            },
        );

        let mut t = tx.clone();
        t.nonce = 4;
        assert_eq!(t.verify(), Err(ChainError::BadSignature));

        let mut t = tx.clone();
        t.fee = 8;
        assert_eq!(t.verify(), Err(ChainError::BadSignature));

        let mut t = tx.clone();
        t.payload = Payload::Blob {
            tag: 1,
            data: vec![2],
        };
        assert_eq!(t.verify(), Err(ChainError::BadSignature));

        let mut t = tx;
        t.from = Keypair::from_seed(b"eve").address();
        assert_eq!(t.verify(), Err(ChainError::AddressMismatch));
    }

    #[test]
    fn wrong_pubkey_is_address_mismatch() {
        let k = kp();
        let other = Keypair::from_seed(b"other");
        let mut tx = Transaction::signed(
            &k,
            0,
            0,
            Payload::Blob {
                tag: 1,
                data: vec![],
            },
        );
        tx.pubkey = *other.public();
        assert_eq!(tx.verify(), Err(ChainError::AddressMismatch));
    }

    #[test]
    fn tx_ids_differ_per_content() {
        let k = kp();
        let a = Transaction::signed(
            &k,
            0,
            0,
            Payload::Blob {
                tag: 1,
                data: vec![1],
            },
        );
        let b = Transaction::signed(
            &k,
            1,
            0,
            Payload::Blob {
                tag: 1,
                data: vec![1],
            },
        );
        assert_ne!(a.id(), b.id());
        // id is stable across re-encoding.
        let decoded = Transaction::from_bytes(&a.to_bytes()).expect("decodes");
        assert_eq!(decoded.id(), a.id());
    }

    #[test]
    fn total_debit_includes_fee_and_value() {
        let k = kp();
        let t = Transaction::signed(
            &k,
            0,
            7,
            Payload::Transfer {
                to: k.address(),
                amount: 100,
            },
        );
        assert_eq!(t.total_debit(), 107);
        let b = Transaction::signed(
            &k,
            0,
            7,
            Payload::Blob {
                tag: 1,
                data: vec![],
            },
        );
        assert_eq!(b.total_debit(), 7);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Transaction::from_bytes(&[0u8; 10]).is_err());
        // Valid tx with trailing garbage also rejected.
        let k = kp();
        let tx = Transaction::signed(
            &k,
            0,
            0,
            Payload::Blob {
                tag: 1,
                data: vec![],
            },
        );
        let mut bytes = tx.to_bytes();
        bytes.push(0);
        assert!(Transaction::from_bytes(&bytes).is_err());
    }
}
