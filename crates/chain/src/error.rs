//! Chain-level error types.

use std::error::Error;
use std::fmt;

use tn_crypto::{Address, Hash256};

use crate::codec::DecodeError;

/// Errors raised while validating or applying transactions and blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Signature did not verify against the sender's public key.
    BadSignature,
    /// The sender's declared public key does not hash to the `from` address.
    AddressMismatch,
    /// Transaction nonce does not match the account's next nonce.
    BadNonce {
        /// Account whose nonce mismatched.
        account: Address,
        /// Expected next nonce.
        expected: u64,
        /// Nonce carried by the transaction.
        actual: u64,
    },
    /// Sender balance is insufficient for value + fee.
    InsufficientBalance {
        /// Account that lacked funds.
        account: Address,
        /// Balance required.
        needed: u64,
        /// Balance available.
        available: u64,
    },
    /// Block references an unknown parent.
    UnknownParent(Hash256),
    /// Block height is not parent height + 1.
    BadHeight {
        /// Expected height.
        expected: u64,
        /// Height carried by the block.
        actual: u64,
    },
    /// Header transaction root does not match the block body.
    BadTxRoot,
    /// Header state root does not match the post-execution state.
    BadStateRoot,
    /// A block was submitted twice.
    DuplicateBlock(Hash256),
    /// A transaction was submitted twice.
    DuplicateTransaction(Hash256),
    /// Malformed binary encoding.
    Decode(DecodeError),
    /// The block's timestamp precedes its parent's.
    TimestampRegression,
    /// Contract execution failed (message from the executor).
    Execution(String),
    /// The mempool is full.
    MempoolFull,
    /// Anchor namespace updated by a non-authorized account.
    AnchorForbidden {
        /// Namespace being written.
        namespace: String,
    },
    /// The storage backend failed (I/O, corruption, protocol misuse).
    Storage(String),
    /// The operation needed block history that compaction has pruned.
    HistoryPruned {
        /// Lowest height still materialized in storage.
        first: u64,
    },
    /// A checkpoint blob was missing, malformed, or inconsistent with the
    /// stored chain.
    Checkpoint(String),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BadSignature => f.write_str("transaction signature invalid"),
            ChainError::AddressMismatch => {
                f.write_str("sender public key does not match from-address")
            }
            ChainError::BadNonce {
                account,
                expected,
                actual,
            } => write!(
                f,
                "bad nonce for {}: expected {expected}, got {actual}",
                account.short()
            ),
            ChainError::InsufficientBalance {
                account,
                needed,
                available,
            } => write!(
                f,
                "insufficient balance for {}: need {needed}, have {available}",
                account.short()
            ),
            ChainError::UnknownParent(h) => write!(f, "unknown parent block {}", h.short()),
            ChainError::BadHeight { expected, actual } => {
                write!(f, "bad block height: expected {expected}, got {actual}")
            }
            ChainError::BadTxRoot => f.write_str("transaction root mismatch"),
            ChainError::BadStateRoot => f.write_str("state root mismatch"),
            ChainError::DuplicateBlock(h) => write!(f, "duplicate block {}", h.short()),
            ChainError::DuplicateTransaction(h) => {
                write!(f, "duplicate transaction {}", h.short())
            }
            ChainError::Decode(e) => write!(f, "decode error: {e}"),
            ChainError::TimestampRegression => {
                f.write_str("block timestamp precedes parent timestamp")
            }
            ChainError::Execution(msg) => write!(f, "execution failed: {msg}"),
            ChainError::MempoolFull => f.write_str("mempool full"),
            ChainError::AnchorForbidden { namespace } => {
                write!(
                    f,
                    "account not authorized to anchor namespace {namespace:?}"
                )
            }
            ChainError::Storage(msg) => write!(f, "storage backend error: {msg}"),
            ChainError::HistoryPruned { first } => {
                write!(f, "block history below height {first} has been compacted")
            }
            ChainError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl Error for ChainError {}

impl From<DecodeError> for ChainError {
    fn from(e: DecodeError) -> Self {
        ChainError::Decode(e)
    }
}

impl From<tn_storage::StorageError> for ChainError {
    fn from(e: tn_storage::StorageError) -> Self {
        ChainError::Storage(e.to_string())
    }
}
