//! Per-client token-bucket rate limiting on a logical clock.
//!
//! Buckets refill continuously at `rate` tokens per second and hold at
//! most `burst` tokens; each admitted request spends one token. All
//! arithmetic is integer (millitokens) on caller-supplied nanosecond
//! timestamps, so decisions are exactly reproducible: the limiter never
//! reads a wall clock.

use std::collections::HashMap;

/// Millitokens per token — the fixed-point scale of bucket levels.
const MILLI: u64 = 1_000;

/// One client's bucket: current level and the time it was last refilled.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Fill level in millitokens.
    level: u64,
    /// Timestamp of the last refill, nanoseconds.
    refilled_at: u64,
}

/// A deterministic per-client token-bucket rate limiter.
///
/// `rate == 0` disables limiting entirely ([`RateLimiter::allow`] always
/// returns `true`); otherwise each client sustains `rate` requests per
/// second with bursts up to `burst` (clamped to at least 1 so an enabled
/// limiter can always admit a first request).
#[derive(Debug)]
pub struct RateLimiter {
    /// Sustained tokens per second (0 = disabled).
    rate: u64,
    /// Bucket depth in millitokens.
    burst_milli: u64,
    buckets: HashMap<u64, Bucket>,
}

impl RateLimiter {
    /// Creates a limiter granting `rate` requests/second with bursts of
    /// `burst` per client.
    pub fn new(rate: u64, burst: u64) -> RateLimiter {
        RateLimiter {
            rate,
            burst_milli: burst.max(1).saturating_mul(MILLI),
            buckets: HashMap::new(),
        }
    }

    /// True when rate limiting is disabled (`rate == 0`).
    pub fn is_disabled(&self) -> bool {
        self.rate == 0
    }

    /// Decides one request from `client` arriving at `now_ns`: spends a
    /// token and returns `true`, or returns `false` when the bucket is
    /// empty. Timestamps may repeat but must not go backwards per client
    /// (a regression is treated as "no time passed").
    pub fn allow(&mut self, client: u64, now_ns: u64) -> bool {
        if self.rate == 0 {
            return true;
        }
        let bucket = self.buckets.entry(client).or_insert(Bucket {
            level: self.burst_milli,
            refilled_at: now_ns,
        });
        let elapsed = now_ns.saturating_sub(bucket.refilled_at);
        // elapsed ns × rate tokens/s = elapsed × rate / 1e9 tokens
        //                            = elapsed × rate / 1e6 millitokens.
        let refill = elapsed.saturating_mul(self.rate) / 1_000_000;
        if refill > 0 {
            bucket.level = (bucket.level + refill).min(self.burst_milli);
            // Advance by the time actually converted into millitokens so
            // sub-millitoken remainders are never silently discarded.
            bucket.refilled_at += refill.saturating_mul(1_000_000) / self.rate;
        } else if now_ns > bucket.refilled_at && bucket.level >= self.burst_milli {
            // A full bucket accrues nothing; keep the clock current so a
            // long idle gap is not double-counted later.
            bucket.refilled_at = now_ns;
        }
        if bucket.level >= MILLI {
            bucket.level -= MILLI;
            true
        } else {
            false
        }
    }

    /// Number of clients with instantiated buckets.
    pub fn clients(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn zero_rate_disables_limiting() {
        let mut l = RateLimiter::new(0, 0);
        assert!(l.is_disabled());
        for i in 0..10_000 {
            assert!(l.allow(1, i));
        }
    }

    #[test]
    fn burst_then_shed_then_refill() {
        // 2 tokens/s, burst 5: the first 5 back-to-back requests pass,
        // the 6th sheds, and after 500 ms one more token is available.
        let mut l = RateLimiter::new(2, 5);
        for _ in 0..5 {
            assert!(l.allow(7, 0));
        }
        assert!(!l.allow(7, 0));
        assert!(!l.allow(7, SEC / 4), "250 ms refills only half a token");
        assert!(l.allow(7, SEC / 2 + SEC / 4));
        assert!(!l.allow(7, SEC / 2 + SEC / 4));
    }

    #[test]
    fn sustained_rate_is_honoured() {
        // 100 tokens/s, burst 1: a client arriving every 10 ms is never
        // shed; one arriving every 5 ms is shed about half the time.
        let mut l = RateLimiter::new(100, 1);
        let mut ok = 0;
        for i in 0..200u64 {
            if l.allow(1, i * SEC / 100) {
                ok += 1;
            }
        }
        assert_eq!(ok, 200, "at-rate client never sheds");
        let mut ok = 0;
        for i in 0..200u64 {
            if l.allow(2, i * SEC / 200) {
                ok += 1;
            }
        }
        assert!((95..=105).contains(&ok), "2x-rate client sheds ~half: {ok}");
    }

    #[test]
    fn clients_have_independent_buckets() {
        let mut l = RateLimiter::new(1, 1);
        assert!(l.allow(1, 0));
        assert!(!l.allow(1, 0));
        assert!(l.allow(2, 0), "client 2 has its own bucket");
        assert_eq!(l.clients(), 2);
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut l = RateLimiter::new(10, 3);
        // A decade of idling still only buys `burst` back-to-back admits.
        assert!(l.allow(9, 0));
        let far = 315 * 1_000_000 * SEC / 1_000_000;
        let mut ok = 0;
        for _ in 0..10 {
            if l.allow(9, far) {
                ok += 1;
            }
        }
        assert_eq!(ok, 3);
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut l = RateLimiter::new(50, 10);
            (0..500u64)
                .map(|i| l.allow(i % 7, i * 3_000_000))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
