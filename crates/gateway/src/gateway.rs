//! The admission gateway: rate limit → bounded lane → batched ingest.
//!
//! A request's life at the front door:
//!
//! ```text
//! offer(client, tx, t) ──▶ token bucket ──▶ ingress lane ──▶ verdict
//!                           │ empty           │ full
//!                           ▼                 ▼
//!                      ShedRateLimit     ShedQueueFull
//!
//! drain_into(node) ──▶ mempool (≤ ingest_batch per call, watermark-gated)
//! ```
//!
//! Both shed verdicts happen *at the door*, before the transaction is
//! accepted — the explicit-backpressure contract. Past the door, work is
//! never dropped: a lane entry either ingests into the mempool (where
//! per-transaction admission may still reject it, visibly, as
//! `mempool.rejected`) or stays queued until capacity frees downstream.

use tn_core::platform::GatewayConfig;
use tn_node::validator::ValidatorNode;
use tn_telemetry::TelemetrySink;
use tn_trace::{lanes, span_id, TraceId, TraceSink};

use crate::limiter::RateLimiter;
use crate::queue::{IngressLane, QueuedTx};
use crate::GatewayError;

use tn_chain::prelude::Transaction;

/// The gateway's decision on one offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitVerdict {
    /// Accepted into an ingress lane; the gateway now owns the
    /// transaction and guarantees it reaches the mempool.
    Admitted,
    /// Shed: the client exceeded its token-bucket rate.
    ShedRateLimit,
    /// Shed: the client's ingress lane is at capacity (downstream
    /// backpressure reached the door).
    ShedQueueFull,
}

/// Deterministic admission accounting, kept separately from telemetry so
/// tests can compare exact decision streams without a registry attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatewayStats {
    /// Requests offered (writes only; reads are counted by the caller).
    pub offered: u64,
    /// Requests admitted into a lane.
    pub admitted: u64,
    /// Requests shed by the rate limiter.
    pub shed_rate_limit: u64,
    /// Requests shed by a full lane.
    pub shed_queue_full: u64,
    /// Transactions handed to the mempool.
    pub ingested: u64,
    /// Of those, accepted by mempool admission.
    pub mempool_accepted: u64,
    /// Of those, rejected by mempool admission (duplicate/nonce/full) —
    /// visible rejections, not queue drops.
    pub mempool_rejected: u64,
}

/// Result of one [`Gateway::drain_into`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainReport {
    /// Transactions moved out of lanes this pass.
    pub ingested: usize,
    /// Accepted by the mempool.
    pub accepted: usize,
    /// Rejected by the mempool.
    pub rejected: usize,
    /// Ingest calls made (each ≤ `ingest_batch` transactions).
    pub batches: usize,
    /// True when the pass stopped early because the mempool watermark
    /// was reached (backpressure holding work in the bounded lanes).
    pub backpressured: bool,
}

/// The front-door admission layer for one validator node.
#[derive(Debug)]
pub struct Gateway {
    lanes: Vec<IngressLane>,
    limiter: RateLimiter,
    ingest_batch: usize,
    mempool_watermark: usize,
    stats: GatewayStats,
    telemetry: TelemetrySink,
    trace: TraceSink,
}

impl Gateway {
    /// Builds a gateway from `config`, validating it.
    ///
    /// `workers == 0` is clamped to one lane (mirroring `tn-par`'s pool).
    ///
    /// # Errors
    ///
    /// [`GatewayError::Config`] when `queue_capacity == 0` (a lane that
    /// can never accept work) or `ingest_batch == 0` (a drain that can
    /// never move work) — both would stall the front door silently.
    pub fn new(config: &GatewayConfig) -> Result<Gateway, GatewayError> {
        if config.queue_capacity == 0 {
            return Err(GatewayError::Config(
                "queue_capacity must be > 0: a zero-capacity ingress lane sheds every request"
                    .into(),
            ));
        }
        if config.ingest_batch == 0 {
            return Err(GatewayError::Config(
                "ingest_batch must be > 0: a zero-size batch never drains admitted work".into(),
            ));
        }
        let lanes = config.workers.max(1);
        Ok(Gateway {
            lanes: (0..lanes)
                .map(|_| IngressLane::new(config.queue_capacity))
                .collect(),
            limiter: RateLimiter::new(config.rate_per_client, config.burst_per_client),
            ingest_batch: config.ingest_batch,
            mempool_watermark: config.mempool_watermark,
            stats: GatewayStats::default(),
            telemetry: TelemetrySink::disabled(),
            trace: TraceSink::disabled(),
        })
    }

    /// Gates [`Gateway::drain_into`] on downstream mempool occupancy:
    /// draining pauses while the node's mempool holds at least
    /// `watermark` transactions, so overload queues in the *bounded*
    /// lanes (shedding new arrivals at the door) instead of growing the
    /// mempool without bound. `0` disables the gate.
    pub fn set_mempool_watermark(&mut self, watermark: usize) {
        self.mempool_watermark = watermark;
    }

    /// Routes gateway metrics (`gateway.*`) to `sink`.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Records `gateway.admission` / `gateway.ingest` spans to `sink`,
    /// linking each transaction's front-door hops into the same causal
    /// trace the mempool and pipeline continue.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Number of ingress lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Transactions currently queued across all lanes.
    pub fn queued(&self) -> usize {
        self.lanes.iter().map(IngressLane::len).sum()
    }

    /// Deterministic admission accounting so far.
    pub fn stats(&self) -> &GatewayStats {
        &self.stats
    }

    /// The lane a client's requests always land in (client-sharded so a
    /// client's transactions stay FIFO relative to each other).
    fn lane_of(&self, client: u64) -> usize {
        // Multiplicative hash so adjacent client ids spread across lanes.
        (client.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33) as usize % self.lanes.len()
    }

    /// Offers one write request at logical time `now_ns` and returns the
    /// explicit verdict. Counts `gateway.offered` / `gateway.admitted` /
    /// `gateway.shed.*`, observes per-lane depth, and records the
    /// transaction's `gateway.admission` root span when admitted.
    pub fn offer(&mut self, client: u64, tx: Transaction, now_ns: u64) -> AdmitVerdict {
        self.stats.offered += 1;
        self.telemetry.incr("gateway.offered");
        if !self.limiter.allow(client, now_ns) {
            self.stats.shed_rate_limit += 1;
            self.telemetry.incr("gateway.shed.rate_limit");
            return AdmitVerdict::ShedRateLimit;
        }
        let lane = self.lane_of(client);
        let t0 = self.trace.now_ns();
        let tx_trace = if self.trace.is_enabled() {
            TraceId::from_seed(tx.id().as_bytes())
        } else {
            TraceId::NONE
        };
        match self.lanes[lane].push(QueuedTx {
            tx,
            client,
            arrival_ns: now_ns,
        }) {
            Ok(()) => {
                self.stats.admitted += 1;
                self.telemetry.incr("gateway.admitted");
                self.telemetry
                    .observe("gateway.lane_depth", self.lanes[lane].len() as u64);
                // The front-door root of the transaction's causal chain;
                // mempool admission and ingest recompute this id to
                // parent under it.
                self.trace.complete_once(
                    tx_trace,
                    "gateway.admission",
                    0,
                    lanes::ADMISSION,
                    t0,
                    &[("client", client), ("lane", lane as u64)],
                );
                AdmitVerdict::Admitted
            }
            Err(_) => {
                self.stats.shed_queue_full += 1;
                self.telemetry.incr("gateway.shed.queue_full");
                AdmitVerdict::ShedQueueFull
            }
        }
    }

    /// Reads bypass the ledger entirely, but still pass the same
    /// per-client token bucket: returns `true` when the read is within
    /// rate (counting `gateway.reads.{served,shed}`).
    pub fn offer_read(&mut self, client: u64, now_ns: u64) -> bool {
        if self.limiter.allow(client, now_ns) {
            self.telemetry.incr("gateway.reads.served");
            true
        } else {
            self.telemetry.incr("gateway.reads.shed");
            false
        }
    }

    /// Drains queued transactions into `node`'s mempool in chunks of at
    /// most `ingest_batch`, lane by lane, until the lanes are empty or
    /// the mempool watermark is reached. Every drained transaction gets
    /// a visible outcome (mempool accepted or rejected); none are
    /// dropped. Counts `gateway.ingest.batches` and observes
    /// `gateway.ingest.batch_size`.
    pub fn drain_into(&mut self, node: &mut ValidatorNode) -> DrainReport {
        let mut report = DrainReport::default();
        let mut batch: Vec<Transaction> = Vec::with_capacity(self.ingest_batch);
        let mut batch_spans: Vec<(TraceId, u64)> = Vec::new();
        loop {
            if self.mempool_watermark > 0 && node.mempool().len() >= self.mempool_watermark {
                report.backpressured = true;
                break;
            }
            // Fill one chunk, round-robin-free: take lanes in index order
            // (deterministic), preserving each lane's FIFO.
            batch.clear();
            batch_spans.clear();
            let t0 = self.trace.now_ns();
            let headroom = if self.mempool_watermark > 0 {
                self.mempool_watermark.saturating_sub(node.mempool().len())
            } else {
                usize::MAX
            };
            let take = self.ingest_batch.min(headroom);
            'fill: for lane in &mut self.lanes {
                while batch.len() < take {
                    match lane.pop() {
                        Some(entry) => {
                            if self.trace.is_enabled() {
                                let tx_trace = TraceId::from_seed(entry.tx.id().as_bytes());
                                batch_spans.push((tx_trace, entry.client));
                            }
                            batch.push(entry.tx);
                        }
                        None => continue 'fill,
                    }
                }
                break;
            }
            if batch.is_empty() {
                break;
            }
            let out = node.submit_batch(std::mem::take(&mut batch));
            for (tx_trace, client) in batch_spans.drain(..) {
                self.trace.complete(
                    tx_trace,
                    "gateway.ingest",
                    span_id(tx_trace, "gateway.admission"),
                    lanes::ADMISSION,
                    t0,
                    &[("client", client)],
                );
            }
            let moved = out.accepted + out.rejected;
            report.ingested += moved;
            report.accepted += out.accepted;
            report.rejected += out.rejected;
            report.batches += 1;
            self.stats.ingested += moved as u64;
            self.stats.mempool_accepted += out.accepted as u64;
            self.stats.mempool_rejected += out.rejected as u64;
            self.telemetry.incr("gateway.ingest.batches");
            self.telemetry
                .observe("gateway.ingest.batch_size", moved as u64);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_core::platform::PlatformConfig;
    use tn_crypto::Keypair;

    fn cfg() -> GatewayConfig {
        GatewayConfig {
            workers: 2,
            queue_capacity: 4,
            rate_per_client: 0,
            burst_per_client: 0,
            ingest_batch: 3,
            mempool_watermark: 0,
        }
    }

    fn tx(seed: &[u8], nonce: u64) -> Transaction {
        let kp = Keypair::from_seed(seed);
        Transaction::signed(
            &kp,
            nonce,
            1,
            tn_chain::prelude::Payload::Transfer {
                to: kp.address(),
                amount: 1,
            },
        )
    }

    #[test]
    fn zero_queue_capacity_is_a_typed_config_error() {
        let err = Gateway::new(&GatewayConfig {
            queue_capacity: 0,
            ..cfg()
        });
        assert!(matches!(err, Err(GatewayError::Config(_))), "{err:?}");
    }

    #[test]
    fn zero_ingest_batch_is_a_typed_config_error() {
        let err = Gateway::new(&GatewayConfig {
            ingest_batch: 0,
            ..cfg()
        });
        assert!(matches!(err, Err(GatewayError::Config(_))), "{err:?}");
    }

    #[test]
    fn zero_workers_clamps_to_one_lane() {
        let gw = Gateway::new(&GatewayConfig {
            workers: 0,
            ..cfg()
        })
        .unwrap();
        assert_eq!(gw.lanes(), 1);
    }

    #[test]
    fn full_lane_sheds_with_an_explicit_verdict() {
        let mut gw = Gateway::new(&GatewayConfig {
            workers: 1,
            queue_capacity: 2,
            ..cfg()
        })
        .unwrap();
        assert_eq!(gw.offer(1, tx(b"a", 0), 0), AdmitVerdict::Admitted);
        assert_eq!(gw.offer(1, tx(b"a", 1), 1), AdmitVerdict::Admitted);
        assert_eq!(gw.offer(1, tx(b"a", 2), 2), AdmitVerdict::ShedQueueFull);
        assert_eq!(gw.stats().admitted, 2);
        assert_eq!(gw.stats().shed_queue_full, 1);
        assert_eq!(gw.queued(), 2, "shed never evicts admitted work");
    }

    #[test]
    fn rate_limited_clients_shed_before_queueing() {
        let mut gw = Gateway::new(&GatewayConfig {
            rate_per_client: 1,
            burst_per_client: 1,
            ..cfg()
        })
        .unwrap();
        assert_eq!(gw.offer(5, tx(b"b", 0), 0), AdmitVerdict::Admitted);
        assert_eq!(gw.offer(5, tx(b"b", 1), 0), AdmitVerdict::ShedRateLimit);
        assert_eq!(gw.queued(), 1);
        assert!(!gw.offer_read(5, 0), "reads share the bucket");
    }

    #[test]
    fn drain_moves_everything_in_ingest_batch_chunks() {
        let config = PlatformConfig::default();
        let mut node = ValidatorNode::new(0, &config);
        let mut gw = Gateway::new(&GatewayConfig {
            queue_capacity: 16,
            ..cfg()
        })
        .unwrap();
        // The bootstrap governor is funded; its nonce 0 was spent on the
        // genesis anchor, so the session starts at 1.
        let kp = Keypair::from_seed(b"tn-platform-governor");
        for nonce in 1..=7 {
            let t = Transaction::signed(
                &kp,
                nonce,
                1,
                tn_chain::prelude::Payload::Transfer {
                    to: kp.address(),
                    amount: 1,
                },
            );
            assert_eq!(gw.offer(9, t, nonce), AdmitVerdict::Admitted);
        }
        let report = gw.drain_into(&mut node);
        assert_eq!(report.ingested, 7);
        assert_eq!(report.batches, 3, "7 txs in chunks of 3");
        assert_eq!(gw.queued(), 0);
        assert_eq!(report.accepted, 7);
        assert_eq!(
            gw.stats().ingested,
            gw.stats().mempool_accepted + gw.stats().mempool_rejected
        );
    }

    #[test]
    fn watermark_backpressure_holds_work_in_lanes() {
        let config = PlatformConfig::default();
        let mut node = ValidatorNode::new(0, &config);
        let mut gw = Gateway::new(&GatewayConfig {
            workers: 1,
            queue_capacity: 16,
            ..cfg()
        })
        .unwrap();
        gw.set_mempool_watermark(2);
        let kp = Keypair::from_seed(b"tn-platform-governor");
        for nonce in 1..=6 {
            let t = Transaction::signed(
                &kp,
                nonce,
                1,
                tn_chain::prelude::Payload::Transfer {
                    to: kp.address(),
                    amount: 1,
                },
            );
            assert_eq!(gw.offer(3, t, nonce), AdmitVerdict::Admitted);
        }
        let report = gw.drain_into(&mut node);
        assert!(report.backpressured);
        assert_eq!(report.ingested, 2, "drain stops at the watermark");
        assert_eq!(gw.queued(), 4, "the rest waits in the bounded lane");
        // Committing frees the mempool; the next drain resumes.
        node.produce_block_from_mempool(100).unwrap();
        let report = gw.drain_into(&mut node);
        assert!(report.ingested >= 2);
    }

    #[test]
    fn a_clients_transactions_stay_fifo_through_one_lane() {
        let mut gw = Gateway::new(&GatewayConfig {
            workers: 4,
            queue_capacity: 64,
            ..cfg()
        })
        .unwrap();
        for nonce in 0..10 {
            gw.offer(77, tx(b"c", nonce), nonce);
        }
        let lane = gw.lane_of(77);
        let mut nonces = Vec::new();
        while let Some(e) = gw.lanes[lane].pop() {
            nonces.push(e.tx.nonce);
        }
        assert_eq!(nonces, (0..10).collect::<Vec<_>>());
    }
}
