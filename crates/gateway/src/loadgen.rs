//! Persona-driven workload generation and open-loop arrival scheduling.
//!
//! Transactions are not invented here (the same rule as
//! `tn_node::workload`): a local [`Platform`] executes the whole
//! scripted session — client registration, newsroom setup, seed
//! articles, then an event loop of publishes and ratings — and the
//! committed ledger becomes the request stream. That guarantees every
//! request is valid platform traffic (correct nonces, funded fees,
//! role-checked contract calls) while leaving the gateway free to
//! re-batch it into its own blocks.
//!
//! The load model follows the paper's ecosystem: **submitters**
//! (journalists) publish articles, **rankers** (consumers) rate them,
//! **readers** only read. Bot and cyborg accounts (per
//! `tn-propagation`'s [`AccountKind`]) generate proportionally more
//! traffic — a bot emits `amplification()`× the events of a human with
//! the same persona. Which article a ranker rates or a reader fetches is
//! drawn from a [`ZipfSampler`] over the seed-article catalogue, so a
//! few head articles absorb most of the traffic, as article popularity
//! does in the wild.
//!
//! Everything is seeded: the same [`LoadProfile`] always yields the same
//! [`Workload`], and [`schedule`] always yields the same arrival
//! timestamps — the determinism the E21 replay tests rely on.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tn_chain::prelude::*;
use tn_core::platform::{Platform, PlatformConfig};
use tn_core::roles::Role;
use tn_crypto::{Address, Keypair};
use tn_propagation::{AccountKind, ZipfSampler};
use tn_supplychain::ops::PropagationOp;

/// What a client does on the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Persona {
    /// A journalist: publishes articles (occasionally citing popular
    /// seed articles).
    Submitter,
    /// A consumer: submits ratings on Zipf-sampled articles.
    Ranker,
    /// A pure reader: fetches articles, never writes to the ledger.
    Reader,
}

/// One load-generating client.
#[derive(Debug, Clone)]
pub struct ClientProfile {
    /// The gateway-visible client id (stable across runs).
    pub id: u64,
    /// What this client does.
    pub persona: Persona,
    /// Human, bot or cyborg — scales how much traffic the client emits.
    pub kind: AccountKind,
}

/// The body of one request.
#[derive(Debug, Clone)]
pub enum RequestKind {
    /// A ledger write (publish or rating), pre-signed with the correct
    /// nonce for its client's session. Boxed so the read variant of a
    /// long load stream doesn't pay a transaction's footprint.
    Write(Box<Transaction>),
    /// A read of the seed article at this catalogue index; reads hit the
    /// gateway's rate limiter but never the ledger.
    Read {
        /// Index into the seed-article catalogue.
        article: usize,
    },
}

/// One client request in the load stream.
#[derive(Debug, Clone)]
pub struct Request {
    /// The submitting client.
    pub client: u64,
    /// What the client asks for.
    pub kind: RequestKind,
}

/// Parameters of a generated workload. All fields are part of the seed:
/// two equal profiles produce identical workloads.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Journalist clients publishing articles.
    pub submitters: usize,
    /// Consumer clients submitting ratings.
    pub rankers: usize,
    /// Read-only clients.
    pub readers: usize,
    /// Fraction of clients that are bots (and half as many again are
    /// cyborgs); bots emit 3× and cyborgs 2× a human's event share.
    pub bot_fraction: f64,
    /// Articles published during setup — the Zipf catalogue that ratings
    /// and reads target.
    pub seed_articles: usize,
    /// Ledger-write events (publishes + ratings) in the load stream.
    pub write_events: usize,
    /// Read events interleaved into the stream.
    pub read_events: usize,
    /// Zipf exponent for article popularity (1.0 ≈ classic web traffic).
    pub zipf_s: f64,
    /// Master seed for client kinds, event actors and article targets.
    pub seed: u64,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            submitters: 6,
            rankers: 18,
            readers: 12,
            bot_fraction: 0.2,
            seed_articles: 24,
            write_events: 600,
            read_events: 300,
            zipf_s: 1.0,
            seed: 21,
        }
    }
}

/// A fully materialised load: the setup prefix every replica pre-applies,
/// plus the request stream the gateway admits one by one.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Committed setup transactions (registrations, newsroom, seed
    /// articles) in commit order — applied directly to the node before
    /// the open-loop run starts, never rate-limited.
    pub setup: Vec<Transaction>,
    /// The request stream in generation order. Per-client write order is
    /// nonce order and must be preserved; cross-client order is free.
    pub requests: Vec<Request>,
    /// Every load-generating client.
    pub clients: Vec<ClientProfile>,
    /// Size of the seed-article catalogue reads and ratings target.
    pub articles: usize,
}

impl Workload {
    /// Ledger-write requests in the stream.
    pub fn writes(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| matches!(r.kind, RequestKind::Write(_)))
            .count()
    }

    /// Read requests in the stream.
    pub fn reads(&self) -> usize {
        self.requests.len() - self.writes()
    }
}

/// One scheduled arrival: the request at `index` arrives at `at_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Logical arrival timestamp, nanoseconds from run start.
    pub at_ns: u64,
    /// Index into [`Workload::requests`].
    pub index: usize,
}

/// Derives a client's account kind from the profile's bot mix.
fn kind_of(r: f64, bot_fraction: f64) -> AccountKind {
    if r < bot_fraction {
        AccountKind::Bot
    } else if r < bot_fraction * 1.5 {
        AccountKind::Cyborg
    } else {
        AccountKind::Human
    }
}

/// Builds the full workload for `profile` by running the scripted
/// session on a local platform built from `config`.
///
/// # Panics
///
/// On internally inconsistent platform operations (registration or
/// publication of generator-controlled accounts failing) — these
/// indicate a bug in the generator, not a runtime condition.
pub fn build_workload(config: &PlatformConfig, profile: &LoadProfile) -> Workload {
    assert!(profile.submitters > 0, "need at least one submitter");
    assert!(
        profile.seed_articles > 0,
        "need a non-empty article catalogue"
    );
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mut p = Platform::new(config.clone());

    // --- clients ---------------------------------------------------------
    let mut clients = Vec::new();
    let mut keys = Vec::new();
    let total = profile.submitters + profile.rankers + profile.readers;
    for i in 0..total {
        let persona = if i < profile.submitters {
            Persona::Submitter
        } else if i < profile.submitters + profile.rankers {
            Persona::Ranker
        } else {
            Persona::Reader
        };
        let kind = kind_of(rng.gen::<f64>(), profile.bot_fraction);
        let id = i as u64 + 1; // 0 is reserved for system traffic
        clients.push(ClientProfile { id, persona, kind });
        keys.push(Keypair::from_seed(format!("e21-client-{i}").as_bytes()));
    }

    // --- setup: registrations, newsroom, seed articles -------------------
    let publisher = Keypair::from_seed(b"e21-publisher");
    p.register_identity(&publisher, "Open Loop Press", &[Role::Publisher])
        .expect("register publisher");
    for (client, key) in clients.iter().zip(&keys) {
        let roles: &[Role] = match client.persona {
            Persona::Submitter => &[Role::ContentCreator, Role::Consumer],
            _ => &[Role::Consumer],
        };
        p.register_identity(key, &format!("Client {}", client.id), roles)
            .expect("register client");
    }
    p.produce_block().expect("identity block");

    p.create_publisher_platform(&publisher, "Open Loop Press")
        .expect("create platform");
    p.produce_block().expect("platform block");
    let pid = p
        .newsrooms()
        .find_platform("Open Loop Press")
        .expect("platform id");
    p.create_news_room(&publisher, pid, "general")
        .expect("create room");
    p.produce_block().expect("room block");
    let room = p.newsrooms().rooms().next().expect("room").0;
    for (client, key) in clients.iter().zip(&keys) {
        if client.persona == Persona::Submitter {
            p.authorize_journalist(&publisher, room, &key.address())
                .expect("authorize");
        }
    }
    p.produce_block().expect("authorize block");

    let mut articles = Vec::new();
    for a in 0..profile.seed_articles {
        let author = a % profile.submitters;
        let id = p
            .publish_news(
                &keys[author],
                room,
                "general",
                &format!("Seed article {a} from the open-loop catalogue."),
                vec![],
            )
            .expect("seed publish");
        articles.push(id);
        if a % 16 == 15 {
            p.produce_block().expect("seed block");
        }
    }
    p.produce_block().expect("final seed block");
    let setup_height = p.store().head().header.height;

    // --- event loop: the load stream -------------------------------------
    // Writers draw events in proportion to their amplification, so bots
    // dominate traffic the way §VII's propagation model says they do.
    let zipf = ZipfSampler::new(articles.len(), profile.zipf_s);
    let mut writer_pool = Vec::new();
    for (i, client) in clients.iter().enumerate() {
        let weight = client.kind.amplification() as usize;
        if matches!(client.persona, Persona::Submitter | Persona::Ranker) {
            writer_pool.extend(std::iter::repeat_n(i, weight));
        }
    }
    for ev in 0..profile.write_events {
        let actor = writer_pool[rng.gen_range(0..writer_pool.len())];
        match clients[actor].persona {
            Persona::Submitter => {
                // Cite a popular seed article a third of the time: the
                // supply-chain graph grows toward the Zipf head.
                let parents = if rng.gen_bool(1.0 / 3.0) {
                    vec![(articles[zipf.sample(&mut rng)], PropagationOp::Cite)]
                } else {
                    vec![]
                };
                p.publish_news(
                    &keys[actor],
                    room,
                    "general",
                    &format!("Stream article at event {ev}."),
                    parents,
                )
                .expect("stream publish");
            }
            Persona::Ranker => {
                let article = &articles[zipf.sample(&mut rng)];
                let score = rng.gen_range(10..100u8);
                p.submit_rating(&keys[actor], article, score)
                    .expect("stream rating");
            }
            Persona::Reader => unreachable!("readers are not in the writer pool"),
        }
        if ev % 32 == 31 {
            p.produce_block().expect("stream block");
        }
    }
    p.produce_block().expect("final stream block");
    p.produce_block().expect("flush block");

    // --- extraction: committed ledger → setup prefix + request stream ----
    let by_addr: HashMap<Address, u64> = keys
        .iter()
        .zip(&clients)
        .map(|(k, c)| (k.address(), c.id))
        .collect();
    let store = p.store();
    let mut chain = store.canonical_chain();
    chain.reverse();
    let mut setup = Vec::new();
    let mut stream = Vec::new();
    for block in chain.iter().filter_map(|id| store.block(id)) {
        if block.header.height < 2 {
            continue; // bootstrap prefix every replica already holds
        }
        for tx in block.transactions {
            match by_addr.get(&tx.from) {
                Some(&client) if block.header.height > setup_height => {
                    stream.push(Request {
                        client,
                        kind: RequestKind::Write(Box::new(tx)),
                    });
                }
                // Setup traffic, plus any governor-signed stray in the
                // stream window: both are pre-applied, never rate-limited
                // (system transactions are not client load).
                _ => setup.push(tx),
            }
        }
    }

    // --- interleave reads -------------------------------------------------
    // Readers draw Zipf article targets; reads are spread evenly through
    // the write stream (per-client WRITE order is preserved — only reads
    // are inserted, never writes reordered).
    let reader_pool: Vec<usize> = clients
        .iter()
        .enumerate()
        .filter(|(_, c)| c.persona == Persona::Reader)
        .flat_map(|(i, c)| std::iter::repeat_n(i, c.kind.amplification() as usize))
        .collect();
    let mut requests = Vec::with_capacity(stream.len() + profile.read_events);
    let reads = if reader_pool.is_empty() {
        0
    } else {
        profile.read_events
    };
    let stride = if reads > 0 {
        (stream.len().max(1) as f64 / reads as f64).max(f64::MIN_POSITIVE)
    } else {
        f64::INFINITY
    };
    let mut next_read = stride;
    for (i, req) in stream.into_iter().enumerate() {
        requests.push(req);
        while reads > 0 && (i + 1) as f64 >= next_read {
            let reader = reader_pool[rng.gen_range(0..reader_pool.len())];
            requests.push(Request {
                client: clients[reader].id,
                kind: RequestKind::Read {
                    article: zipf.sample(&mut rng),
                },
            });
            next_read += stride;
        }
    }

    Workload {
        setup,
        requests,
        clients,
        articles: articles.len(),
    }
}

/// Schedules `workload`'s requests as an open-loop Poisson process at
/// `offered_tps` requests per second: exponential interarrival gaps,
/// cumulative logical timestamps. The schedule depends only on
/// `(workload.requests.len(), offered_tps, seed)` — not on how fast the
/// system under test drains it, which is what makes the loop open.
pub fn schedule(workload: &Workload, offered_tps: f64, seed: u64) -> Vec<Arrival> {
    assert!(offered_tps > 0.0, "offered rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x005e_ed0f_a221);
    let mut t = 0.0f64;
    workload
        .requests
        .iter()
        .enumerate()
        .map(|(index, _)| {
            // Inverse-CDF exponential draw; clamp the uniform away from 0
            // so ln() stays finite.
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t += -u.ln() / offered_tps;
            Arrival {
                at_ns: (t * 1e9) as u64,
                index,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_profile() -> LoadProfile {
        LoadProfile {
            submitters: 2,
            rankers: 4,
            readers: 2,
            seed_articles: 6,
            write_events: 40,
            read_events: 10,
            ..LoadProfile::default()
        }
    }

    #[test]
    fn workload_is_valid_platform_traffic() {
        let wl = build_workload(&PlatformConfig::default(), &small_profile());
        assert!(!wl.setup.is_empty(), "setup prefix");
        assert_eq!(wl.writes(), 40, "every event became a committed write");
        assert_eq!(wl.reads(), 10);
        assert_eq!(wl.articles, 6);
        for req in &wl.requests {
            if let RequestKind::Write(tx) = &req.kind {
                assert!(tx.verify().is_ok(), "stream txs carry valid signatures");
                assert!(req.client >= 1);
            }
        }
    }

    #[test]
    fn per_client_write_order_is_nonce_order() {
        let wl = build_workload(&PlatformConfig::default(), &small_profile());
        let mut last: HashMap<u64, u64> = HashMap::new();
        for req in &wl.requests {
            if let RequestKind::Write(tx) = &req.kind {
                if let Some(prev) = last.insert(req.client, tx.nonce) {
                    assert!(tx.nonce > prev, "client {} regressed", req.client);
                }
            }
        }
    }

    #[test]
    fn same_profile_same_workload() {
        let a = build_workload(&PlatformConfig::default(), &small_profile());
        let b = build_workload(&PlatformConfig::default(), &small_profile());
        assert_eq!(a.requests.len(), b.requests.len());
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.client, y.client);
            match (&x.kind, &y.kind) {
                (RequestKind::Write(tx), RequestKind::Write(ty)) => assert_eq!(tx.id(), ty.id()),
                (RequestKind::Read { article: ax }, RequestKind::Read { article: ay }) => {
                    assert_eq!(ax, ay)
                }
                _ => panic!("request kinds diverged"),
            }
        }
    }

    #[test]
    fn schedule_is_monotone_open_loop_and_deterministic() {
        let wl = build_workload(&PlatformConfig::default(), &small_profile());
        let a = schedule(&wl, 500.0, 7);
        let b = schedule(&wl, 500.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), wl.requests.len());
        for w in a.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns, "arrivals are ordered");
        }
        // Mean interarrival ≈ 2 ms at 500 tps; the whole run of 50
        // requests should land within a loose [50 ms, 500 ms] band.
        let span = a.last().unwrap().at_ns;
        assert!(span > 50_000_000 && span < 500_000_000, "span {span}");
    }

    #[test]
    fn bot_clients_emit_more_traffic() {
        let profile = LoadProfile {
            submitters: 2,
            rankers: 10,
            readers: 0,
            bot_fraction: 0.4,
            write_events: 400,
            read_events: 0,
            ..LoadProfile::default()
        };
        let wl = build_workload(&PlatformConfig::default(), &profile);
        let mut per_client: HashMap<u64, usize> = HashMap::new();
        for req in &wl.requests {
            *per_client.entry(req.client).or_default() += 1;
        }
        let avg = |kind: AccountKind| -> f64 {
            let picked: Vec<_> = wl
                .clients
                .iter()
                .filter(|c| c.kind == kind && c.persona == Persona::Ranker)
                .map(|c| per_client.get(&c.id).copied().unwrap_or(0))
                .collect();
            if picked.is_empty() {
                f64::NAN
            } else {
                picked.iter().sum::<usize>() as f64 / picked.len() as f64
            }
        };
        let (bots, humans) = (avg(AccountKind::Bot), avg(AccountKind::Human));
        if bots.is_finite() && humans.is_finite() && humans > 0.0 {
            assert!(
                bots > humans * 1.5,
                "bots ({bots:.1}) should out-emit humans ({humans:.1})"
            );
        }
    }
}
