//! The open-loop simulation harness: replay a scheduled workload
//! through the gateway into a validator node and measure the latency
//! distribution honestly.
//!
//! ## The model
//!
//! Arrivals, admission, ingest ticks and block ticks all run on a
//! **logical clock** (the arrival schedule's nanosecond timestamps), so
//! every decision — admit/shed verdicts, lane contents, mempool state,
//! block boundaries — is a pure function of `(workload, config, seed)`
//! and replays identically. Commit **service time** is the one thing
//! measured on the wall clock: each block tick times the real
//! `produce_block_from_mempool` call (signature checks, execution,
//! projections, storage) and feeds it into a single-server queue model:
//!
//! ```text
//! server_free = max(tick_time, server_free) + measured_service_time
//! commit_latency(tx) = server_free − arrival(tx)
//! ```
//!
//! Under light load `server_free` tracks the tick clock and latency is
//! just service time; past saturation the server falls behind, queueing
//! delay accumulates, and the p99/p999 knee appears — exactly the
//! behaviour a closed-loop benchmark can never show, because a closed
//! loop slows its arrivals down to match the server.
//!
//! ## Session aborts
//!
//! Ledger writes are nonce-chained per client. Once a client's write is
//! shed, its later writes can never commit (the chain has a hole), so
//! the harness aborts the session: subsequent writes from that client
//! are counted as `aborted`, not offered. This mirrors what a real
//! client SDK does when the platform sheds its request mid-session, and
//! it keeps the mempool free of permanently unselectable transactions.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use tn_core::platform::PlatformConfig;
use tn_crypto::Hash256;
use tn_monitor::MonitorConfig;
use tn_node::validator::{encode_payloads, ValidatorNode};
use tn_telemetry::{Histogram, TelemetrySink};
use tn_trace::TraceSink;

use crate::gateway::{AdmitVerdict, Gateway};
use crate::loadgen::{schedule, RequestKind, Workload};
use crate::GatewayError;

/// Parameters of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered arrival rate, requests per second.
    pub offered_tps: f64,
    /// Logical interval between gateway→mempool drain ticks.
    pub ingest_interval_ns: u64,
    /// Logical interval between block-production ticks.
    pub block_interval_ns: u64,
    /// Maximum transactions selected per block.
    pub block_max_txs: usize,
    /// Abort a client's remaining writes after one is shed (see module
    /// docs). Disable only for workloads without nonce chains.
    pub abort_shed_sessions: bool,
    /// Seed for the arrival schedule.
    pub seed: u64,
    /// Attach the live health plane to the validator: each committed
    /// block samples the registry, so the gateway's shed counters feed
    /// the burn-rate SLO. `None` (the default) runs unmonitored; the
    /// verdict stream and digest are identical either way.
    pub monitor: Option<MonitorConfig>,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            offered_tps: 500.0,
            ingest_interval_ns: 2_000_000, // 2 ms
            block_interval_ns: 20_000_000, // 20 ms
            block_max_txs: 512,
            abort_shed_sessions: true,
            seed: 21,
            monitor: None,
        }
    }
}

/// Measured outcome of one open-loop run.
#[derive(Debug, Clone, Default)]
pub struct OpenLoopReport {
    /// Offered arrival rate, requests per second.
    pub offered_tps: f64,
    /// Write requests that reached the gateway.
    pub writes_offered: u64,
    /// Read requests that reached the gateway.
    pub reads_offered: u64,
    /// Writes admitted into an ingress lane.
    pub admitted: u64,
    /// Writes shed by per-client rate limiting.
    pub shed_rate_limit: u64,
    /// Writes shed by a full ingress lane.
    pub shed_queue_full: u64,
    /// Writes dropped client-side because their session was aborted
    /// after an earlier shed.
    pub aborted: u64,
    /// Admitted writes the mempool rejected (visible rejections).
    pub mempool_rejected: u64,
    /// Transactions committed into blocks.
    pub committed: u64,
    /// Blocks produced.
    pub blocks: u64,
    /// Reads served within rate.
    pub reads_served: u64,
    /// Reads shed by rate limiting.
    pub reads_shed: u64,
    /// Ingest ticks that stopped early at the mempool watermark.
    pub backpressure_ticks: u64,
    /// Transactions left unselectable in the mempool at shutdown
    /// (should be 0 when session aborts are enabled).
    pub stranded: u64,
    /// Committed throughput over the run: committed / (last commit −
    /// first arrival), in transactions per second.
    pub committed_tps: f64,
    /// Median commit latency (arrival → modelled commit), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile commit latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile commit latency, milliseconds.
    pub p999_ms: f64,
    /// Mean commit latency, milliseconds.
    pub mean_ms: f64,
    /// Worst-case commit latency, milliseconds.
    pub max_ms: f64,
    /// Total wall-clock commit service time across all blocks, ms.
    pub service_ms: f64,
}

/// A finished run: the report, the exact verdict stream (for the
/// determinism tests) and the node (for digest comparison).
#[derive(Debug)]
pub struct OpenLoopRun {
    /// Aggregate measurements.
    pub report: OpenLoopReport,
    /// Per-write `(client, verdict)` in offer order — byte-for-byte
    /// reproducible for a given `(workload, config, seed)`.
    pub verdicts: Vec<(u64, AdmitVerdict)>,
    /// The validator node after the run; `execution_digest()` pins the
    /// replayed chain.
    pub node: ValidatorNode,
}

const NS_PER_MS: f64 = 1e6;

/// Runs `workload` open-loop against a fresh single validator built from
/// `config`, wiring the gateway's telemetry into the node's registry.
///
/// # Errors
///
/// [`GatewayError::Config`] for invalid gateway configuration;
/// [`GatewayError::Node`] when setup pre-application or block production
/// fails (generator-produced traffic should never trigger it).
pub fn run_open_loop(
    config: &PlatformConfig,
    workload: &Workload,
    olc: &OpenLoopConfig,
) -> Result<OpenLoopRun, GatewayError> {
    let node = ValidatorNode::new(0, config);
    let telemetry = node.telemetry_sink();
    run_open_loop_on(
        node,
        &config.gateway,
        telemetry,
        TraceSink::disabled(),
        workload,
        olc,
    )
}

/// [`run_open_loop`] with caller-supplied node and sinks — the hook the
/// tracing tests use to capture `gateway.admission → gateway.ingest →
/// tx.commit` span chains.
///
/// # Errors
///
/// As [`run_open_loop`].
pub fn run_open_loop_on(
    node: ValidatorNode,
    gw_config: &tn_core::platform::GatewayConfig,
    telemetry: TelemetrySink,
    trace: TraceSink,
    workload: &Workload,
    olc: &OpenLoopConfig,
) -> Result<OpenLoopRun, GatewayError> {
    run_open_loop_hooked(
        node,
        gw_config,
        telemetry,
        trace,
        workload,
        olc,
        &mut |_| {},
    )
}

/// [`run_open_loop_on`] with a per-block hook: after every produced
/// block, `hook` runs with mutable access to the node — it can inspect
/// the new head, drive an external monitor off the node's registry, and
/// inject governance transactions (e.g. quarantine verdicts) that enter
/// the mempool for the *next* block, exactly as a live oracle would.
/// The hook never runs on idle block ticks.
///
/// # Errors
///
/// As [`run_open_loop`].
pub fn run_open_loop_hooked(
    mut node: ValidatorNode,
    gw_config: &tn_core::platform::GatewayConfig,
    telemetry: TelemetrySink,
    trace: TraceSink,
    workload: &Workload,
    olc: &OpenLoopConfig,
    hook: &mut dyn FnMut(&mut ValidatorNode),
) -> Result<OpenLoopRun, GatewayError> {
    let mut gw = Gateway::new(gw_config)?;
    gw.set_telemetry(telemetry);
    gw.set_trace(trace);

    // Pre-apply the setup prefix (registrations, newsroom, catalogue) the
    // way a replica applies consensus-committed blocks: directly, in
    // chunks, never through admission — system traffic is not client load.
    for chunk in workload.setup.chunks(64) {
        node.apply_committed_batch(&encode_payloads(chunk))?;
    }
    // The health plane attaches after setup so the baseline window
    // absorbs system traffic and the first client window starts clean.
    if let Some(mc) = &olc.monitor {
        node.enable_monitor(mc);
    }

    let arrivals = schedule(workload, olc.offered_tps, olc.seed);
    let mut report = OpenLoopReport {
        offered_tps: olc.offered_tps,
        ..OpenLoopReport::default()
    };
    let mut verdicts = Vec::new();
    let mut arrival_of: HashMap<Hash256, u64> = HashMap::new();
    let mut aborted_sessions: HashSet<u64> = HashSet::new();
    // Commit latencies go through the shared power-of-two histogram so
    // the report's percentiles use the same estimator as bench reports
    // and tn-monitor latency rules (HistogramSnapshot::quantile).
    let latencies = Histogram::new();

    let mut ai = 0usize;
    let mut next_ingest = olc.ingest_interval_ns.max(1);
    let mut next_block = olc.block_interval_ns.max(1);
    // Single-server queue model: when the commit server next frees up,
    // in logical nanoseconds.
    let mut server_free_ns = 0u64;
    let mut first_arrival: Option<u64> = None;
    let mut last_finish = 0u64;
    let mut idle_block_ticks = 0u32;

    loop {
        let next_arrival = arrivals.get(ai).map(|a| a.at_ns);
        let t = match next_arrival {
            Some(a) => a.min(next_ingest).min(next_block),
            None => next_ingest.min(next_block),
        };

        if next_arrival == Some(t) {
            let arrival = arrivals[ai];
            ai += 1;
            let request = &workload.requests[arrival.index];
            match &request.kind {
                RequestKind::Read { .. } => {
                    report.reads_offered += 1;
                    if gw.offer_read(request.client, t) {
                        report.reads_served += 1;
                    } else {
                        report.reads_shed += 1;
                    }
                }
                RequestKind::Write(tx) => {
                    if olc.abort_shed_sessions && aborted_sessions.contains(&request.client) {
                        report.aborted += 1;
                        continue;
                    }
                    report.writes_offered += 1;
                    first_arrival.get_or_insert(t);
                    let id = tx.id();
                    let verdict = gw.offer(request.client, tx.as_ref().clone(), t);
                    verdicts.push((request.client, verdict));
                    match verdict {
                        AdmitVerdict::Admitted => {
                            report.admitted += 1;
                            arrival_of.insert(id, t);
                        }
                        AdmitVerdict::ShedRateLimit => {
                            report.shed_rate_limit += 1;
                            if olc.abort_shed_sessions {
                                aborted_sessions.insert(request.client);
                            }
                        }
                        AdmitVerdict::ShedQueueFull => {
                            report.shed_queue_full += 1;
                            if olc.abort_shed_sessions {
                                aborted_sessions.insert(request.client);
                            }
                        }
                    }
                }
            }
        } else if t == next_ingest {
            next_ingest += olc.ingest_interval_ns.max(1);
            let drained = gw.drain_into(&mut node);
            report.mempool_rejected += drained.rejected as u64;
            if drained.backpressured {
                report.backpressure_ticks += 1;
            }
        } else {
            next_block += olc.block_interval_ns.max(1);
            let started = Instant::now();
            let outcome = node.produce_block_from_mempool(olc.block_max_txs)?;
            let service_ns = started.elapsed().as_nanos() as u64;
            match outcome {
                Some(_) => {
                    idle_block_ticks = 0;
                    report.blocks += 1;
                    report.service_ms += service_ns as f64 / NS_PER_MS;
                    server_free_ns = server_free_ns.max(t) + service_ns;
                    last_finish = server_free_ns;
                    let head = node.pipeline().store().head().clone();
                    for tx in &head.transactions {
                        report.committed += 1;
                        if let Some(arrived) = arrival_of.remove(&tx.id()) {
                            latencies.observe(server_free_ns.saturating_sub(arrived));
                        }
                    }
                    hook(&mut node);
                }
                None => {
                    idle_block_ticks += 1;
                }
            }
            // Shutdown: all arrivals delivered, lanes empty, and either
            // the mempool is drained or it can make no further progress.
            // The second arm is a stall guard for runs without session
            // aborts, where a nonce hole can wedge the mempool with the
            // lanes still holding work behind the watermark.
            if ai == arrivals.len()
                && ((gw.queued() == 0 && idle_block_ticks >= 2) || idle_block_ticks >= 64)
            {
                report.stranded = node.mempool().len() as u64 + gw.queued() as u64;
                break;
            }
        }
    }

    let lat = latencies.snapshot();
    report.p50_ms = lat.quantile(0.50) as f64 / NS_PER_MS;
    report.p99_ms = lat.quantile(0.99) as f64 / NS_PER_MS;
    report.p999_ms = lat.quantile(0.999) as f64 / NS_PER_MS;
    report.max_ms = lat.max as f64 / NS_PER_MS;
    report.mean_ms = lat.mean() / NS_PER_MS;
    let span_ns = last_finish.saturating_sub(first_arrival.unwrap_or(0));
    report.committed_tps = if span_ns > 0 {
        report.committed as f64 * 1e9 / span_ns as f64
    } else {
        0.0
    };

    Ok(OpenLoopRun {
        report,
        verdicts,
        node,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{build_workload, LoadProfile};

    fn quick_profile() -> LoadProfile {
        LoadProfile {
            submitters: 2,
            rankers: 4,
            readers: 2,
            seed_articles: 6,
            write_events: 60,
            read_events: 20,
            ..LoadProfile::default()
        }
    }

    #[test]
    fn light_load_commits_everything_offered() {
        let config = PlatformConfig::default();
        let wl = build_workload(&config, &quick_profile());
        let run = run_open_loop(
            &config,
            &wl,
            &OpenLoopConfig {
                offered_tps: 200.0,
                ..OpenLoopConfig::default()
            },
        )
        .unwrap();
        let r = &run.report;
        assert_eq!(r.writes_offered, 60);
        assert_eq!(
            r.shed_rate_limit + r.shed_queue_full,
            0,
            "no shedding at 200 tps"
        );
        assert_eq!(r.committed, r.admitted - r.mempool_rejected);
        assert_eq!(r.stranded, 0);
        assert!(r.blocks > 0);
        assert!(r.p50_ms > 0.0 && r.p99_ms >= r.p50_ms && r.p999_ms >= r.p99_ms);
        assert!(r.committed_tps > 0.0);
        assert_eq!(r.reads_offered, 20);
        assert_eq!(r.reads_served + r.reads_shed, 20);
    }

    #[test]
    fn overload_sheds_at_the_door_not_in_the_queue() {
        // One client hammering far beyond its bucket: sheds must be
        // verdicts, and everything admitted must still commit.
        let mut config = PlatformConfig::default();
        config.gateway.rate_per_client = 50;
        config.gateway.burst_per_client = 5;
        let wl = build_workload(&config, &quick_profile());
        let run = run_open_loop(
            &config,
            &wl,
            &OpenLoopConfig {
                offered_tps: 5_000.0,
                ..OpenLoopConfig::default()
            },
        )
        .unwrap();
        let r = &run.report;
        assert!(r.shed_rate_limit > 0, "overload must shed: {r:?}");
        assert_eq!(
            r.committed + r.mempool_rejected,
            r.admitted,
            "every admitted write has a visible outcome"
        );
        assert_eq!(r.stranded, 0, "session aborts keep the mempool clean");
    }

    #[test]
    fn identical_runs_are_identical() {
        let config = PlatformConfig::default();
        let wl = build_workload(&config, &quick_profile());
        let olc = OpenLoopConfig {
            offered_tps: 1_000.0,
            ..OpenLoopConfig::default()
        };
        let a = run_open_loop(&config, &wl, &olc).unwrap();
        let b = run_open_loop(&config, &wl, &olc).unwrap();
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.node.execution_digest(), b.node.execution_digest());
        assert_eq!(a.report.committed, b.report.committed);
    }

    #[test]
    fn shed_burn_alert_fires_under_overload_and_not_under_light_load() {
        // Light load within the error budget: monitoring changes nothing
        // and no SLO fires.
        let config = PlatformConfig::default();
        let wl = build_workload(&config, &quick_profile());
        let light_olc = OpenLoopConfig {
            offered_tps: 200.0,
            ..OpenLoopConfig::default()
        };
        let plain = run_open_loop(&config, &wl, &light_olc).unwrap();
        let light = run_open_loop(
            &config,
            &wl,
            &OpenLoopConfig {
                monitor: Some(MonitorConfig::default()),
                ..light_olc
            },
        )
        .unwrap();
        assert_eq!(plain.verdicts, light.verdicts);
        assert_eq!(plain.node.execution_digest(), light.node.execution_digest());
        let monitor = light.node.monitor().expect("monitor enabled");
        assert!(
            !monitor
                .engine()
                .timeline()
                .iter()
                .any(|a| a.rule == tn_monitor::RULE_SHED_BURN),
            "no shed-burn alert within the error budget"
        );

        // A hammered gateway burns the shed budget: the burn-rate SLO
        // must fire on the node's own monitor.
        let mut tight = PlatformConfig::default();
        tight.gateway.rate_per_client = 50;
        tight.gateway.burst_per_client = 5;
        let wl = build_workload(&tight, &quick_profile());
        let run = run_open_loop(
            &tight,
            &wl,
            &OpenLoopConfig {
                offered_tps: 5_000.0,
                monitor: Some(MonitorConfig::default()),
                ..OpenLoopConfig::default()
            },
        )
        .unwrap();
        assert!(run.report.shed_rate_limit > 0, "overload must shed");
        let monitor = run.node.monitor().expect("monitor enabled");
        assert!(
            monitor
                .engine()
                .timeline()
                .iter()
                .any(|a| a.rule == tn_monitor::RULE_SHED_BURN),
            "shed-burn SLO must fire under overload: {:?}",
            monitor.engine().timeline()
        );
    }
}
