//! Bounded ingress lanes.
//!
//! Each lane is a fixed-capacity FIFO of admitted-but-not-yet-ingested
//! transactions. The bound is the backpressure mechanism: a full lane
//! refuses *new* work at the door (an explicit shed verdict) and never
//! evicts work it already accepted — the invariant the E21 backpressure
//! test pins down.

use std::collections::VecDeque;

use tn_chain::prelude::Transaction;

/// One admitted transaction waiting for mempool ingest.
#[derive(Debug, Clone)]
pub struct QueuedTx {
    /// The admitted transaction.
    pub tx: Transaction,
    /// The submitting client.
    pub client: u64,
    /// Logical arrival timestamp (nanoseconds) — carried through ingest
    /// for stage-latency attribution.
    pub arrival_ns: u64,
}

/// A bounded FIFO ingress lane.
#[derive(Debug)]
pub struct IngressLane {
    queue: VecDeque<QueuedTx>,
    capacity: usize,
}

impl IngressLane {
    /// Creates a lane holding at most `capacity` transactions.
    ///
    /// # Panics
    ///
    /// When `capacity == 0`; [`Gateway::new`](crate::Gateway::new)
    /// rejects that configuration with a typed error before any lane is
    /// built.
    pub fn new(capacity: usize) -> IngressLane {
        assert!(capacity > 0, "zero-capacity ingress lane");
        IngressLane {
            queue: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
        }
    }

    /// Accepts `entry` at the tail, or returns it when the lane is full
    /// (the caller sheds it — visibly — at the door).
    #[allow(clippy::result_large_err)] // channel-style API: a refused entry goes back whole
    pub fn push(&mut self, entry: QueuedTx) -> Result<(), QueuedTx> {
        if self.queue.len() >= self.capacity {
            return Err(entry);
        }
        self.queue.push_back(entry);
        Ok(())
    }

    /// Removes and returns the oldest entry.
    pub fn pop(&mut self) -> Option<QueuedTx> {
        self.queue.pop_front()
    }

    /// Queued entries.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_crypto::Keypair;

    fn entry(nonce: u64) -> QueuedTx {
        let kp = Keypair::from_seed(b"lane-test");
        QueuedTx {
            tx: tn_chain::prelude::Transaction::signed(
                &kp,
                nonce,
                1,
                tn_chain::prelude::Payload::Transfer {
                    to: kp.address(),
                    amount: 1,
                },
            ),
            client: 1,
            arrival_ns: nonce,
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut lane = IngressLane::new(8);
        for n in 0..5 {
            lane.push(entry(n)).unwrap();
        }
        let drained: Vec<u64> = std::iter::from_fn(|| lane.pop())
            .map(|e| e.tx.nonce)
            .collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_lane_returns_the_rejected_entry_without_evicting() {
        let mut lane = IngressLane::new(2);
        lane.push(entry(0)).unwrap();
        lane.push(entry(1)).unwrap();
        let back = lane.push(entry(2)).unwrap_err();
        assert_eq!(back.tx.nonce, 2, "the *new* entry is refused");
        assert_eq!(lane.len(), 2);
        assert_eq!(lane.pop().unwrap().tx.nonce, 0, "old work untouched");
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_is_a_construction_bug() {
        let _ = IngressLane::new(0);
    }
}
