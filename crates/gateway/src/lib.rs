//! # tn-gateway — the platform's front door
//!
//! Every experiment before E21 was *closed-loop*: generate a batch,
//! order it, commit it, repeat — the next request waits for the last
//! one, so queueing never builds and the measured "throughput" says
//! nothing about the saturation point a platform serving millions of
//! readers and submitters will actually hit. This crate adds the two
//! halves needed to measure that honestly:
//!
//! - **An admission layer** ([`Gateway`]): per-client token-bucket rate
//!   limiting, client-sharded *bounded* ingress lanes with explicit
//!   [`AdmitVerdict`]s (a request is admitted or shed at the door —
//!   never silently dropped later), and watermark-gated batched ingest
//!   into a [`ValidatorNode`](tn_node::validator::ValidatorNode)'s
//!   mempool. Once admitted, a transaction is *never* lost: bounded
//!   lanes push back by refusing new work, not by dropping old work.
//! - **An open-loop load harness** ([`loadgen`], [`openloop`]): a
//!   Zipf-popularity workload of submitter/ranker/reader personas (bot
//!   and honest, per `tn-propagation`'s account model) replayed at a
//!   configured arrival rate that does **not** slow down when the
//!   pipeline does — the defining property of an open-loop generator,
//!   and the reason the latency knee becomes visible.
//!
//! Admission decisions are a pure function of the gateway configuration
//! and the arrival schedule (client ids + logical timestamps): replaying
//! the same schedule yields the identical admit/shed verdict sequence
//! and byte-identical chain digests at any ingest batch size. The
//! open-loop harness exploits this to keep its sweeps reproducible while
//! still measuring real wall-clock commit service times.
//!
//! Configuration lives in
//! [`GatewayConfig`](tn_core::platform::GatewayConfig) (part of
//! `PlatformConfig`, so one config describes a full deployment) and is
//! validated here at construction: zero-capacity queues and zero-size
//! ingest batches are typed [`GatewayError`]s instead of silent stalls,
//! and `workers == 0` clamps to one lane, mirroring `tn-par`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::error::Error;
use std::fmt;

pub mod campaign;
pub mod gateway;
pub mod limiter;
pub mod loadgen;
pub mod openloop;
pub mod queue;

pub use campaign::{
    build_campaign_workload, campaign_policy, participant_id, run_campaign, AttackKind,
    CampaignOutcome, CampaignProfile, CampaignWorkload, RULE_PARTICIPANT_QUARANTINE,
};
pub use gateway::{AdmitVerdict, DrainReport, Gateway, GatewayStats};
pub use limiter::RateLimiter;
pub use loadgen::{
    build_workload, schedule, Arrival, ClientProfile, LoadProfile, Persona, Request, RequestKind,
    Workload,
};
pub use openloop::{
    run_open_loop, run_open_loop_hooked, run_open_loop_on, OpenLoopConfig, OpenLoopReport,
    OpenLoopRun,
};
pub use queue::IngressLane;

/// Gateway-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// The gateway configuration was rejected at construction (e.g. a
    /// zero-capacity ingress queue, which could never admit work and
    /// would shed every request, or a zero-size ingest batch, which
    /// would never drain an admitted transaction).
    Config(String),
    /// A node-level failure while committing gateway-ingested work.
    Node(String),
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::Config(e) => write!(f, "invalid gateway configuration: {e}"),
            GatewayError::Node(e) => write!(f, "node error behind the gateway: {e}"),
        }
    }
}

impl Error for GatewayError {}

impl From<tn_node::validator::NodeError> for GatewayError {
    fn from(e: tn_node::validator::NodeError) -> Self {
        GatewayError::Node(e.to_string())
    }
}
