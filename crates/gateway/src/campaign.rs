//! End-to-end misinformation-campaign harness.
//!
//! The open-loop harness measures the platform under *load*; this module
//! measures it under *attack*. A scripted adversarial population — a
//! coordinated bot ring, reputation-farming turncoat sybils, or bribed
//! individual rankers (see [`tn_crowdrank::adversary::CampaignRole`]) —
//! amplifies one fake article and smears one factual article with real
//! signed transactions submitted through the gateway's admission path,
//! interleaved with honest ranker traffic.
//!
//! Detection runs out-of-band exactly like a production health plane: a
//! per-block hook feeds observed votes to a
//! [`tn_crowdrank::defense::CoordinationDetector`], emits
//! `crowdrank.votes.{total,coordinated}` counters, and samples an
//! **external** [`ReplicaMonitor`] whose built-in
//! [`tn_monitor::RULE_CAMPAIGN_BURN`] burn-rate SLO
//! fires when coordinated votes burn the campaign budget. Enforcement is
//! a separate switch ([`CampaignProfile::defense`]): when on, the
//! governor reacts to detector verdicts *on-chain* — quarantine
//! transactions zero the ring's vote weight, and periodic fact-check
//! outcomes decay reputation and slash bonds — so defense efficacy shows
//! up in the committed ledger, not in a side channel.
//!
//! Everything is deterministic: the same profile and config yield
//! byte-identical execution digests across independent replicas, which
//! is what lets `exp24_campaign_matrix` machine-check damage bounds.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tn_chain::prelude::*;
use tn_contracts::builtin::DefensePolicy;
use tn_core::platform::{Platform, PlatformConfig};
use tn_core::roles::Role;
use tn_crowdrank::adversary::{CampaignRole, CampaignTarget};
use tn_crowdrank::{CoordinationDetector, DefenseConfig, ObservedVote};
use tn_crypto::{Address, Hash256, Keypair};
use tn_monitor::{
    prometheus_text, MonitorConfig, ParticipantLedger, ParticipantPolicy, ParticipantVerdict,
    ReplicaMonitor, Transition, RULE_CAMPAIGN_BURN,
};
use tn_node::validator::ValidatorNode;
use tn_propagation::cascade::{assign_accounts, independent_cascade_with_receptivity};
use tn_propagation::network::barabasi_albert;
use tn_propagation::CascadeConfig;
use tn_trace::TraceSink;

use crate::loadgen::{Request, RequestKind, Workload};
use crate::openloop::{run_open_loop_hooked, OpenLoopConfig, OpenLoopReport};
use crate::GatewayError;

/// Rule name recorded on the monitor timeline when the governor
/// quarantines a participant (an enforcement fact, not a replica fault).
pub const RULE_PARTICIPANT_QUARANTINE: &str = "participant-quarantine";

/// Which adversarial population attacks the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// No adversaries: every ranker is honest (the false-positive
    /// control cell).
    Clean,
    /// A bot ring scripting identical amplify/smear scores every round.
    BotRing,
    /// Sybils that farm reputation with honest votes, then flip to the
    /// ring script mid-campaign.
    TurncoatSybils,
    /// Independently bribed rankers: each boosts only the fake item with
    /// its own (distinct) score, deliberately evading ring detection.
    BribedRankers,
}

impl AttackKind {
    /// Short lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AttackKind::Clean => "clean",
            AttackKind::BotRing => "bot-ring",
            AttackKind::TurncoatSybils => "turncoat-sybils",
            AttackKind::BribedRankers => "bribed-rankers",
        }
    }

    /// Every attack kind, control cell first.
    pub fn all() -> [AttackKind; 4] {
        [
            AttackKind::Clean,
            AttackKind::BotRing,
            AttackKind::TurncoatSybils,
            AttackKind::BribedRankers,
        ]
    }
}

/// One cell of the campaign matrix: an attack population against a
/// defense switch.
#[derive(Debug, Clone)]
pub struct CampaignProfile {
    /// The adversarial population.
    pub attack: AttackKind,
    /// Enforcement on: the defense policy is installed on-chain and the
    /// governor acts on detector verdicts. Detection itself always runs
    /// (turning the fire alarm off is not a defense ablation).
    pub defense: bool,
    /// Honest ranker clients.
    pub honest: usize,
    /// Adversarial ranker clients (ignored for [`AttackKind::Clean`]).
    pub adversaries: usize,
    /// Voting rounds in the scripted campaign.
    pub rounds: usize,
    /// Uncontested background articles honest noise spreads over.
    pub background_articles: usize,
    /// Round at which turncoat sybils flip to the ring script.
    pub flip_round: usize,
    /// Master seed for honest vote noise.
    pub seed: u64,
}

impl Default for CampaignProfile {
    fn default() -> Self {
        CampaignProfile {
            attack: AttackKind::BotRing,
            defense: true,
            honest: 8,
            adversaries: 6,
            rounds: 10,
            background_articles: 4,
            flip_round: 5,
            seed: 24,
        }
    }
}

/// The defense policy a defended cell installs on the ranking contract.
pub fn campaign_policy() -> DefensePolicy {
    DefensePolicy {
        min_bond: 50,
        decay_bps: 9_000,
        slash_bps: 2_500,
    }
}

/// A materialised campaign: the gateway workload plus everything the
/// verdict layer needs to judge the run.
#[derive(Debug, Clone)]
pub struct CampaignWorkload {
    /// Setup prefix + signed vote stream, in [`Workload`] form.
    pub workload: Workload,
    /// The fake article the campaign amplifies.
    pub fake_item: Hash256,
    /// The factual article the campaign smears.
    pub factual_item: Hash256,
    /// Adversary addresses (ground truth for false-positive checks).
    pub adversary_addrs: Vec<Address>,
    /// Honest ranker addresses.
    pub honest_addrs: Vec<Address>,
}

/// Measured outcome of one campaign cell.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The open-loop load report for the run.
    pub report: OpenLoopReport,
    /// Execution digest after the run (replica-determinism check).
    pub digest: Hash256,
    /// Weighted crowd mean of the fake article, 1e-4 units.
    pub fake_mean_e4: u64,
    /// Weighted crowd mean of the factual article, 1e-4 units.
    pub factual_mean_e4: u64,
    /// First block height at which [`RULE_CAMPAIGN_BURN`] fired.
    pub alert_height: Option<u64>,
    /// Participants the on-chain contract holds quarantined at the end.
    pub quarantined_on_chain: Vec<Address>,
    /// Participants the out-of-band detector convicted (regardless of
    /// whether enforcement acted on the verdicts).
    pub detector_verdicts: Vec<Address>,
    /// Coordinated votes observed across the run.
    pub coordinated_votes: u64,
    /// Total votes observed across the run.
    pub total_votes: u64,
    /// Monitoring-plane participant verdict log `(height, id, verdict)`.
    pub verdict_log: Vec<(u64, String, ParticipantVerdict)>,
    /// Fake-article reach when the final crowd ranking drives platform
    /// suppression on a synthetic social graph.
    pub fake_reach: usize,
    /// Factual-article reach on the same graph.
    pub factual_reach: usize,
    /// Prometheus exposition of the external monitor after the run.
    pub prometheus: String,
}

/// Opaque monitoring-plane id for an address (hex prefix of its hash);
/// `tn-monitor` must stay address-agnostic, so verdict ledgers key on
/// this string.
pub fn participant_id(addr: &Address) -> String {
    addr.as_hash().to_hex()[..16].to_string()
}

/// Builds the campaign workload by running the scripted session —
/// newsroom setup, article publication, defense bootstrap (policy, stake
/// grants, bonds) when defended, then `rounds` of honest + adversarial
/// voting — on a local platform, and extracting the committed ledger
/// into a gateway request stream, exactly like
/// [`build_workload`](crate::loadgen::build_workload).
///
/// The governor grants stake and accepts bonds from *every* verified
/// ranker, adversaries included: the platform cannot distinguish a bot
/// from a human a priori, so damage bounding must come from detection,
/// quarantine and slashing — not from refusing to admit attackers.
///
/// # Panics
///
/// On internally inconsistent platform operations (generator bugs, not
/// runtime conditions).
pub fn build_campaign_workload(
    config: &PlatformConfig,
    profile: &CampaignProfile,
) -> CampaignWorkload {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mut p = Platform::new(config.clone());

    let adversaries = match profile.attack {
        AttackKind::Clean => 0,
        _ => profile.adversaries,
    };
    let role_of = |i: usize| -> CampaignRole {
        match profile.attack {
            AttackKind::Clean => CampaignRole::HonestRanker,
            AttackKind::BotRing => CampaignRole::RingBot { script_score: 97 },
            AttackKind::TurncoatSybils => CampaignRole::TurncoatSybil {
                flip_round: profile.flip_round,
                script_score: 97,
            },
            AttackKind::BribedRankers => {
                let _ = i;
                CampaignRole::BribedRanker
            }
        }
    };

    // --- population -------------------------------------------------------
    let journo = Keypair::from_seed(b"e24-journalist");
    let publisher = Keypair::from_seed(b"e24-publisher");
    let honest_keys: Vec<Keypair> = (0..profile.honest)
        .map(|i| Keypair::from_seed(format!("e24-honest-{i}").as_bytes()))
        .collect();
    let adv_keys: Vec<Keypair> = (0..adversaries)
        .map(|i| Keypair::from_seed(format!("e24-adv-{i}").as_bytes()))
        .collect();

    p.register_identity(&publisher, "Campaign Press", &[Role::Publisher])
        .expect("register publisher");
    p.register_identity(
        &journo,
        "Journalist",
        &[Role::ContentCreator, Role::Consumer],
    )
    .expect("register journalist");
    for (i, k) in honest_keys.iter().enumerate() {
        p.register_identity(k, &format!("Honest {i}"), &[Role::Consumer])
            .expect("register honest ranker");
    }
    for (i, k) in adv_keys.iter().enumerate() {
        p.register_identity(k, &format!("Ranker {i}"), &[Role::Consumer])
            .expect("register adversary");
    }
    p.produce_block().expect("identity block");

    p.create_publisher_platform(&publisher, "Campaign Press")
        .expect("create platform");
    p.produce_block().expect("platform block");
    let pid = p
        .newsrooms()
        .find_platform("Campaign Press")
        .expect("platform id");
    p.create_news_room(&publisher, pid, "politics")
        .expect("create room");
    p.produce_block().expect("room block");
    let room = p.newsrooms().rooms().next().expect("room").0;
    p.authorize_journalist(&publisher, room, &journo.address())
        .expect("authorize");
    p.produce_block().expect("authorize block");

    // --- articles ---------------------------------------------------------
    let fake_item = p
        .publish_news(
            &journo,
            room,
            "politics",
            "BREAKING: fabricated scandal the campaign amplifies.",
            vec![],
        )
        .expect("publish fake");
    let factual_item = p
        .publish_news(
            &journo,
            room,
            "politics",
            "Verified report the campaign wants buried.",
            vec![],
        )
        .expect("publish factual");
    let mut background = Vec::new();
    for b in 0..profile.background_articles.max(1) {
        background.push(
            p.publish_news(
                &journo,
                room,
                "politics",
                &format!("Background article {b}."),
                vec![],
            )
            .expect("publish background"),
        );
    }
    p.produce_block().expect("article block");

    // --- defense bootstrap (setup-side: policy, grants, bonds) ------------
    if profile.defense {
        p.set_ranking_policy(&campaign_policy()).expect("policy");
        for k in honest_keys.iter().chain(&adv_keys) {
            p.grant_ranking_stake(&k.address(), 200).expect("grant");
        }
        p.produce_block().expect("policy block");
        for k in honest_keys.iter().chain(&adv_keys) {
            p.post_ranking_bond(k, 100).expect("bond");
        }
        p.produce_block().expect("bond block");
    }
    let setup_height = p.store().head().header.height;

    // --- campaign rounds --------------------------------------------------
    for round in 0..profile.rounds {
        for k in &honest_keys {
            let role = CampaignRole::HonestRanker;
            if rng.gen_bool(0.6) {
                let s = role.score(CampaignTarget::FakeItem, round, &mut rng);
                p.submit_rating(k, &fake_item, s).expect("honest fake vote");
            }
            if rng.gen_bool(0.6) {
                let s = role.score(CampaignTarget::FactualItem, round, &mut rng);
                p.submit_rating(k, &factual_item, s)
                    .expect("honest factual vote");
            }
            let bg = &background[rng.gen_range(0..background.len())];
            let s = role.score(CampaignTarget::Background, round, &mut rng);
            p.submit_rating(k, bg, s).expect("honest background vote");
        }
        for (i, k) in adv_keys.iter().enumerate() {
            let role = role_of(i);
            match role {
                CampaignRole::BribedRanker => {
                    // Boost only the fake item; behave honestly elsewhere
                    // so the vote vector never matches another briber's.
                    let s = role.score(CampaignTarget::FakeItem, round, &mut rng);
                    p.submit_rating(k, &fake_item, s).expect("bribed vote");
                    let bg = &background[rng.gen_range(0..background.len())];
                    let s = role.score(CampaignTarget::Background, round, &mut rng);
                    p.submit_rating(k, bg, s).expect("bribed background vote");
                }
                _ => {
                    let s = role.score(CampaignTarget::FakeItem, round, &mut rng);
                    p.submit_rating(k, &fake_item, s).expect("adv fake vote");
                    let s = role.score(CampaignTarget::FactualItem, round, &mut rng);
                    p.submit_rating(k, &factual_item, s)
                        .expect("adv factual vote");
                }
            }
        }
        p.produce_block().expect("round block");
    }
    p.produce_block().expect("flush block");

    // --- extraction: committed ledger → setup + stream --------------------
    let mut by_addr: HashMap<Address, u64> = HashMap::new();
    for (i, k) in honest_keys.iter().chain(&adv_keys).enumerate() {
        by_addr.insert(k.address(), i as u64 + 1);
    }
    let store = p.store();
    let mut chain = store.canonical_chain();
    chain.reverse();
    let mut setup = Vec::new();
    let mut requests = Vec::new();
    for block in chain.iter().filter_map(|id| store.block(id)) {
        if block.header.height < 2 {
            continue; // bootstrap prefix every replica already holds
        }
        for tx in block.transactions {
            match by_addr.get(&tx.from) {
                Some(&client) if block.header.height > setup_height => {
                    requests.push(Request {
                        client,
                        kind: RequestKind::Write(Box::new(tx)),
                    });
                }
                _ => setup.push(tx),
            }
        }
    }

    CampaignWorkload {
        workload: Workload {
            setup,
            requests,
            clients: Vec::new(),
            articles: 2 + background.len(),
        },
        fake_item,
        factual_item,
        adversary_addrs: adv_keys.iter().map(|k| k.address()).collect(),
        honest_addrs: honest_keys.iter().map(|k| k.address()).collect(),
    }
}

/// Decodes the ranking-contract vote submissions in `block` as
/// [`ObservedVote`]s (the detector's input: who scored what).
fn votes_in(block: &Block, ranking: &Address) -> Vec<ObservedVote> {
    let mut votes = Vec::new();
    for tx in &block.transactions {
        if let Payload::ContractCall {
            contract, input, ..
        } = &tx.payload
        {
            if contract == ranking && input.len() == 34 && input[0] == 0 {
                let mut item = [0u8; 32];
                item.copy_from_slice(&input[1..33]);
                votes.push((tx.from, Hash256::from_bytes(item), input[33]));
            }
        }
    }
    votes
}

/// Replays a campaign workload through the gateway into a fresh
/// validator, with the live defense plane attached out-of-band:
///
/// 1. every produced block, observed votes feed the
///    [`CoordinationDetector`] and the `crowdrank.votes.*` counters;
/// 2. the **external** [`ReplicaMonitor`] samples the node's registry on
///    the same block tick, so [`RULE_CAMPAIGN_BURN`] fires the moment
///    the coordinated-vote budget burns — deterministically, on the same
///    height, on every replica;
/// 3. with [`CampaignProfile::defense`] on, fresh detector verdicts
///    become governor-signed quarantine transactions injected into the
///    mempool for the next block, and every other block the governor
///    records fact-check outcomes (fake → not factual, factual →
///    factual), driving reputation decay and bond slashing.
///
/// # Errors
///
/// As [`run_open_loop`](crate::openloop::run_open_loop).
pub fn run_campaign(
    config: &PlatformConfig,
    campaign: &CampaignWorkload,
    profile: &CampaignProfile,
    olc: &OpenLoopConfig,
) -> Result<CampaignOutcome, GatewayError> {
    let node = ValidatorNode::new(0, config);
    let telemetry = node.telemetry_sink();
    let ranking = node.pipeline().addrs().ranking;
    let governor = Keypair::from_seed(b"tn-platform-governor");
    let gov_addr = governor.address();

    // The health plane runs *external* to the node (olc.monitor stays
    // None): commit ticks must not double-sample the registry, and the
    // campaign counters have to land before the sample for same-height
    // detection.
    let mut monitor = ReplicaMonitor::new(0, &MonitorConfig::default());
    let mut detector = CoordinationDetector::new(DefenseConfig::default());
    let mut ledger = ParticipantLedger::new(ParticipantPolicy::default());
    let mut verdict_log: Vec<(u64, String, ParticipantVerdict)> = Vec::new();
    let mut alert_height: Option<u64> = None;
    let mut coordinated_votes = 0u64;
    let mut total_votes = 0u64;
    let mut enforced: Vec<Address> = Vec::new();
    let mut gov_nonce: Option<u64> = None;
    let mut blocks_seen = 0u64;
    let defense = profile.defense;

    let mut hook = |node: &mut ValidatorNode| {
        let head = node.pipeline().store().head().clone();
        let height = head.header.height;
        blocks_seen += 1;

        // 1. Observe this block's votes.
        let votes = votes_in(&head, &ranking);
        let report = detector.observe(height, &votes);
        total_votes += report.total_votes;
        coordinated_votes += report.coordinated_votes;
        let sink = node.telemetry_sink();
        sink.add("crowdrank.votes.total", report.total_votes);
        sink.add("crowdrank.votes.coordinated", report.coordinated_votes);

        // 2. Sample the external monitor on the same height.
        let alerts = monitor.sample(height, node.metrics_snapshot());
        if alert_height.is_none()
            && alerts
                .iter()
                .any(|a| a.rule == RULE_CAMPAIGN_BURN && a.transition == Transition::Firing)
        {
            alert_height = Some(height);
        }
        let implicated: Vec<String> = report.rings.iter().flatten().map(participant_id).collect();
        for (id, verdict) in ledger.observe(height, &implicated) {
            verdict_log.push((height, id, verdict));
        }

        // 3. Enforce on-chain when defended.
        if defense {
            let next_nonce = {
                let committed = node.pipeline().store().head_state().nonce(&gov_addr);
                gov_nonce.map_or(committed, |n| n.max(committed))
            };
            let mut nonce = next_nonce;
            let mut submit = |payload: Payload, nonce: &mut u64| {
                let tx = Transaction::signed(&governor, *nonce, 1, payload);
                if node.submit(tx).is_ok() {
                    *nonce += 1;
                }
            };
            for who in &report.quarantine {
                if !enforced.contains(who) {
                    enforced.push(*who);
                    monitor.record_participant_fact(height, RULE_PARTICIPANT_QUARANTINE, 1.0);
                    submit(
                        Payload::ContractCall {
                            contract: ranking,
                            input: tn_contracts::builtin::ranking_quarantine(who),
                            gas_limit: 10_000,
                        },
                        &mut nonce,
                    );
                }
            }
            // Governor fact-check oracle cadence: every other block.
            if blocks_seen.is_multiple_of(2) {
                for (item, factual) in [(campaign.fake_item, false), (campaign.factual_item, true)]
                {
                    submit(
                        Payload::ContractCall {
                            contract: ranking,
                            input: tn_contracts::builtin::ranking_record_outcome(&item, factual),
                            gas_limit: 50_000,
                        },
                        &mut nonce,
                    );
                }
            }
            gov_nonce = Some(nonce);
        }
    };

    let run = run_open_loop_hooked(
        node,
        &config.gateway,
        telemetry,
        TraceSink::disabled(),
        &campaign.workload,
        olc,
        &mut hook,
    )?;

    let contract = run
        .node
        .pipeline()
        .registry()
        .builtin(&ranking)
        .and_then(|b| {
            b.as_any()
                .downcast_ref::<tn_contracts::builtin::RankingContract>()
        })
        .expect("ranking builtin installed");
    let (_, fake_mean_e4) = contract.ranking(&campaign.fake_item);
    let (_, factual_mean_e4) = contract.ranking(&campaign.factual_item);
    let quarantined_on_chain: Vec<Address> = campaign
        .adversary_addrs
        .iter()
        .chain(&campaign.honest_addrs)
        .filter(|a| contract.is_quarantined(a))
        .copied()
        .collect();

    let (fake_reach, factual_reach) = project_reach(
        fake_mean_e4,
        factual_mean_e4,
        &quarantined_on_chain,
        campaign.adversary_addrs.len(),
        profile.seed,
    );

    Ok(CampaignOutcome {
        report: run.report,
        digest: run.node.execution_digest(),
        fake_mean_e4,
        factual_mean_e4,
        alert_height,
        quarantined_on_chain,
        detector_verdicts: detector.quarantined(),
        coordinated_votes,
        total_votes,
        verdict_log,
        fake_reach,
        factual_reach,
        prometheus: prometheus_text(&monitor),
    })
}

/// Projects the committed crowd ranking onto social-propagation reach:
/// the platform suppresses a story's reshare probability in proportion
/// to how low its crowd score is, and quarantined amplifier accounts are
/// blocked from resharing. Deterministic in `(inputs, seed)`.
fn project_reach(
    fake_mean_e4: u64,
    factual_mean_e4: u64,
    quarantined: &[Address],
    adversaries: usize,
    seed: u64,
) -> (usize, usize) {
    let n = 2_000usize;
    let graph = barabasi_albert(n, 3, seed);
    let accounts = assign_accounts(n, 0.10, 0.05, seed);
    let seeds: Vec<usize> = (0..4).collect();
    // A story with crowd score s keeps s/100 of its reshare probability
    // (rank suppression); floor at 0.05 so even a buried story trickles.
    let suppress = |mean_e4: u64| (mean_e4 as f64 / 1_000_000.0).max(0.05);
    // Quarantined amplifiers: block the same fraction of bot nodes as
    // the fraction of the adversary population under quarantine.
    let mut blocked = vec![false; n];
    if adversaries > 0 && !quarantined.is_empty() {
        let frac = quarantined.len().min(adversaries) as f64 / adversaries as f64;
        let mut bot_nodes: Vec<usize> = accounts
            .iter()
            .enumerate()
            .filter(|(_, k)| !matches!(k, tn_propagation::AccountKind::Human))
            .map(|(i, _)| i)
            .collect();
        let cut = ((bot_nodes.len() as f64) * frac).round() as usize;
        bot_nodes.truncate(cut);
        for i in bot_nodes {
            blocked[i] = true;
        }
    }
    let receptivity: Vec<f64> = vec![1.0; n];
    let config = CascadeConfig {
        share_multiplier: suppress(fake_mean_e4),
        seed,
        ..CascadeConfig::default()
    };
    // The fake story runs flagged (suppressed by its crowd score) with
    // quarantined amplifiers blocked; the factual story runs with its
    // own crowd-score multiplier and no blocks.
    let fake = independent_cascade_with_receptivity(
        &graph,
        &accounts,
        &seeds,
        &blocked,
        &receptivity,
        &CascadeConfig {
            base_prob: CascadeConfig::default().base_prob * suppress(fake_mean_e4),
            ..config.clone()
        },
    )
    .expect("mask lengths match");
    let factual = independent_cascade_with_receptivity(
        &graph,
        &accounts,
        &seeds,
        &[],
        &receptivity,
        &CascadeConfig {
            base_prob: CascadeConfig::default().base_prob * suppress(factual_mean_e4),
            ..config
        },
    )
    .expect("mask lengths match");
    (fake.total_reach, factual.total_reach)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_profile(attack: AttackKind, defense: bool) -> CampaignProfile {
        CampaignProfile {
            attack,
            defense,
            honest: 5,
            adversaries: 4,
            rounds: 6,
            flip_round: 3,
            ..CampaignProfile::default()
        }
    }

    fn quick_olc() -> OpenLoopConfig {
        OpenLoopConfig {
            offered_tps: 2_000.0,
            ..OpenLoopConfig::default()
        }
    }

    #[test]
    fn campaign_workload_is_valid_signed_traffic() {
        let config = PlatformConfig::default();
        let cw = build_campaign_workload(&config, &quick_profile(AttackKind::BotRing, true));
        assert!(!cw.workload.setup.is_empty());
        assert!(cw.workload.writes() > 0);
        for req in &cw.workload.requests {
            if let RequestKind::Write(tx) = &req.kind {
                assert!(tx.verify().is_ok());
                assert!(
                    tx.from != Keypair::from_seed(b"tn-platform-governor").address(),
                    "governor traffic must not enter the client stream"
                );
            }
        }
    }

    #[test]
    fn defended_ring_is_detected_quarantined_and_bounded() {
        let config = PlatformConfig::default();
        let profile = quick_profile(AttackKind::BotRing, true);
        let cw = build_campaign_workload(&config, &profile);
        let out = run_campaign(&config, &cw, &profile, &quick_olc()).unwrap();
        assert!(out.alert_height.is_some(), "campaign alert must fire");
        assert!(
            !out.quarantined_on_chain.is_empty(),
            "ring must be quarantined on-chain"
        );
        for q in &out.quarantined_on_chain {
            assert!(
                cw.adversary_addrs.contains(q),
                "no honest ranker may be quarantined"
            );
        }
        // With the ring's weight zeroed, the fake article's crowd score
        // collapses toward the honest consensus (low).
        assert!(
            out.fake_mean_e4 < 50 * 10_000,
            "fake score must be bounded: {}",
            out.fake_mean_e4
        );
        assert!(out.factual_mean_e4 > 50 * 10_000);
        assert!(out.fake_reach < out.factual_reach);
    }

    #[test]
    fn undefended_ring_is_detected_but_not_bounded() {
        let config = PlatformConfig::default();
        let profile = quick_profile(AttackKind::BotRing, false);
        let cw = build_campaign_workload(&config, &profile);
        let out = run_campaign(&config, &cw, &profile, &quick_olc()).unwrap();
        assert!(
            out.alert_height.is_some(),
            "detection stays on without enforcement"
        );
        assert!(out.quarantined_on_chain.is_empty(), "nothing enforced");
        assert!(
            out.fake_mean_e4 > 50 * 10_000,
            "undefended fake score inflates: {}",
            out.fake_mean_e4
        );
    }

    #[test]
    fn clean_cell_raises_no_alert_and_no_verdicts() {
        let config = PlatformConfig::default();
        let profile = quick_profile(AttackKind::Clean, true);
        let cw = build_campaign_workload(&config, &profile);
        let out = run_campaign(&config, &cw, &profile, &quick_olc()).unwrap();
        assert_eq!(out.alert_height, None, "no false-positive campaign alert");
        assert!(out.detector_verdicts.is_empty());
        assert!(out.quarantined_on_chain.is_empty());
        assert_eq!(out.coordinated_votes, 0);
        assert!(out.total_votes > 0);
    }

    #[test]
    fn campaign_runs_are_replica_deterministic() {
        let config = PlatformConfig::default();
        let profile = quick_profile(AttackKind::BotRing, true);
        let cw = build_campaign_workload(&config, &profile);
        let a = run_campaign(&config, &cw, &profile, &quick_olc()).unwrap();
        let b = run_campaign(&config, &cw, &profile, &quick_olc()).unwrap();
        assert_eq!(a.digest, b.digest, "replicas must agree byte-for-byte");
        assert_eq!(a.alert_height, b.alert_height, "alert on the same height");
        assert_eq!(a.quarantined_on_chain, b.quarantined_on_chain);
        assert_eq!(a.fake_mean_e4, b.fake_mean_e4);
    }
}
