//! Factualness ranking from provenance traces, and rank-quality metrics.
//!
//! The paper: "The trace distance of graph from its root to the current
//! reported news and the degree of the modifications … can then be used to
//! rank the factualness of the news" (§VI). The trace score (Π of per-hop
//! retention) is combined with an optional AI content score into a 0–100
//! ranking; Spearman correlation and precision@k quantify rank quality in
//! the E3 experiment.

use tn_crypto::Hash256;

use crate::graph::{SupplyChainGraph, TraceResult};

/// Weighting between provenance and AI content signals.
#[derive(Debug, Clone, Copy)]
pub struct RankWeights {
    /// Weight of the trace-back score.
    pub trace: f64,
    /// Weight of the AI classifier score.
    pub ai: f64,
}

impl Default for RankWeights {
    fn default() -> Self {
        RankWeights {
            trace: 0.7,
            ai: 0.3,
        }
    }
}

/// A ranked news item.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedItem {
    /// Item id.
    pub id: Hash256,
    /// Final 0–100 factualness ranking.
    pub rank: f64,
    /// Provenance component in `[0, 1]`.
    pub trace_score: f64,
    /// AI component in `[0, 1]` (0.5 when absent).
    pub ai_score: f64,
    /// Whether the item traces to the factual database.
    pub reaches_root: bool,
}

/// Converts a trace result to a `[0, 1]` provenance score.
pub fn trace_score(trace: &TraceResult) -> f64 {
    if trace.reaches_root {
        trace.score.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Combines provenance and AI scores into the 0–100 ranking.
///
/// # Panics
///
/// Panics if both weights are zero.
pub fn combine(trace: f64, ai: f64, weights: &RankWeights) -> f64 {
    let total = weights.trace + weights.ai;
    assert!(total > 0.0, "rank weights must not both be zero");
    100.0 * (weights.trace * trace.clamp(0.0, 1.0) + weights.ai * ai.clamp(0.0, 1.0)) / total
}

/// Ranks every non-root item in the graph. `ai_scores` maps item ids to a
/// `[0, 1]` "probability factual" from the AI detector; items without an
/// entry use a neutral 0.5.
pub fn rank_graph(
    graph: &SupplyChainGraph,
    ai_scores: &dyn Fn(&Hash256) -> Option<f64>,
    weights: &RankWeights,
) -> Vec<RankedItem> {
    graph
        .trace_all()
        .into_iter()
        .map(|(id, trace)| {
            let ts = trace_score(&trace);
            let ai = ai_scores(&id).unwrap_or(0.5);
            RankedItem {
                id,
                rank: combine(ts, ai, weights),
                trace_score: ts,
                ai_score: ai,
                reaches_root: trace.reaches_root,
            }
        })
        .collect()
}

/// Assigns average ranks (1-based, ties averaged) to values.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (values[idx[j + 1]] - values[idx[i]]).abs() < 1e-12 {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation between two equal-length samples.
/// Returns 0.0 for degenerate inputs (length < 2 or zero variance).
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "samples must have equal length");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    pearson(&ra, &rb)
}

/// Pearson correlation (0.0 for zero-variance inputs).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "samples must have equal length");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..a.len() {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Precision@k: of the top-k items by `score`, the fraction whose id is in
/// `relevant`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn precision_at_k(
    scored: &[(Hash256, f64)],
    relevant: &std::collections::HashSet<Hash256>,
    k: usize,
) -> f64 {
    assert!(k > 0, "k must be positive");
    let mut sorted: Vec<&(Hash256, f64)> = scored.iter().collect();
    sorted.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
    let top = sorted
        .iter()
        .take(k)
        .filter(|(id, _)| relevant.contains(id))
        .count();
    top as f64 / k.min(scored.len()).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tn_crypto::sha256::sha256;

    #[test]
    fn combine_weights() {
        let w = RankWeights {
            trace: 0.7,
            ai: 0.3,
        };
        assert!((combine(1.0, 1.0, &w) - 100.0).abs() < 1e-9);
        assert!((combine(0.0, 0.0, &w)).abs() < 1e-9);
        assert!((combine(1.0, 0.0, &w) - 70.0).abs() < 1e-9);
        // Clamping.
        assert!((combine(2.0, -1.0, &w) - 70.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must not both be zero")]
    fn zero_weights_panic() {
        combine(
            0.5,
            0.5,
            &RankWeights {
                trace: 0.0,
                ai: 0.0,
            },
        );
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [9.0, 7.0, 5.0, 3.0];
        assert!((spearman(&a, &up) - 1.0).abs() < 1e-9);
        assert!((spearman(&a, &down) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_handles_ties_and_degenerate() {
        let a = [1.0, 1.0, 2.0];
        let b = [5.0, 5.0, 9.0];
        assert!(spearman(&a, &b) > 0.9);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        assert_eq!(spearman(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_known_value() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn precision_at_k_basic() {
        let ids: Vec<Hash256> = (0..5u8).map(|i| sha256(&[i])).collect();
        let scored: Vec<(Hash256, f64)> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| (*id, i as f64))
            .collect();
        // Highest scores are ids[4], ids[3].
        let relevant: HashSet<Hash256> = [ids[4], ids[0]].into_iter().collect();
        assert!((precision_at_k(&scored, &relevant, 2) - 0.5).abs() < 1e-9);
        assert!((precision_at_k(&scored, &relevant, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_graph_orders_by_provenance() {
        use crate::graph::SupplyChainGraph;
        use crate::ops::PropagationOp;
        use tn_crypto::Keypair;

        let fact = "The committee approved the solar subsidy amendment. \
            The vote passed with a clear majority. The minister welcomed the outcome.";
        let mut g = SupplyChainGraph::new();
        let root = sha256(b"r");
        g.add_fact_root(root, fact, "energy", 0).unwrap();
        let clean = g
            .insert(
                Keypair::from_seed(b"c").address(),
                fact,
                "energy",
                1,
                vec![(root, PropagationOp::Relay)],
                1,
            )
            .unwrap();
        let fabricated = g
            .insert(
                Keypair::from_seed(b"f").address(),
                "Secret memo reveals everything is a lie.",
                "energy",
                1,
                vec![],
                2,
            )
            .unwrap();

        let ranked = rank_graph(&g, &|_| None, &RankWeights::default());
        let find = |id| ranked.iter().find(|r| r.id == id).unwrap();
        assert!(find(clean).rank > find(fabricated).rank);
        assert!(find(clean).reaches_root);
        assert!(!find(fabricated).reaches_root);
        // AI score shifts the ranking.
        let ranked_ai = rank_graph(
            &g,
            &|id| (*id == fabricated).then_some(0.9),
            &RankWeights::default(),
        );
        let f2 = ranked_ai.iter().find(|r| r.id == fabricated).unwrap();
        assert!(f2.rank > find(fabricated).rank);
    }
}
