//! News propagation operations.
//!
//! "The news propagation operation can be either simply relaying the news
//! or the news can go through various types of modifications with
//! different intents including, for examples, mixing, splitting, merging,
//! and inserting" (§VI). This module defines the operation taxonomy and
//! executable text transformations for each, used by the synthetic
//! workload generators.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::text::sentences;

/// The kind of transformation applied when a news item derives from its
/// parent(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropagationOp {
    /// Verbatim forward.
    Relay,
    /// Quoting / citing a factual-database record.
    Cite,
    /// Interleaving content from two parents.
    Mix,
    /// Extracting a part of the parent ("taking the pieces of information
    /// out of context", §I).
    Split,
    /// Concatenating two parents.
    Merge,
    /// Injecting new sentences into the parent (the paper's 72.3 %
    /// modified-factual fake-news pattern).
    Insert,
}

impl PropagationOp {
    /// All operations, for iteration.
    pub const ALL: [PropagationOp; 6] = [
        PropagationOp::Relay,
        PropagationOp::Cite,
        PropagationOp::Mix,
        PropagationOp::Split,
        PropagationOp::Merge,
        PropagationOp::Insert,
    ];

    /// Stable wire tag.
    pub fn tag(self) -> u8 {
        match self {
            PropagationOp::Relay => 0,
            PropagationOp::Cite => 1,
            PropagationOp::Mix => 2,
            PropagationOp::Split => 3,
            PropagationOp::Merge => 4,
            PropagationOp::Insert => 5,
        }
    }

    /// Decodes a wire tag.
    pub fn from_tag(t: u8) -> Option<PropagationOp> {
        PropagationOp::ALL.get(t as usize).copied()
    }

    /// How many parent items the operation takes.
    pub fn arity(self) -> usize {
        match self {
            PropagationOp::Mix | PropagationOp::Merge => 2,
            _ => 1,
        }
    }
}

/// Verbatim relay.
pub fn relay(parent: &str) -> String {
    parent.to_string()
}

/// Extracts a random contiguous run of at least half the sentences.
pub fn split<R: Rng>(parent: &str, rng: &mut R) -> String {
    let sents = sentences(parent);
    if sents.len() <= 1 {
        return parent.to_string();
    }
    let keep = (sents.len() / 2).max(1);
    let start = rng.gen_range(0..=sents.len() - keep);
    sents[start..start + keep].join(". ") + "."
}

/// Interleaves sentences from two parents.
pub fn mix<R: Rng>(a: &str, b: &str, rng: &mut R) -> String {
    let sa = sentences(a);
    let sb = sentences(b);
    let mut out = Vec::with_capacity(sa.len() + sb.len());
    let mut ia = sa.into_iter();
    let mut ib = sb.into_iter();
    loop {
        let pick_a = rng.gen_bool(0.5);
        let next = if pick_a {
            ia.next().or_else(|| ib.next())
        } else {
            ib.next().or_else(|| ia.next())
        };
        match next {
            Some(s) => out.push(s),
            None => break,
        }
    }
    out.join(". ") + "."
}

/// Concatenates two parents.
pub fn merge(a: &str, b: &str) -> String {
    let mut out = a.trim_end().to_string();
    if !out.ends_with('.') {
        out.push('.');
    }
    out.push(' ');
    out.push_str(b.trim_start());
    out
}

/// Inserts the given sentences at random positions in the parent.
pub fn insert<R: Rng>(parent: &str, injected: &[&str], rng: &mut R) -> String {
    let mut sents = sentences(parent);
    if sents.is_empty() {
        return injected.join(". ") + ".";
    }
    for inj in injected {
        let pos = rng.gen_range(0..=sents.len());
        sents.insert(pos, inj.to_string());
    }
    sents.join(". ") + "."
}

/// Sentence bank used by fake-news injectors: emotionally loaded,
/// unverifiable claims in the style the paper attributes to fabricated
/// stories ("the content of the news is often easy to carry personal
/// emotions and intentions, using the words of negative emotions", §I).
pub const FAKE_INJECTIONS: [&str; 10] = [
    "Insiders warn this is a shocking corrupt cover-up",
    "Anonymous sources claim the real numbers are being hidden",
    "This outrageous betrayal will destroy ordinary families",
    "They do not want you to know the terrifying truth",
    "Furious critics call it the worst scandal in history",
    "Leaked memos allegedly reveal a secret deal with lobbyists",
    "Experts everyone trusts say the report is a complete lie",
    "The disgraceful plot was hatched behind closed doors",
    "Share this before it gets deleted by the censors",
    "A whistleblower fears for their life after speaking out",
];

/// Neutral filler used by honest paraphrasers.
pub const NEUTRAL_INJECTIONS: [&str; 6] = [
    "Officials provided additional context at the briefing",
    "The full document is available in the public record",
    "Analysts noted the measure follows earlier proposals",
    "The vote tally was published the same afternoon",
    "Reporters confirmed the details with two independent sources",
    "A follow-up session is scheduled for next month",
];

/// Applies a random instance of `op` given parent texts, returning the
/// derived text. `parents` must match `op.arity()` (extra parents are
/// ignored; missing second parent falls back to unary behaviour).
pub fn apply<R: Rng>(op: PropagationOp, parents: &[&str], fake: bool, rng: &mut R) -> String {
    let p0 = parents.first().copied().unwrap_or("");
    match op {
        PropagationOp::Relay | PropagationOp::Cite => relay(p0),
        PropagationOp::Split => split(p0, rng),
        PropagationOp::Mix => match parents.get(1) {
            Some(p1) => mix(p0, p1, rng),
            None => split(p0, rng),
        },
        PropagationOp::Merge => match parents.get(1) {
            Some(p1) => merge(p0, p1),
            None => relay(p0),
        },
        PropagationOp::Insert => {
            let bank: &[&str] = if fake {
                &FAKE_INJECTIONS
            } else {
                &NEUTRAL_INJECTIONS
            };
            let count = rng.gen_range(1..=2);
            let picks: Vec<&str> = bank.choose_multiple(rng, count).copied().collect();
            insert(p0, &picks, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::{modification_degree, similarity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const PARENT: &str = "The committee approved the solar subsidy amendment. \
        The vote passed with a clear majority. The minister welcomed the outcome. \
        Industry groups published their initial reactions. A review is planned next year.";

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn tags_round_trip() {
        for op in PropagationOp::ALL {
            assert_eq!(PropagationOp::from_tag(op.tag()), Some(op));
        }
        assert_eq!(PropagationOp::from_tag(200), None);
    }

    #[test]
    fn relay_is_identity() {
        assert_eq!(relay(PARENT), PARENT);
        assert!(modification_degree(PARENT, &relay(PARENT)) < 1e-12);
    }

    #[test]
    fn split_keeps_subset_of_content() {
        let mut r = rng();
        let out = split(PARENT, &mut r);
        assert!(!out.is_empty());
        assert!(out.len() < PARENT.len());
        // Every output sentence comes from the parent.
        for s in crate::text::sentences(&out) {
            assert!(PARENT.contains(&s), "sentence {s:?} not in parent");
        }
    }

    #[test]
    fn insert_increases_modification_more_when_fake() {
        let mut r = rng();
        let honest = apply(PropagationOp::Insert, &[PARENT], false, &mut r);
        let mut r = rng();
        let fake = apply(PropagationOp::Insert, &[PARENT], true, &mut r);
        assert!(modification_degree(PARENT, &honest) > 0.0);
        assert!(modification_degree(PARENT, &fake) > 0.0);
        // Both should still share most content with the parent.
        assert!(similarity(PARENT, &fake) > 0.2);
    }

    #[test]
    fn merge_contains_both_parents() {
        let other = "Parliament debated the fisheries quota. The session ran late.";
        let out = merge(PARENT, other);
        assert!(out.contains("solar subsidy"));
        assert!(out.contains("fisheries quota"));
    }

    #[test]
    fn mix_draws_from_both() {
        let other = "Parliament debated the fisheries quota. The session ran late into the night. Observers counted every vote.";
        let mut r = rng();
        let out = mix(PARENT, other, &mut r);
        let sents = crate::text::sentences(&out);
        assert_eq!(
            sents.len(),
            crate::text::sentences(PARENT).len() + crate::text::sentences(other).len()
        );
    }

    #[test]
    fn apply_handles_missing_second_parent() {
        let mut r = rng();
        let out = apply(PropagationOp::Merge, &[PARENT], false, &mut r);
        assert_eq!(out, PARENT);
        let out = apply(PropagationOp::Mix, &[PARENT], false, &mut r);
        assert!(!out.is_empty());
    }

    #[test]
    fn arity_is_declared() {
        assert_eq!(PropagationOp::Relay.arity(), 1);
        assert_eq!(PropagationOp::Mix.arity(), 2);
        assert_eq!(PropagationOp::Merge.arity(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = apply(
            PropagationOp::Insert,
            &[PARENT],
            true,
            &mut StdRng::seed_from_u64(5),
        );
        let b = apply(
            PropagationOp::Insert,
            &[PARENT],
            true,
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(a, b);
    }
}
