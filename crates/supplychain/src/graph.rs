//! The news blockchain supply-chain graph (paper Figure 4).
//!
//! Nodes are news items (and factual-database roots); edges record which
//! parent(s) an item derived from, with which [`PropagationOp`], and the
//! measured modification degree. Because an item's parents must already
//! exist when it is inserted, the graph is a DAG by construction, and
//! trace-back — "one group is able to trace back to the factual database
//! … and the other group cannot" (§VI) — is a memoized reverse walk.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use tn_crypto::sha256::tagged_hash;
use tn_crypto::{Address, Hash256};

use crate::ops::PropagationOp;
use crate::text::modification_degree;

/// A parent edge of a news item.
#[derive(Debug, Clone, PartialEq)]
pub struct ParentRef {
    /// Parent item id.
    pub id: Hash256,
    /// Operation that derived this item from the parent.
    pub op: PropagationOp,
    /// Measured modification degree in `[0, 1]` (0 = verbatim).
    pub modification: f64,
}

/// A node in the supply-chain graph.
#[derive(Debug, Clone, PartialEq)]
pub struct NewsItem {
    /// Content-addressed id.
    pub id: Hash256,
    /// Publishing account.
    pub author: Address,
    /// Full text (kept in-graph; the chain stores the same bytes in blobs).
    pub content: String,
    /// Topic label.
    pub topic: String,
    /// News room the item was published into.
    pub room: u64,
    /// Parent edges (empty for original, unsourced claims).
    pub parents: Vec<ParentRef>,
    /// True for factual-database root nodes.
    pub is_fact_root: bool,
    /// Publication time.
    pub published_at: u64,
}

/// Computes the content-addressed id of an item from its identity fields.
pub fn item_id(author: &Address, content: &str, published_at: u64) -> Hash256 {
    let mut data = Vec::with_capacity(40 + content.len());
    data.extend_from_slice(author.as_hash().as_bytes());
    data.extend_from_slice(&published_at.to_le_bytes());
    data.extend_from_slice(content.as_bytes());
    tagged_hash("TN/news-item", &data)
}

/// Errors from graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Item id already present.
    Duplicate(Hash256),
    /// A referenced parent does not exist.
    MissingParent(Hash256),
    /// Unknown item id.
    NotFound(Hash256),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Duplicate(h) => write!(f, "item {} already in graph", h.short()),
            GraphError::MissingParent(h) => write!(f, "parent {} not in graph", h.short()),
            GraphError::NotFound(h) => write!(f, "item {} not in graph", h.short()),
        }
    }
}

impl Error for GraphError {}

/// Result of tracing an item back toward the factual database.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceResult {
    /// True when at least one path reaches a fact root.
    pub reaches_root: bool,
    /// Best path quality: max over root paths of Π(1 − modificationᵢ);
    /// 0.0 when no root is reachable.
    pub score: f64,
    /// Hop count of the best-scoring path (None when unreachable).
    pub distance: Option<usize>,
    /// Item ids along the best path, from the item (inclusive) to the
    /// root (inclusive). Empty when unreachable.
    pub path: Vec<Hash256>,
    /// Sum of modification degrees along the best path.
    pub cumulative_modification: f64,
}

impl TraceResult {
    fn unreachable() -> TraceResult {
        TraceResult {
            reaches_root: false,
            score: 0.0,
            distance: None,
            path: Vec::new(),
            cumulative_modification: 0.0,
        }
    }
}

/// The supply-chain graph.
#[derive(Debug, Default)]
pub struct SupplyChainGraph {
    items: HashMap<Hash256, NewsItem>,
    children: HashMap<Hash256, Vec<Hash256>>,
    roots: HashSet<Hash256>,
    /// Insertion order, for deterministic iteration.
    order: Vec<Hash256>,
}

impl SupplyChainGraph {
    /// New empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes (items + roots).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of fact-root nodes.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Total number of parent edges.
    pub fn edge_count(&self) -> usize {
        self.items.values().map(|i| i.parents.len()).sum()
    }

    /// Adds a factual-database record as a root node.
    ///
    /// # Errors
    ///
    /// [`GraphError::Duplicate`] if the id is present.
    pub fn add_fact_root(
        &mut self,
        id: Hash256,
        content: &str,
        topic: &str,
        recorded_at: u64,
    ) -> Result<(), GraphError> {
        if self.items.contains_key(&id) {
            return Err(GraphError::Duplicate(id));
        }
        self.items.insert(
            id,
            NewsItem {
                id,
                author: Address::SYSTEM,
                content: content.to_string(),
                topic: topic.to_string(),
                room: 0,
                parents: Vec::new(),
                is_fact_root: true,
                published_at: recorded_at,
            },
        );
        self.roots.insert(id);
        self.order.push(id);
        Ok(())
    }

    /// Inserts a news item whose parents (if any) must already exist.
    /// Modification degrees on the parent edges are recomputed from the
    /// actual texts, so callers cannot claim a smaller modification than
    /// they made — this is the "completely transparent" property §VI
    /// derives from on-chain recording.
    ///
    /// # Errors
    ///
    /// [`GraphError::Duplicate`] or [`GraphError::MissingParent`].
    pub fn insert(
        &mut self,
        author: Address,
        content: &str,
        topic: &str,
        room: u64,
        parents: Vec<(Hash256, PropagationOp)>,
        published_at: u64,
    ) -> Result<Hash256, GraphError> {
        let id = item_id(&author, content, published_at);
        if self.items.contains_key(&id) {
            return Err(GraphError::Duplicate(id));
        }
        let mut parent_refs = Vec::with_capacity(parents.len());
        for (pid, op) in parents {
            let parent = self.items.get(&pid).ok_or(GraphError::MissingParent(pid))?;
            let modification = modification_degree(&parent.content, content);
            parent_refs.push(ParentRef {
                id: pid,
                op,
                modification,
            });
        }
        for pref in &parent_refs {
            self.children.entry(pref.id).or_default().push(id);
        }
        self.items.insert(
            id,
            NewsItem {
                id,
                author,
                content: content.to_string(),
                topic: topic.to_string(),
                room,
                parents: parent_refs,
                is_fact_root: false,
                published_at,
            },
        );
        self.order.push(id);
        Ok(id)
    }

    /// A hash of the entire graph state, covering every node (in
    /// insertion order) with its author, texts, and parent edges. Two
    /// graphs built from the same event sequence digest identically, so
    /// replicas and ledger replays can be compared by hash.
    pub fn digest(&self) -> Hash256 {
        let mut data = Vec::new();
        for item in self.iter() {
            data.extend_from_slice(item.id.as_bytes());
            data.extend_from_slice(item.author.as_hash().as_bytes());
            data.extend_from_slice(&(item.content.len() as u64).to_le_bytes());
            data.extend_from_slice(item.content.as_bytes());
            data.extend_from_slice(&(item.topic.len() as u64).to_le_bytes());
            data.extend_from_slice(item.topic.as_bytes());
            data.extend_from_slice(&item.room.to_le_bytes());
            data.extend_from_slice(&item.published_at.to_le_bytes());
            data.push(item.is_fact_root as u8);
            data.extend_from_slice(&(item.parents.len() as u64).to_le_bytes());
            for p in &item.parents {
                data.extend_from_slice(p.id.as_bytes());
                data.push(p.op.tag());
                data.extend_from_slice(&p.modification.to_bits().to_le_bytes());
            }
        }
        tagged_hash("TN/supplychain-graph", &data)
    }

    /// Looks up an item.
    pub fn get(&self, id: &Hash256) -> Option<&NewsItem> {
        self.items.get(id)
    }

    /// Items derived from `id`.
    pub fn children_of(&self, id: &Hash256) -> &[Hash256] {
        self.children.get(id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates all items in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &NewsItem> {
        self.order.iter().map(|id| &self.items[id])
    }

    /// Traces `id` back to the factual database, returning the best path
    /// (max product of per-hop retention `1 − modification`).
    ///
    /// # Errors
    ///
    /// [`GraphError::NotFound`] for unknown ids.
    pub fn trace_back(&self, id: &Hash256) -> Result<TraceResult, GraphError> {
        if !self.items.contains_key(id) {
            return Err(GraphError::NotFound(*id));
        }
        let mut memo: HashMap<Hash256, TraceResult> = HashMap::new();
        Ok(self.trace_memo(*id, &mut memo))
    }

    fn trace_memo(&self, id: Hash256, memo: &mut HashMap<Hash256, TraceResult>) -> TraceResult {
        if let Some(cached) = memo.get(&id) {
            return cached.clone();
        }
        let item = &self.items[&id];
        let result = if item.is_fact_root {
            TraceResult {
                reaches_root: true,
                score: 1.0,
                distance: Some(0),
                path: vec![id],
                cumulative_modification: 0.0,
            }
        } else {
            let mut best = TraceResult::unreachable();
            for pref in &item.parents {
                let parent_res = self.trace_memo(pref.id, memo);
                if !parent_res.reaches_root {
                    continue;
                }
                let retention = (1.0 - pref.modification).max(0.0);
                let score = parent_res.score * retention;
                let better = score > best.score
                    || (!best.reaches_root)
                    || ((score - best.score).abs() < 1e-15
                        && parent_res.distance.map(|d| d + 1) < best.distance);
                if better {
                    let mut path = Vec::with_capacity(parent_res.path.len() + 1);
                    path.push(id);
                    path.extend_from_slice(&parent_res.path);
                    best = TraceResult {
                        reaches_root: true,
                        score,
                        distance: parent_res.distance.map(|d| d + 1),
                        path,
                        cumulative_modification: parent_res.cumulative_modification
                            + pref.modification,
                    };
                }
            }
            best
        };
        memo.insert(id, result.clone());
        result
    }

    /// Traces every non-root item, returning `(id, trace)` pairs in
    /// insertion order. Uses one shared memo, so the whole-graph cost is
    /// linear in nodes + edges.
    pub fn trace_all(&self) -> Vec<(Hash256, TraceResult)> {
        let mut memo = HashMap::new();
        self.order
            .iter()
            .filter(|id| !self.roots.contains(id))
            .map(|id| (*id, self.trace_memo(*id, &mut memo)))
            .collect()
    }

    /// The account that introduced the largest modification along an
    /// item's best trace path — the accountability query for *distorted*
    /// news ("tracing the root to the person who creates fake news", §VI).
    /// Returns `None` when the item does not reach a root or every hop is
    /// below `threshold`.
    ///
    /// # Errors
    ///
    /// [`GraphError::NotFound`] for unknown ids.
    pub fn distortion_culprit(
        &self,
        id: &Hash256,
        threshold: f64,
    ) -> Result<Option<(Address, f64)>, GraphError> {
        let trace = self.trace_back(id)?;
        if !trace.reaches_root {
            return Ok(None);
        }
        let mut worst: Option<(Address, f64)> = None;
        // path[i] derives from path[i+1]; find the edge with the largest
        // modification and blame the child (the account that made it).
        for w in trace.path.windows(2) {
            let child = &self.items[&w[0]];
            let parent_id = w[1];
            if let Some(pref) = child.parents.iter().find(|p| p.id == parent_id) {
                if pref.modification >= threshold
                    && worst.is_none_or(|(_, m)| pref.modification > m)
                {
                    worst = Some((child.author, pref.modification));
                }
            }
        }
        Ok(worst)
    }

    /// The origin account of an item: walks the best trace path to the
    /// last non-root node and reports its author — the accountability
    /// query of §IV ("people create fake news can be easily identified and
    /// located").
    pub fn origin_author(&self, id: &Hash256) -> Result<Option<Address>, GraphError> {
        let trace = self.trace_back(id)?;
        if !trace.reaches_root {
            // No root path: the earliest ancestor chain ends at an
            // unsourced item; find it by walking any-parent upward.
            let mut cur = *id;
            loop {
                let item = &self.items[&cur];
                match item.parents.first() {
                    Some(p) => cur = p.id,
                    None => return Ok(Some(item.author)),
                }
            }
        }
        // Path ends at the fact root; the node before it is the first
        // publisher.
        let n = trace.path.len();
        if n >= 2 {
            Ok(Some(self.items[&trace.path[n - 2]].author))
        } else {
            Ok(None) // the item IS a root
        }
    }

    /// Serializes the graph (all nodes with their recorded edges, in
    /// insertion order) for a chain checkpoint. Modification degrees are
    /// stored as recorded — [`SupplyChainGraph::from_bytes`] restores them
    /// without recomputation, so the round trip is exact.
    pub fn to_bytes(&self) -> Vec<u8> {
        use tn_chain::codec::Encoder;
        let mut e = Encoder::new();
        e.put_varint(self.order.len() as u64);
        for item in self.iter() {
            e.put_hash(&item.id)
                .put_hash(item.author.as_hash())
                .put_str(&item.content)
                .put_str(&item.topic)
                .put_u64(item.room)
                .put_u64(item.published_at)
                .put_bool(item.is_fact_root)
                .put_varint(item.parents.len() as u64);
            for p in &item.parents {
                e.put_hash(&p.id)
                    .put_u8(p.op.tag())
                    .put_u64(p.modification.to_bits());
            }
        }
        e.finish()
    }

    /// Restores a graph from [`SupplyChainGraph::to_bytes`] bytes.
    ///
    /// # Errors
    ///
    /// A message when the blob is malformed (decode error, unknown op
    /// tag, or an edge to a node that does not precede it).
    pub fn from_bytes(bytes: &[u8]) -> Result<SupplyChainGraph, String> {
        use tn_chain::codec::Decoder;
        let err = |e: tn_chain::codec::DecodeError| format!("malformed graph state: {e}");
        let mut dec = Decoder::new(bytes);
        let mut graph = SupplyChainGraph::new();
        let n = dec.get_varint().map_err(err)?;
        for _ in 0..n {
            let id = dec.get_hash().map_err(err)?;
            let author = Address::from_hash(dec.get_hash().map_err(err)?);
            let content = dec.get_str().map_err(err)?;
            let topic = dec.get_str().map_err(err)?;
            let room = dec.get_u64().map_err(err)?;
            let published_at = dec.get_u64().map_err(err)?;
            let is_fact_root = dec.get_bool().map_err(err)?;
            let np = dec.get_varint().map_err(err)?;
            let mut parents = Vec::with_capacity((np as usize).min(1 << 10));
            for _ in 0..np {
                let pid = dec.get_hash().map_err(err)?;
                let op = PropagationOp::from_tag(dec.get_u8().map_err(err)?)
                    .ok_or_else(|| "unknown propagation op tag".to_string())?;
                let modification = f64::from_bits(dec.get_u64().map_err(err)?);
                if !graph.items.contains_key(&pid) {
                    return Err(format!("edge to unknown parent {}", pid.short()));
                }
                parents.push(ParentRef {
                    id: pid,
                    op,
                    modification,
                });
            }
            if graph.items.contains_key(&id) {
                return Err(format!("duplicate node {}", id.short()));
            }
            for p in &parents {
                graph.children.entry(p.id).or_default().push(id);
            }
            if is_fact_root {
                graph.roots.insert(id);
            }
            graph.items.insert(
                id,
                NewsItem {
                    id,
                    author,
                    content,
                    topic,
                    room,
                    parents,
                    is_fact_root,
                    published_at,
                },
            );
            graph.order.push(id);
        }
        dec.expect_end().map_err(err)?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_crypto::sha256::sha256;
    use tn_crypto::Keypair;

    fn addr(seed: &[u8]) -> Address {
        Keypair::from_seed(seed).address()
    }

    const FACT: &str = "The committee approved the solar subsidy amendment. \
        The vote passed with a clear majority. The minister welcomed the outcome.";

    fn graph_with_root() -> (SupplyChainGraph, Hash256) {
        let mut g = SupplyChainGraph::new();
        let root = sha256(b"fact-1");
        g.add_fact_root(root, FACT, "energy", 0).unwrap();
        (g, root)
    }

    #[test]
    fn root_traces_to_itself() {
        let (g, root) = graph_with_root();
        let t = g.trace_back(&root).unwrap();
        assert!(t.reaches_root);
        assert_eq!(t.score, 1.0);
        assert_eq!(t.distance, Some(0));
        assert_eq!(t.path, vec![root]);
    }

    #[test]
    fn verbatim_relay_keeps_score_one() {
        let (mut g, root) = graph_with_root();
        let id = g
            .insert(
                addr(b"relayer"),
                FACT,
                "energy",
                1,
                vec![(root, PropagationOp::Relay)],
                10,
            )
            .unwrap();
        let t = g.trace_back(&id).unwrap();
        assert!(t.reaches_root);
        assert!((t.score - 1.0).abs() < 1e-9, "score={}", t.score);
        assert_eq!(t.distance, Some(1));
        assert_eq!(t.path, vec![id, root]);
    }

    #[test]
    fn modification_reduces_score_along_chain() {
        let (mut g, root) = graph_with_root();
        let modified = format!("{FACT} Insiders warn this is a shocking corrupt cover-up.");
        let a = g
            .insert(
                addr(b"a"),
                &modified,
                "energy",
                1,
                vec![(root, PropagationOp::Insert)],
                10,
            )
            .unwrap();
        let more = format!("{modified} They do not want you to know the terrifying truth.");
        let b = g
            .insert(
                addr(b"b"),
                &more,
                "energy",
                1,
                vec![(a, PropagationOp::Insert)],
                20,
            )
            .unwrap();
        let ta = g.trace_back(&a).unwrap();
        let tb = g.trace_back(&b).unwrap();
        assert!(ta.score < 1.0);
        assert!(
            tb.score < ta.score,
            "scores must decay: {} vs {}",
            tb.score,
            ta.score
        );
        assert!(tb.cumulative_modification > ta.cumulative_modification);
        assert_eq!(tb.distance, Some(2));
    }

    #[test]
    fn unsourced_item_does_not_reach_root() {
        let (mut g, _) = graph_with_root();
        let id = g
            .insert(
                addr(b"fabricator"),
                "Aliens built the dam overnight.",
                "energy",
                1,
                vec![],
                5,
            )
            .unwrap();
        let t = g.trace_back(&id).unwrap();
        assert!(!t.reaches_root);
        assert_eq!(t.score, 0.0);
        assert_eq!(t.distance, None);
    }

    #[test]
    fn best_path_chosen_among_parents() {
        let (mut g, root) = graph_with_root();
        // Faithful relay and heavy distortion both exist as parents.
        let clean = g
            .insert(
                addr(b"clean"),
                FACT,
                "energy",
                1,
                vec![(root, PropagationOp::Relay)],
                1,
            )
            .unwrap();
        let distorted_text = "Furious critics call it the worst scandal in history. \
            Anonymous sources claim the real numbers are being hidden.";
        let distorted = g
            .insert(
                addr(b"dirty"),
                distorted_text,
                "energy",
                1,
                vec![(root, PropagationOp::Insert)],
                2,
            )
            .unwrap();
        // A child merging both: best path should go through the clean parent.
        let merged = format!("{FACT} {distorted_text}");
        let child = g
            .insert(
                addr(b"merger"),
                &merged,
                "energy",
                1,
                vec![
                    (clean, PropagationOp::Merge),
                    (distorted, PropagationOp::Merge),
                ],
                3,
            )
            .unwrap();
        let t = g.trace_back(&child).unwrap();
        assert!(t.reaches_root);
        assert_eq!(
            t.path[1], clean,
            "best path should route through the faithful parent"
        );
    }

    #[test]
    fn missing_parent_rejected() {
        let (mut g, _) = graph_with_root();
        let err = g
            .insert(
                addr(b"x"),
                "text",
                "t",
                1,
                vec![(sha256(b"nowhere"), PropagationOp::Relay)],
                1,
            )
            .unwrap_err();
        assert!(matches!(err, GraphError::MissingParent(_)));
    }

    #[test]
    fn duplicate_item_rejected() {
        let (mut g, root) = graph_with_root();
        g.insert(
            addr(b"a"),
            FACT,
            "energy",
            1,
            vec![(root, PropagationOp::Relay)],
            10,
        )
        .unwrap();
        let err = g
            .insert(
                addr(b"a"),
                FACT,
                "energy",
                1,
                vec![(root, PropagationOp::Relay)],
                10,
            )
            .unwrap_err();
        assert!(matches!(err, GraphError::Duplicate(_)));
        let err2 = g.add_fact_root(root, FACT, "energy", 0).unwrap_err();
        assert!(matches!(err2, GraphError::Duplicate(_)));
    }

    #[test]
    fn children_tracked() {
        let (mut g, root) = graph_with_root();
        let a = g
            .insert(
                addr(b"a"),
                FACT,
                "energy",
                1,
                vec![(root, PropagationOp::Relay)],
                1,
            )
            .unwrap();
        let b = g
            .insert(
                addr(b"b"),
                FACT,
                "energy",
                1,
                vec![(root, PropagationOp::Relay)],
                2,
            )
            .unwrap();
        assert_eq!(g.children_of(&root), &[a, b]);
        assert!(g.children_of(&a).is_empty());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn origin_author_found_for_rooted_and_unrooted() {
        let (mut g, root) = graph_with_root();
        let first = addr(b"first-publisher");
        let a = g
            .insert(
                first,
                FACT,
                "energy",
                1,
                vec![(root, PropagationOp::Cite)],
                1,
            )
            .unwrap();
        let b = g
            .insert(
                addr(b"relayer"),
                FACT,
                "energy",
                1,
                vec![(a, PropagationOp::Relay)],
                2,
            )
            .unwrap();
        assert_eq!(g.origin_author(&b).unwrap(), Some(first));

        let fab = addr(b"fabricator");
        let f = g
            .insert(fab, "Made up story.", "energy", 1, vec![], 3)
            .unwrap();
        let f2 = g
            .insert(
                addr(b"spreader"),
                "Made up story.",
                "energy",
                1,
                vec![(f, PropagationOp::Relay)],
                4,
            )
            .unwrap();
        assert_eq!(g.origin_author(&f2).unwrap(), Some(fab));
    }

    #[test]
    fn distortion_culprit_blames_the_distorter() {
        let (mut g, root) = graph_with_root();
        let honest = addr(b"honest relayer");
        let distorter = addr(b"distorter");
        let relayed = g
            .insert(
                honest,
                FACT,
                "energy",
                1,
                vec![(root, PropagationOp::Relay)],
                1,
            )
            .unwrap();
        let distorted_text = format!(
            "{FACT} Insiders warn this is a shocking corrupt cover-up. \
             They do not want you to know the terrifying truth."
        );
        let distorted = g
            .insert(
                distorter,
                &distorted_text,
                "energy",
                1,
                vec![(relayed, PropagationOp::Insert)],
                2,
            )
            .unwrap();
        // A downstream relay of the distorted item still blames the distorter.
        let downstream = g
            .insert(
                addr(b"resharer"),
                &distorted_text,
                "energy",
                1,
                vec![(distorted, PropagationOp::Relay)],
                3,
            )
            .unwrap();
        let culprit = g.distortion_culprit(&downstream, 0.1).unwrap();
        assert_eq!(culprit.map(|(a, _)| a), Some(distorter));
        // A faithful chain has no culprit above the threshold.
        assert_eq!(g.distortion_culprit(&relayed, 0.1).unwrap(), None);
        // Unrooted items report None.
        let unrooted = g
            .insert(addr(b"fab"), "Made up.", "energy", 1, vec![], 4)
            .unwrap();
        assert_eq!(g.distortion_culprit(&unrooted, 0.1).unwrap(), None);
    }

    #[test]
    fn trace_all_covers_non_roots() {
        let (mut g, root) = graph_with_root();
        for i in 0..5u64 {
            g.insert(
                addr(&i.to_le_bytes()),
                FACT,
                "energy",
                1,
                vec![(root, PropagationOp::Relay)],
                10 + i,
            )
            .unwrap();
        }
        let all = g.trace_all();
        assert_eq!(all.len(), 5);
        assert!(all.iter().all(|(_, t)| t.reaches_root));
    }

    #[test]
    fn serialization_round_trip_preserves_digest() {
        let (mut g, root) = graph_with_root();
        let a = g
            .insert(
                addr(b"a"),
                FACT,
                "energy",
                1,
                vec![(root, PropagationOp::Relay)],
                1,
            )
            .unwrap();
        let modified = format!("{FACT} Shocking new claims emerge.");
        g.insert(
            addr(b"b"),
            &modified,
            "energy",
            2,
            vec![(a, PropagationOp::Insert)],
            2,
        )
        .unwrap();

        let bytes = g.to_bytes();
        let restored = SupplyChainGraph::from_bytes(&bytes).unwrap();
        assert_eq!(restored.digest(), g.digest());
        assert_eq!(restored.len(), g.len());
        assert_eq!(restored.root_count(), g.root_count());
        assert_eq!(restored.edge_count(), g.edge_count());
        assert_eq!(restored.children_of(&root), g.children_of(&root));
        // Truncation and bit flips are rejected, never silently accepted.
        assert!(SupplyChainGraph::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn trace_unknown_id_errors() {
        let (g, _) = graph_with_root();
        assert!(matches!(
            g.trace_back(&sha256(b"missing")),
            Err(GraphError::NotFound(_))
        ));
    }
}
