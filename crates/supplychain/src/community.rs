//! Community detection over the propagation interaction graph.
//!
//! §VI: "The construction of news blockchain supply chain graph … is very
//! useful in identifying the groups/communities persons belong to" and "it
//! would be useful to identify all the groups each individual is
//! participating". Accounts that propagate each other's items form an
//! undirected interaction graph; asynchronous label propagation (with
//! deterministic, seeded tie-breaking) assigns community labels.

use std::collections::{BTreeMap, HashMap, HashSet};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tn_crypto::Address;

use crate::graph::SupplyChainGraph;

/// An undirected weighted interaction graph between accounts.
#[derive(Debug, Default)]
pub struct InteractionGraph {
    /// adjacency: account → neighbor → weight.
    adj: HashMap<Address, BTreeMap<Address, u64>>,
}

impl InteractionGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the interaction graph from a supply chain: each parent edge
    /// between items by different authors adds interaction weight.
    pub fn from_supply_chain(sc: &SupplyChainGraph) -> Self {
        let mut g = InteractionGraph::new();
        for item in sc.iter().filter(|i| !i.is_fact_root) {
            for pref in &item.parents {
                if let Some(parent) = sc.get(&pref.id) {
                    if !parent.is_fact_root && parent.author != item.author {
                        g.add_edge(item.author, parent.author, 1);
                    }
                }
            }
        }
        g
    }

    /// Adds (or strengthens) an undirected edge.
    pub fn add_edge(&mut self, a: Address, b: Address, weight: u64) {
        if a == b {
            return;
        }
        *self.adj.entry(a).or_default().entry(b).or_insert(0) += weight;
        *self.adj.entry(b).or_default().entry(a).or_insert(0) += weight;
    }

    /// Ensures a node exists even with no edges.
    pub fn add_node(&mut self, a: Address) {
        self.adj.entry(a).or_default();
    }

    /// Number of accounts.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Sum of edge weights incident to `a`.
    pub fn degree(&self, a: &Address) -> u64 {
        self.adj.get(a).map(|n| n.values().sum()).unwrap_or(0)
    }

    /// Runs label propagation, returning account → community label.
    /// Deterministic given `seed`; converges when no label changes or
    /// after `max_rounds`.
    pub fn label_propagation(&self, seed: u64, max_rounds: usize) -> HashMap<Address, u32> {
        let mut nodes: Vec<Address> = self.adj.keys().copied().collect();
        nodes.sort();
        let mut labels: HashMap<Address, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, a)| (*a, i as u32))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..max_rounds {
            let mut order = nodes.clone();
            order.shuffle(&mut rng);
            let mut changed = false;
            for node in &order {
                let neighbors = &self.adj[node];
                if neighbors.is_empty() {
                    continue;
                }
                // Weighted vote per label; smallest label wins ties for
                // determinism.
                let mut votes: BTreeMap<u32, u64> = BTreeMap::new();
                for (nb, w) in neighbors {
                    *votes.entry(labels[nb]).or_insert(0) += w;
                }
                let best = votes
                    .iter()
                    .max_by(|(la, wa), (lb, wb)| wa.cmp(wb).then(lb.cmp(la)))
                    .map(|(l, _)| *l)
                    .expect("nonempty votes");
                if labels[node] != best {
                    labels.insert(*node, best);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        labels
    }

    /// Groups accounts into communities (label → members, sorted).
    pub fn communities(&self, seed: u64, max_rounds: usize) -> Vec<Vec<Address>> {
        let labels = self.label_propagation(seed, max_rounds);
        let mut groups: BTreeMap<u32, Vec<Address>> = BTreeMap::new();
        for (addr, label) in labels {
            groups.entry(label).or_default().push(addr);
        }
        let mut out: Vec<Vec<Address>> = groups.into_values().collect();
        for g in &mut out {
            g.sort();
        }
        out.sort_by_key(|g| std::cmp::Reverse(g.len()));
        out
    }

    /// The communities an account bridges: labels of its neighbors — used
    /// for the paper's "build bridges across communities" research hook.
    pub fn neighbor_communities(
        &self,
        a: &Address,
        labels: &HashMap<Address, u32>,
    ) -> HashSet<u32> {
        self.adj
            .get(a)
            .map(|nbs| nbs.keys().filter_map(|n| labels.get(n).copied()).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_crypto::Keypair;

    fn addr(i: u64) -> Address {
        Keypair::from_seed(&i.to_le_bytes()).address()
    }

    /// Two dense cliques joined by one weak edge.
    fn two_cliques() -> (InteractionGraph, Vec<Address>, Vec<Address>) {
        let mut g = InteractionGraph::new();
        let a: Vec<Address> = (0..5).map(addr).collect();
        let b: Vec<Address> = (10..15).map(addr).collect();
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                g.add_edge(a[i], a[j], 5);
            }
        }
        for i in 0..b.len() {
            for j in (i + 1)..b.len() {
                g.add_edge(b[i], b[j], 5);
            }
        }
        g.add_edge(a[0], b[0], 1);
        (g, a, b)
    }

    #[test]
    fn cliques_form_two_communities() {
        let (g, a, b) = two_cliques();
        let labels = g.label_propagation(7, 50);
        let la: HashSet<u32> = a.iter().map(|x| labels[x]).collect();
        let lb: HashSet<u32> = b.iter().map(|x| labels[x]).collect();
        assert_eq!(la.len(), 1, "clique A should share a label");
        assert_eq!(lb.len(), 1, "clique B should share a label");
        assert_ne!(la, lb, "cliques should have different labels");
        let comms = g.communities(7, 50);
        assert_eq!(comms.len(), 2);
        assert_eq!(comms[0].len(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _, _) = two_cliques();
        assert_eq!(g.label_propagation(3, 50), g.label_propagation(3, 50));
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = InteractionGraph::new();
        g.add_edge(addr(1), addr(1), 10);
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn degree_counts_weights() {
        let mut g = InteractionGraph::new();
        g.add_edge(addr(1), addr(2), 3);
        g.add_edge(addr(1), addr(3), 4);
        assert_eq!(g.degree(&addr(1)), 7);
        assert_eq!(g.degree(&addr(2)), 3);
        assert_eq!(g.degree(&addr(9)), 0);
    }

    #[test]
    fn from_supply_chain_links_authors() {
        use crate::ops::PropagationOp;
        use tn_crypto::sha256::sha256;

        let mut sc = SupplyChainGraph::new();
        let root = sha256(b"r");
        sc.add_fact_root(root, "Fact text here. More fact text.", "t", 0)
            .unwrap();
        let a1 = sc
            .insert(
                addr(1),
                "Fact text here. More fact text.",
                "t",
                1,
                vec![(root, PropagationOp::Relay)],
                1,
            )
            .unwrap();
        let _a2 = sc
            .insert(
                addr(2),
                "Fact text here. More fact text.",
                "t",
                1,
                vec![(a1, PropagationOp::Relay)],
                2,
            )
            .unwrap();
        let ig = InteractionGraph::from_supply_chain(&sc);
        // addr(1) ↔ addr(2) linked; root edges (fact roots) excluded.
        assert_eq!(ig.node_count(), 2);
        assert_eq!(ig.degree(&addr(1)), 1);
    }

    #[test]
    fn bridge_node_sees_both_communities() {
        let (g, a, b) = two_cliques();
        let labels = g.label_propagation(7, 50);
        let bridge_comms = g.neighbor_communities(&a[0], &labels);
        assert_eq!(
            bridge_comms.len(),
            2,
            "bridge should touch both communities"
        );
        let interior = g.neighbor_communities(&a[2], &labels);
        assert_eq!(interior.len(), 1);
        assert!(b.iter().all(|x| labels.contains_key(x)));
    }
}
