//! Text similarity: the measurement behind "degree of modification".
//!
//! The paper ranks news by "the trace distance of graph from its root …
//! and the degree of the modifications … generated along the path" (§VI).
//! The degree of modification between a parent text and a derived text is
//! computed here as one minus the Jaccard similarity of their word
//! k-shingle sets, with word-level Levenshtein available as a second
//! opinion for tests and ablations.

use std::collections::HashSet;

/// Lowercases and splits text into alphanumeric word tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Builds the set of word `k`-shingles (joined with a separator).
///
/// Texts shorter than `k` words produce a single shingle of the whole
/// text, so similarity remains meaningful for short fragments.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn shingles(text: &str, k: usize) -> HashSet<String> {
    assert!(k > 0, "shingle size must be positive");
    let tokens = tokenize(text);
    if tokens.is_empty() {
        return HashSet::new();
    }
    if tokens.len() <= k {
        let mut s = HashSet::new();
        s.insert(tokens.join(" "));
        return s;
    }
    tokens.windows(k).map(|w| w.join(" ")).collect()
}

/// Jaccard similarity of two sets: `|A ∩ B| / |A ∪ B|` (1.0 for two empty
/// sets).
pub fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Default shingle size used by the platform.
pub const DEFAULT_SHINGLE: usize = 3;

/// Similarity of two texts in `[0, 1]` via `k = 3` word shingles.
pub fn similarity(a: &str, b: &str) -> f64 {
    jaccard(&shingles(a, DEFAULT_SHINGLE), &shingles(b, DEFAULT_SHINGLE))
}

/// The paper's "degree of modification" between a parent and a derived
/// text: `1 − similarity`, in `[0, 1]`.
pub fn modification_degree(parent: &str, derived: &str) -> f64 {
    1.0 - similarity(parent, derived)
}

/// Word-level Levenshtein edit distance.
pub fn word_levenshtein(a: &str, b: &str) -> usize {
    let ta = tokenize(a);
    let tb = tokenize(b);
    if ta.is_empty() {
        return tb.len();
    }
    if tb.is_empty() {
        return ta.len();
    }
    let mut prev: Vec<usize> = (0..=tb.len()).collect();
    let mut cur = vec![0usize; tb.len() + 1];
    for (i, wa) in ta.iter().enumerate() {
        cur[0] = i + 1;
        for (j, wb) in tb.iter().enumerate() {
            let cost = usize::from(wa != wb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[tb.len()]
}

/// Normalized word edit distance in `[0, 1]` (0 = identical).
pub fn normalized_edit_distance(a: &str, b: &str) -> f64 {
    let d = word_levenshtein(a, b);
    let n = tokenize(a).len().max(tokenize(b).len());
    if n == 0 {
        0.0
    } else {
        d as f64 / n as f64
    }
}

/// Splits text into sentences on `.`, `!`, `?` boundaries (trimmed,
/// non-empty).
pub fn sentences(text: &str) -> Vec<String> {
    text.split(['.', '!', '?'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("it's 2019"), vec!["it", "s", "2019"]);
    }

    #[test]
    fn identical_texts_similarity_one() {
        let t = "the committee approved the solar subsidy amendment today";
        assert!((similarity(t, t) - 1.0).abs() < 1e-12);
        assert!(modification_degree(t, t) < 1e-12);
    }

    #[test]
    fn disjoint_texts_similarity_zero() {
        let a = "economic policy drives market growth steadily";
        let b = "penguins waddle across frozen antarctic shores";
        assert!(similarity(a, b) < 1e-12);
        assert!((modification_degree(a, b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_edit_small_modification() {
        let a =
            "the committee approved the solar subsidy amendment after a long debate in the chamber";
        let b = "the committee approved the solar subsidy amendment after a heated debate in the chamber";
        let m = modification_degree(a, b);
        assert!(m > 0.0 && m < 0.5, "m={m}");
    }

    #[test]
    fn bigger_edits_bigger_modification() {
        let base =
            "the committee approved the solar subsidy amendment after a long debate in the chamber";
        let small = "the committee approved the solar subsidy amendment after a heated debate in the chamber";
        let large = "sources say the corrupt committee secretly killed the solar plan amid outrage and scandal";
        assert!(
            modification_degree(base, small) < modification_degree(base, large),
            "monotonicity violated"
        );
    }

    #[test]
    fn shingles_short_text() {
        let s = shingles("two words", 3);
        assert_eq!(s.len(), 1);
        assert!(s.contains("two words"));
        assert!(shingles("", 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "shingle size must be positive")]
    fn zero_shingle_panics() {
        let _ = shingles("a b c", 0);
    }

    #[test]
    fn levenshtein_known_cases() {
        assert_eq!(word_levenshtein("a b c", "a b c"), 0);
        assert_eq!(word_levenshtein("a b c", "a x c"), 1);
        assert_eq!(word_levenshtein("a b c", "a b c d"), 1);
        assert_eq!(word_levenshtein("", "a b"), 2);
        assert_eq!(word_levenshtein("a b", ""), 2);
    }

    #[test]
    fn sentences_split() {
        let s = sentences("First thing. Second thing! Third? ");
        assert_eq!(s, vec!["First thing", "Second thing", "Third"]);
        assert!(sentences("").is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_similarity_symmetric(a in "[a-d ]{0,60}", b in "[a-d ]{0,60}") {
            prop_assert!((similarity(&a, &b) - similarity(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn prop_similarity_bounded(a in "[a-f ]{0,60}", b in "[a-f ]{0,60}") {
            let s = similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn prop_self_similarity_is_one(a in "[a-f ]{1,60}") {
            prop_assert!((similarity(&a, &a) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn prop_levenshtein_triangle(
            a in "[ab ]{0,24}", b in "[ab ]{0,24}", c in "[ab ]{0,24}"
        ) {
            let ab = word_levenshtein(&a, &b);
            let bc = word_levenshtein(&b, &c);
            let ac = word_levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn prop_levenshtein_identity(a in "[a-e ]{0,40}") {
            prop_assert_eq!(word_levenshtein(&a, &a), 0);
        }
    }
}
