//! The pre-configured workflow ("process-type") supply chain of Figure 3 —
//! the baseline the paper contrasts with the news supply chain.
//!
//! "These current workflow process type of blockchain supply chains
//! consist of pre-configured limited number of processing steps and the
//! blockchain network architecture is therefore can be pre-fixed" (§VI).
//! Items flow through a fixed linear pipeline of stages run by a fixed,
//! small set of participants; consumers only consume the end product and
//! never become graph nodes. The E1 experiment measures how this
//! fixed-topology chain compares in scale and trace cost to the dynamic
//! news graph of Figure 4.

use std::collections::HashMap;

use tn_crypto::sha256::tagged_hash;
use tn_crypto::{Address, Hash256};

/// A stage in the fixed workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Raw-material producer.
    Producer,
    /// Processing plant.
    Processor,
    /// Distribution / logistics.
    Distributor,
    /// Retail endpoint.
    Retailer,
}

impl Stage {
    /// All stages in workflow order.
    pub const PIPELINE: [Stage; 4] = [
        Stage::Producer,
        Stage::Processor,
        Stage::Distributor,
        Stage::Retailer,
    ];

    /// The next stage, or `None` after retail.
    pub fn next(self) -> Option<Stage> {
        let i = Stage::PIPELINE
            .iter()
            .position(|s| *s == self)
            .expect("in pipeline");
        Stage::PIPELINE.get(i + 1).copied()
    }
}

/// One ledger entry: an item passing through a stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessStep {
    /// Item being tracked.
    pub item: Hash256,
    /// Stage completed.
    pub stage: Stage,
    /// Participant that performed the stage.
    pub actor: Address,
    /// Logical time.
    pub at: u64,
}

/// Errors for the process chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessError {
    /// Step submitted out of workflow order.
    OutOfOrder {
        /// Stage expected next for the item.
        expected: Stage,
        /// Stage actually submitted.
        actual: Stage,
    },
    /// Actor is not registered for that stage.
    WrongActor(Stage),
    /// The item already completed the pipeline.
    Completed,
}

impl std::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessError::OutOfOrder { expected, actual } => {
                write!(f, "expected stage {expected:?}, got {actual:?}")
            }
            ProcessError::WrongActor(s) => write!(f, "actor not registered for stage {s:?}"),
            ProcessError::Completed => f.write_str("item already completed the pipeline"),
        }
    }
}

impl std::error::Error for ProcessError {}

/// The fixed-topology process supply chain.
#[derive(Debug, Default)]
pub struct ProcessSupplyChain {
    /// Registered actor per stage (the "pre-fixed network architecture").
    actors: HashMap<Stage, Address>,
    /// Ledger of steps, append-only.
    ledger: Vec<ProcessStep>,
    /// item → index of steps, for tracing.
    by_item: HashMap<Hash256, Vec<usize>>,
}

impl ProcessSupplyChain {
    /// Creates a chain with one registered actor per stage.
    pub fn new(actors: [(Stage, Address); 4]) -> Self {
        ProcessSupplyChain {
            actors: actors.into_iter().collect(),
            ledger: Vec::new(),
            by_item: HashMap::new(),
        }
    }

    /// Derives an item id from a human label.
    pub fn item_id(label: &str) -> Hash256 {
        tagged_hash("TN/process-item", label.as_bytes())
    }

    /// Ledger length.
    pub fn len(&self) -> usize {
        self.ledger.len()
    }

    /// True when no steps are recorded.
    pub fn is_empty(&self) -> bool {
        self.ledger.is_empty()
    }

    /// Records a step, enforcing workflow order and actor registration.
    ///
    /// # Errors
    ///
    /// [`ProcessError`] variants for order, actor, or completion
    /// violations.
    pub fn record(
        &mut self,
        item: Hash256,
        stage: Stage,
        actor: Address,
        at: u64,
    ) -> Result<(), ProcessError> {
        let expected = match self.by_item.get(&item).and_then(|idxs| idxs.last()) {
            None => Stage::Producer,
            Some(&last) => match self.ledger[last].stage.next() {
                Some(next) => next,
                None => return Err(ProcessError::Completed),
            },
        };
        if stage != expected {
            return Err(ProcessError::OutOfOrder {
                expected,
                actual: stage,
            });
        }
        if self.actors.get(&stage) != Some(&actor) {
            return Err(ProcessError::WrongActor(stage));
        }
        let idx = self.ledger.len();
        self.ledger.push(ProcessStep {
            item,
            stage,
            actor,
            at,
        });
        self.by_item.entry(item).or_default().push(idx);
        Ok(())
    }

    /// Traces an item: its steps in order. Tracing is trivially O(steps)
    /// because the topology is fixed — the contrast with the news graph.
    pub fn trace(&self, item: &Hash256) -> Vec<&ProcessStep> {
        self.by_item
            .get(item)
            .map(|idxs| idxs.iter().map(|&i| &self.ledger[i]).collect())
            .unwrap_or_default()
    }

    /// True when the item has passed every stage.
    pub fn is_complete(&self, item: &Hash256) -> bool {
        self.trace(item).len() == Stage::PIPELINE.len()
    }

    /// Number of distinct participants — constant (4) regardless of item
    /// volume, unlike the news graph whose participant set grows with the
    /// population.
    pub fn participant_count(&self) -> usize {
        self.actors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_crypto::Keypair;

    fn actors() -> [(Stage, Address); 4] {
        [
            (Stage::Producer, Keypair::from_seed(b"farm").address()),
            (Stage::Processor, Keypair::from_seed(b"plant").address()),
            (Stage::Distributor, Keypair::from_seed(b"truck").address()),
            (Stage::Retailer, Keypair::from_seed(b"shop").address()),
        ]
    }

    fn actor(stage: Stage) -> Address {
        actors().iter().find(|(s, _)| *s == stage).unwrap().1
    }

    #[test]
    fn full_pipeline_flows() {
        let mut chain = ProcessSupplyChain::new(actors());
        let item = ProcessSupplyChain::item_id("batch-1");
        for (t, stage) in Stage::PIPELINE.into_iter().enumerate() {
            chain.record(item, stage, actor(stage), t as u64).unwrap();
        }
        assert!(chain.is_complete(&item));
        let trace = chain.trace(&item);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0].stage, Stage::Producer);
        assert_eq!(trace[3].stage, Stage::Retailer);
        assert_eq!(chain.participant_count(), 4);
    }

    #[test]
    fn out_of_order_rejected() {
        let mut chain = ProcessSupplyChain::new(actors());
        let item = ProcessSupplyChain::item_id("batch-2");
        let err = chain
            .record(item, Stage::Processor, actor(Stage::Processor), 0)
            .unwrap_err();
        assert_eq!(
            err,
            ProcessError::OutOfOrder {
                expected: Stage::Producer,
                actual: Stage::Processor
            }
        );
    }

    #[test]
    fn wrong_actor_rejected() {
        let mut chain = ProcessSupplyChain::new(actors());
        let item = ProcessSupplyChain::item_id("batch-3");
        let err = chain
            .record(item, Stage::Producer, actor(Stage::Retailer), 0)
            .unwrap_err();
        assert_eq!(err, ProcessError::WrongActor(Stage::Producer));
    }

    #[test]
    fn completed_item_closed() {
        let mut chain = ProcessSupplyChain::new(actors());
        let item = ProcessSupplyChain::item_id("batch-4");
        for (t, stage) in Stage::PIPELINE.into_iter().enumerate() {
            chain.record(item, stage, actor(stage), t as u64).unwrap();
        }
        assert_eq!(
            chain.record(item, Stage::Producer, actor(Stage::Producer), 9),
            Err(ProcessError::Completed)
        );
    }

    #[test]
    fn many_items_interleave() {
        let mut chain = ProcessSupplyChain::new(actors());
        let items: Vec<Hash256> = (0..10)
            .map(|i| ProcessSupplyChain::item_id(&format!("b{i}")))
            .collect();
        for stage in Stage::PIPELINE {
            for item in &items {
                chain.record(*item, stage, actor(stage), 0).unwrap();
            }
        }
        assert_eq!(chain.len(), 40);
        assert!(items.iter().all(|i| chain.is_complete(i)));
        // Participant set stays fixed.
        assert_eq!(chain.participant_count(), 4);
    }

    #[test]
    fn stage_pipeline_order() {
        assert_eq!(Stage::Producer.next(), Some(Stage::Processor));
        assert_eq!(Stage::Retailer.next(), None);
    }
}
