//! On-chain encoding of news events and the ledger indexer.
//!
//! "Each news propagate from one entity to other entity will be recorded
//! as a transaction in the blockchain ledger" (§VI). A [`NewsEvent`] is
//! the blob payload of such a transaction; [`index_chain`] replays the
//! canonical ledger and reconstructs the supply-chain graph — the
//! transparency property the ranking and accountability mechanisms build
//! on.

use tn_chain::codec::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use tn_chain::{blob_tags, ChainStore, Payload, Transaction};
use tn_crypto::Hash256;

use crate::graph::{GraphError, SupplyChainGraph};
use crate::ops::PropagationOp;

/// The on-chain record of a news publication or propagation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewsEvent {
    /// Optional headline (empty string = none). Carried on-chain so
    /// headline/body stance analysis is reproducible by anyone.
    pub headline: String,
    /// Full item text.
    pub content: String,
    /// Topic label.
    pub topic: String,
    /// News room id.
    pub room: u64,
    /// Parent item ids with the operation used (empty for original posts).
    pub parents: Vec<(Hash256, u8)>,
    /// Publication time.
    pub published_at: u64,
}

impl NewsEvent {
    /// Wraps the event into a transaction payload blob. Events with
    /// parents use the `NEWS_PROPAGATE` tag, originals `NEWS_PUBLISH`.
    pub fn into_payload(self) -> Payload {
        let tag = if self.parents.is_empty() {
            blob_tags::NEWS_PUBLISH
        } else {
            blob_tags::NEWS_PROPAGATE
        };
        Payload::Blob {
            tag,
            data: self.to_bytes(),
        }
    }

    /// Parses a payload blob back into an event (None for non-news blobs
    /// or other payload kinds).
    pub fn from_payload(payload: &Payload) -> Option<Result<NewsEvent, DecodeError>> {
        match payload {
            Payload::Blob { tag, data }
                if *tag == blob_tags::NEWS_PUBLISH || *tag == blob_tags::NEWS_PROPAGATE =>
            {
                Some(NewsEvent::from_bytes(data))
            }
            _ => None,
        }
    }
}

impl Encodable for NewsEvent {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.headline);
        enc.put_str(&self.content)
            .put_str(&self.topic)
            .put_u64(self.room);
        enc.put_varint(self.parents.len() as u64);
        for (id, op) in &self.parents {
            enc.put_hash(id).put_u8(*op);
        }
        enc.put_u64(self.published_at);
    }
}

impl Decodable for NewsEvent {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let headline = dec.get_str()?;
        let content = dec.get_str()?;
        let topic = dec.get_str()?;
        let room = dec.get_u64()?;
        let n = dec.get_varint()?;
        if n > 1024 {
            return Err(DecodeError::BadLength(n));
        }
        let mut parents = Vec::with_capacity(n as usize);
        for _ in 0..n {
            parents.push((dec.get_hash()?, dec.get_u8()?));
        }
        Ok(NewsEvent {
            headline,
            content,
            topic,
            room,
            parents,
            published_at: dec.get_u64()?,
        })
    }
}

/// Statistics from an indexing pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// News events successfully inserted into the graph.
    pub indexed: usize,
    /// Blobs skipped: undecodable bytes.
    pub malformed: usize,
    /// Events skipped: missing parents / duplicates / unknown ops.
    pub rejected: usize,
    /// Non-news transactions ignored.
    pub ignored: usize,
}

/// Replays the canonical chain into `graph`. Fact roots must already be
/// registered in the graph (they come from the factual database, not the
/// ledger). Invalid events are counted, not fatal — a public ledger can
/// contain garbage.
pub fn index_chain(store: &ChainStore, graph: &mut SupplyChainGraph) -> IndexStats {
    let mut stats = IndexStats::default();
    for tx in store.canonical_transactions() {
        index_transaction(&tx, graph, &mut stats);
    }
    stats
}

/// Indexes a single transaction (used incrementally as blocks commit).
pub fn index_transaction(tx: &Transaction, graph: &mut SupplyChainGraph, stats: &mut IndexStats) {
    let Some(parsed) = NewsEvent::from_payload(&tx.payload) else {
        stats.ignored += 1;
        return;
    };
    let event = match parsed {
        Ok(e) => e,
        Err(_) => {
            stats.malformed += 1;
            return;
        }
    };
    let mut parents = Vec::with_capacity(event.parents.len());
    for (id, op_tag) in &event.parents {
        match PropagationOp::from_tag(*op_tag) {
            Some(op) => parents.push((*id, op)),
            None => {
                stats.rejected += 1;
                return;
            }
        }
    }
    match graph.insert(
        tx.from,
        &event.content,
        &event.topic,
        event.room,
        parents,
        event.published_at,
    ) {
        Ok(_) => stats.indexed += 1,
        Err(GraphError::Duplicate(_) | GraphError::MissingParent(_) | GraphError::NotFound(_)) => {
            stats.rejected += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::item_id;
    use tn_chain::prelude::*;
    use tn_crypto::sha256::sha256;
    use tn_crypto::Keypair;

    const FACT: &str = "The committee approved the solar subsidy amendment. \
        The vote passed with a clear majority.";

    #[test]
    fn event_round_trip() {
        let e = NewsEvent {
            headline: "A headline".into(),
            content: "text".into(),
            topic: "energy".into(),
            room: 3,
            parents: vec![(sha256(b"p"), PropagationOp::Relay.tag())],
            published_at: 99,
        };
        let decoded = NewsEvent::from_bytes(&e.to_bytes()).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn payload_tags_reflect_parents() {
        let orig = NewsEvent {
            headline: String::new(),
            content: "t".into(),
            topic: "x".into(),
            room: 0,
            parents: vec![],
            published_at: 0,
        };
        match orig.clone().into_payload() {
            Payload::Blob { tag, .. } => assert_eq!(tag, blob_tags::NEWS_PUBLISH),
            _ => panic!("expected blob"),
        }
        let prop = NewsEvent {
            parents: vec![(sha256(b"p"), 0)],
            ..orig
        };
        match prop.into_payload() {
            Payload::Blob { tag, .. } => assert_eq!(tag, blob_tags::NEWS_PROPAGATE),
            _ => panic!("expected blob"),
        }
    }

    #[test]
    fn chain_round_trip_to_graph() {
        let alice = Keypair::from_seed(b"alice");
        let bob = Keypair::from_seed(b"bob");
        let validator = Keypair::from_seed(b"validator");
        let genesis = State::genesis([(alice.address(), 1000), (bob.address(), 1000)]);
        let mut store = ChainStore::new(genesis, &validator);

        // Alice publishes an original citing nothing on-chain (roots live in
        // factdb); Bob relays it.
        let publish = NewsEvent {
            headline: String::new(),
            content: FACT.into(),
            topic: "energy".into(),
            room: 1,
            parents: vec![],
            published_at: 5,
        };
        let tx1 = Transaction::signed(&alice, 0, 1, publish.into_payload());
        let alice_item = item_id(&alice.address(), FACT, 5);

        let relay = NewsEvent {
            headline: String::new(),
            content: FACT.into(),
            topic: "energy".into(),
            room: 1,
            parents: vec![(alice_item, PropagationOp::Relay.tag())],
            published_at: 6,
        };
        let tx2 = Transaction::signed(&bob, 0, 1, relay.into_payload());

        let block = store.propose(&validator, 1, vec![tx1, tx2], &mut NoExecutor);
        store.import(block, &mut NoExecutor).unwrap();

        let mut graph = SupplyChainGraph::new();
        let stats = index_chain(&store, &mut graph);
        assert_eq!(stats.indexed, 2);
        assert_eq!(stats.rejected, 0);
        assert_eq!(graph.len(), 2);
        let bob_item = item_id(&bob.address(), FACT, 6);
        let item = graph.get(&bob_item).expect("indexed");
        assert_eq!(item.parents.len(), 1);
        assert_eq!(item.parents[0].id, alice_item);
        assert!(item.parents[0].modification < 1e-9);
    }

    #[test]
    fn orphan_and_malformed_events_counted() {
        let alice = Keypair::from_seed(b"alice");
        let validator = Keypair::from_seed(b"v");
        let genesis = State::genesis([(alice.address(), 1000)]);
        let mut store = ChainStore::new(genesis, &validator);

        // Orphan: parent never published.
        let orphan = NewsEvent {
            headline: String::new(),
            content: "dangling".into(),
            topic: "t".into(),
            room: 1,
            parents: vec![(sha256(b"ghost"), 0)],
            published_at: 1,
        };
        let tx1 = Transaction::signed(&alice, 0, 1, orphan.into_payload());
        // Malformed blob bytes under a news tag.
        let tx2 = Transaction::signed(
            &alice,
            1,
            1,
            Payload::Blob {
                tag: blob_tags::NEWS_PUBLISH,
                data: vec![0xff, 0xff],
            },
        );
        // Unknown op tag.
        let badop = NewsEvent {
            headline: String::new(),
            content: "x".into(),
            topic: "t".into(),
            room: 1,
            parents: vec![(sha256(b"ghost"), 99)],
            published_at: 2,
        };
        let tx3 = Transaction::signed(&alice, 2, 1, badop.into_payload());
        // Non-news blob.
        let tx4 = Transaction::signed(
            &alice,
            3,
            1,
            Payload::Blob {
                tag: blob_tags::RATING,
                data: vec![],
            },
        );

        let block = store.propose(&validator, 1, vec![tx1, tx2, tx3, tx4], &mut NoExecutor);
        store.import(block, &mut NoExecutor).unwrap();

        let mut graph = SupplyChainGraph::new();
        let stats = index_chain(&store, &mut graph);
        assert_eq!(stats.indexed, 0);
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.malformed, 1);
        assert!(stats.ignored >= 1);
        assert!(graph.is_empty());
    }
}
