//! # tn-supplychain
//!
//! The news blockchain supply-chain graph — the paper's central technical
//! contribution (Figure 4, §VI): model news propagation as a blockchain
//! data-flow supply chain so that ranking, traceability and accountability
//! fall out of the recorded graph.
//!
//! - [`text`]: tokenization, shingling, Jaccard/Levenshtein similarity —
//!   the "degree of modification" measure.
//! - [`ops`]: the propagation operations (relay, cite, mix, split, merge,
//!   insert) with executable text transformations.
//! - [`graph`]: the supply-chain DAG with memoized trace-back to the
//!   factual database and origin-account (accountability) queries.
//! - [`ranking`]: factualness ranking from trace distance × modification
//!   degree, plus Spearman/precision@k rank-quality metrics.
//! - [`expert`]: domain-topic expert identification from ledger history.
//! - [`community`]: label-propagation community detection over the
//!   interaction graph.
//! - [`index`]: on-chain news-event encoding and the ledger indexer that
//!   reconstructs the graph from `tn-chain` blocks.
//! - [`process`]: the fixed-workflow process supply chain of Figure 3, the
//!   baseline for the E1 experiment.
//! - [`synth`]: the synthetic workload generator with ground truth used by
//!   experiments E1/E3/E9.
//!
//! # Example
//!
//! ```
//! use tn_supplychain::graph::SupplyChainGraph;
//! use tn_supplychain::ops::PropagationOp;
//! use tn_crypto::{Keypair, sha256::sha256};
//!
//! let mut g = SupplyChainGraph::new();
//! let root = sha256(b"fact-record");
//! g.add_fact_root(root, "The vote passed with a clear majority.", "energy", 0)?;
//! let relayer = Keypair::from_seed(b"relayer").address();
//! let item = g.insert(relayer, "The vote passed with a clear majority.",
//!                     "energy", 1, vec![(root, PropagationOp::Relay)], 10)?;
//! let trace = g.trace_back(&item)?;
//! assert!(trace.reaches_root);
//! # Ok::<(), tn_supplychain::graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod community;
pub mod expert;
pub mod graph;
pub mod index;
pub mod ops;
pub mod process;
pub mod ranking;
pub mod synth;
pub mod text;

pub use graph::{GraphError, NewsItem, ParentRef, SupplyChainGraph, TraceResult};
pub use index::{index_chain, IndexStats, NewsEvent};
pub use ops::PropagationOp;
pub use ranking::{rank_graph, RankWeights, RankedItem};
pub use synth::{generate, SynthChain, SynthConfig};
