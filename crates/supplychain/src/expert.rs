//! Domain-topic expert identification from ledger history.
//!
//! "The construction of news blockchain supply chain graph … can be useful
//! in identifying the potential domain topic experts by AI analyzing the
//! history of blockchain ledger to identify the fact news creators of a
//! given domain topic" (§VI). An author's expertise on a topic is scored
//! from the volume and provenance quality of their contributions: items
//! that trace to the factual database with little modification count for
//! much more than unsourced or heavily distorted ones.

use std::collections::HashMap;

use tn_crypto::Address;

use crate::graph::SupplyChainGraph;
use crate::ranking::trace_score;

/// Expertise evidence for one author on one topic.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpertScore {
    /// The author account.
    pub author: Address,
    /// Topic label.
    pub topic: String,
    /// Number of items the author published on the topic.
    pub items: usize,
    /// Number of those that trace back to the factual database.
    pub rooted_items: usize,
    /// Sum of trace scores (each in `[0,1]`) — the expertise score.
    pub score: f64,
}

/// Scans the graph and scores every (author, topic) pair.
pub fn score_experts(graph: &SupplyChainGraph) -> Vec<ExpertScore> {
    let traces: HashMap<_, _> = graph.trace_all().into_iter().collect();
    let mut acc: HashMap<(Address, String), ExpertScore> = HashMap::new();
    for item in graph.iter().filter(|i| !i.is_fact_root) {
        let trace = &traces[&item.id];
        let entry = acc
            .entry((item.author, item.topic.clone()))
            .or_insert_with(|| ExpertScore {
                author: item.author,
                topic: item.topic.clone(),
                items: 0,
                rooted_items: 0,
                score: 0.0,
            });
        entry.items += 1;
        if trace.reaches_root {
            entry.rooted_items += 1;
        }
        entry.score += trace_score(trace);
    }
    let mut out: Vec<ExpertScore> = acc.into_values().collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.author.cmp(&b.author))
    });
    out
}

/// The top-k candidate experts for a topic — the paper's "dynamically
/// suggest a group of domain topic experts to a given topic in real time
/// when news emerges".
pub fn experts_for_topic(graph: &SupplyChainGraph, topic: &str, k: usize) -> Vec<ExpertScore> {
    score_experts(graph)
        .into_iter()
        .filter(|e| e.topic == topic)
        .take(k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::PropagationOp;
    use tn_crypto::sha256::sha256;
    use tn_crypto::Keypair;

    const FACT: &str = "The committee approved the solar subsidy amendment. \
        The vote passed with a clear majority. The minister welcomed the outcome.";

    fn addr(seed: &[u8]) -> Address {
        Keypair::from_seed(seed).address()
    }

    fn build_graph() -> (SupplyChainGraph, Address, Address, Address) {
        let mut g = SupplyChainGraph::new();
        let expert = addr(b"expert");
        let casual = addr(b"casual");
        let troll = addr(b"troll");

        // Several energy fact roots.
        let roots: Vec<_> = (0..4u8)
            .map(|i| {
                let id = sha256(&[i]);
                g.add_fact_root(id, &format!("{FACT} Docket {i}."), "energy", 0)
                    .unwrap();
                id
            })
            .collect();

        // Expert: four faithful citations.
        for (i, r) in roots.iter().enumerate() {
            g.insert(
                expert,
                &format!("{FACT} Docket {i}."),
                "energy",
                1,
                vec![(*r, PropagationOp::Cite)],
                10 + i as u64,
            )
            .unwrap();
        }
        // Casual: one faithful citation.
        g.insert(
            casual,
            &format!("{FACT} Docket 0."),
            "energy",
            1,
            vec![(roots[0], PropagationOp::Relay)],
            30,
        )
        .unwrap();
        // Troll: three unsourced fabrications.
        for i in 0..3u64 {
            g.insert(
                troll,
                &format!("Shocking secret energy scandal number {i} exposed."),
                "energy",
                1,
                vec![],
                40 + i,
            )
            .unwrap();
        }
        (g, expert, casual, troll)
    }

    #[test]
    fn expert_outranks_casual_and_troll() {
        let (g, expert, casual, troll) = build_graph();
        let top = experts_for_topic(&g, "energy", 3);
        assert_eq!(top[0].author, expert);
        assert!(top[0].score > 3.5, "expert score {}", top[0].score);
        let pos = |a: Address| top.iter().position(|e| e.author == a);
        assert!(pos(expert) < pos(casual));
        // Troll has 3 items but zero rooted ones: score ~0, ranked last.
        let troll_entry = top.iter().find(|e| e.author == troll).unwrap();
        assert_eq!(troll_entry.rooted_items, 0);
        assert!(troll_entry.score < 0.01);
    }

    #[test]
    fn topic_filter_applies() {
        let (mut g, expert, _, _) = build_graph();
        let r = sha256(b"health-root");
        g.add_fact_root(r, "Hospital staffing report released today.", "health", 0)
            .unwrap();
        g.insert(
            expert,
            "Hospital staffing report released today.",
            "health",
            2,
            vec![(r, PropagationOp::Cite)],
            99,
        )
        .unwrap();
        let health = experts_for_topic(&g, "health", 5);
        assert_eq!(health.len(), 1);
        assert_eq!(health[0].author, expert);
        assert_eq!(health[0].items, 1);
    }

    #[test]
    fn k_limits_results() {
        let (g, _, _, _) = build_graph();
        assert_eq!(experts_for_topic(&g, "energy", 1).len(), 1);
        assert!(experts_for_topic(&g, "nonexistent", 5).is_empty());
    }

    #[test]
    fn counts_are_accurate() {
        let (g, expert, _, _) = build_graph();
        let all = score_experts(&g);
        let e = all.iter().find(|e| e.author == expert).unwrap();
        assert_eq!(e.items, 4);
        assert_eq!(e.rooted_items, 4);
    }
}
