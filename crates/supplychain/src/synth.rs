//! Synthetic news supply-chain workload generator with ground truth.
//!
//! Real propagation traces (the paper's Twitter-election datasets) are not
//! shippable, so experiments run on generated supply chains whose
//! statistics follow the paper's citations: most fake news derives from
//! modified factual articles with emotionally loaded insertions, a
//! minority is fabricated from nothing, and honest accounts mostly relay
//! or lightly edit. Every generated item carries ground truth (fake or
//! factual, and the originating account), which is what the E3 ranking and
//! E9 accountability experiments score against.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use tn_crypto::{Address, Hash256, Keypair};
use tn_factdb::corpus::{generate_corpus, CorpusConfig};

use crate::graph::SupplyChainGraph;
use crate::ops::{apply, PropagationOp};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of factual-database roots to seed.
    pub n_fact_roots: usize,
    /// Honest accounts (relay / cite / lightly edit).
    pub n_honest: usize,
    /// Fake-news accounts (fabricate or distort).
    pub n_fakers: usize,
    /// News items to generate on top of the roots.
    pub n_items: usize,
    /// Probability a faker fabricates from nothing instead of distorting
    /// an existing item (the paper's citation says ~72 % of fakes are
    /// *modified* factual news, so this defaults to 0.28).
    pub fabricate_prob: f64,
    /// Probability an honest item derives from an existing item rather
    /// than citing a fact root directly.
    pub deep_propagation_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_fact_roots: 40,
            n_honest: 20,
            n_fakers: 5,
            n_items: 300,
            fabricate_prob: 0.28,
            deep_propagation_prob: 0.6,
            seed: 42,
        }
    }
}

/// Ground truth for one generated item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemTruth {
    /// True when the content is fake (fabricated, distorted, or derived
    /// from fake content).
    pub is_fake: bool,
    /// The account where the content originated (the fabricator for fakes).
    pub origin: Address,
    /// Hops from the item's initial publication (0 = the origin post).
    pub generation: usize,
}

/// Output of the generator.
#[derive(Debug)]
pub struct SynthChain {
    /// The populated supply-chain graph.
    pub graph: SupplyChainGraph,
    /// Ground truth per generated item id.
    pub truth: HashMap<Hash256, ItemTruth>,
    /// Honest account addresses.
    pub honest: Vec<Address>,
    /// Faker account addresses.
    pub fakers: Vec<Address>,
    /// Fact-root ids in the graph.
    pub roots: Vec<Hash256>,
}

impl SynthChain {
    /// Count of items whose ground truth is fake.
    pub fn fake_count(&self) -> usize {
        self.truth.values().filter(|t| t.is_fake).count()
    }
}

const FABRICATED_TEMPLATES: [&str; 6] = [
    "Leaked dossier proves the election computers were rigged by insiders. Share before deletion.",
    "Secret memo shows the vaccine program is a massive cover-up. Anonymous officials confirm everything.",
    "Hidden camera captures the minister taking suitcases of cash. The media refuses to report it.",
    "Whistleblower reveals the climate data was fabricated in a basement. Nobody will be punished.",
    "Underground network controls all the banks, insiders warn. The collapse is scheduled for next month.",
    "Foreign agents wrote the new education law, leaked chats suggest. Teachers are being silenced.",
];

/// Generates a supply chain per `config`.
///
/// # Panics
///
/// Panics if any population parameter is zero.
pub fn generate(config: &SynthConfig) -> SynthChain {
    assert!(config.n_fact_roots > 0, "need fact roots");
    assert!(config.n_honest > 0, "need honest accounts");
    assert!(config.n_fakers > 0, "need faker accounts");
    let mut rng = StdRng::seed_from_u64(config.seed);

    let honest: Vec<Address> = (0..config.n_honest)
        .map(|i| Keypair::from_seed(format!("honest-{i}-{}", config.seed).as_bytes()).address())
        .collect();
    let fakers: Vec<Address> = (0..config.n_fakers)
        .map(|i| Keypair::from_seed(format!("faker-{i}-{}", config.seed).as_bytes()).address())
        .collect();

    let mut graph = SupplyChainGraph::new();
    let corpus = generate_corpus(&CorpusConfig {
        size: config.n_fact_roots,
        seed: config.seed ^ 0x5eed,
        start_time: 0,
    });
    let mut roots = Vec::with_capacity(corpus.len());
    for rec in &corpus {
        let id = rec.id();
        graph
            .add_fact_root(id, &rec.content, &rec.topic, rec.recorded_at)
            .unwrap();
        roots.push(id);
    }

    let mut truth: HashMap<Hash256, ItemTruth> = HashMap::new();
    // Track (id, topic) of generated items for parent selection.
    let mut generated: Vec<Hash256> = Vec::new();

    for i in 0..config.n_items {
        let t = config.n_fact_roots as u64 + i as u64 + 1;
        let faker_turn =
            rng.gen_bool(config.n_fakers as f64 / (config.n_fakers + config.n_honest) as f64);
        let (id, item_truth) = if faker_turn {
            let author = *fakers.choose(&mut rng).expect("nonempty");
            if rng.gen_bool(config.fabricate_prob) || generated.is_empty() && roots.is_empty() {
                // Fabricated from nothing: no parents at all.
                let template = FABRICATED_TEMPLATES.choose(&mut rng).expect("nonempty");
                let content = format!("{template} Report {i}.");
                let topic = corpus.choose(&mut rng).expect("nonempty").topic.clone();
                let id = graph
                    .insert(author, &content, &topic, 1, vec![], t)
                    .unwrap();
                (
                    id,
                    ItemTruth {
                        is_fake: true,
                        origin: author,
                        generation: 0,
                    },
                )
            } else {
                // Distortion of an existing item or root (the 72 % case).
                let (pid, parent_fake, parent_gen) =
                    pick_parent(&graph, &truth, &roots, &generated, 0.5, &mut rng);
                let parent = graph.get(&pid).expect("parent exists");
                let content = apply(PropagationOp::Insert, &[&parent.content], true, &mut rng);
                let topic = parent.topic.clone();
                let id = graph
                    .insert(
                        author,
                        &content,
                        &topic,
                        1,
                        vec![(pid, PropagationOp::Insert)],
                        t,
                    )
                    .unwrap();
                let origin = if parent_fake {
                    truth.get(&pid).map(|tr| tr.origin).unwrap_or(author)
                } else {
                    author
                };
                (
                    id,
                    ItemTruth {
                        is_fake: true,
                        origin,
                        generation: parent_gen + 1,
                    },
                )
            }
        } else {
            let author = *honest.choose(&mut rng).expect("nonempty");
            let deep = rng.gen_bool(config.deep_propagation_prob) && !generated.is_empty();
            let (pid, parent_fake, parent_gen) = if deep {
                pick_parent(&graph, &truth, &roots, &generated, 0.9, &mut rng)
            } else {
                let r = *roots.choose(&mut rng).expect("nonempty");
                (r, false, 0)
            };
            let parent = graph.get(&pid).expect("parent exists");
            let op = *[
                PropagationOp::Relay,
                PropagationOp::Relay,
                PropagationOp::Cite,
                PropagationOp::Split,
                PropagationOp::Insert,
            ]
            .choose(&mut rng)
            .expect("nonempty");
            let content = apply(op, &[&parent.content], false, &mut rng);
            let topic = parent.topic.clone();
            let id = graph
                .insert(author, &content, &topic, 1, vec![(pid, op)], t)
                .unwrap();
            let origin = truth.get(&pid).map(|tr| tr.origin).unwrap_or(author);
            // Honest relays of fake content keep the content fake.
            (
                id,
                ItemTruth {
                    is_fake: parent_fake,
                    origin,
                    generation: parent_gen + 1,
                },
            )
        };
        truth.insert(id, item_truth);
        generated.push(id);
    }

    SynthChain {
        graph,
        truth,
        honest,
        fakers,
        roots,
    }
}

/// Picks a parent: with probability `prefer_generated` an already-generated
/// item (recency-biased), otherwise a fact root. Returns `(id, is_fake,
/// generation)`.
fn pick_parent<R: Rng>(
    _graph: &SupplyChainGraph,
    truth: &HashMap<Hash256, ItemTruth>,
    roots: &[Hash256],
    generated: &[Hash256],
    prefer_generated: f64,
    rng: &mut R,
) -> (Hash256, bool, usize) {
    if !generated.is_empty() && rng.gen_bool(prefer_generated) {
        // Recency bias: sample from the last half.
        let lo = generated.len() / 2;
        let idx = rng.gen_range(lo..generated.len());
        let id = generated[idx];
        let t = &truth[&id];
        (id, t.is_fake, t.generation)
    } else {
        (*roots.choose(rng).expect("roots nonempty"), false, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynthConfig {
        SynthConfig {
            n_fact_roots: 10,
            n_honest: 5,
            n_fakers: 2,
            n_items: 80,
            ..SynthConfig::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.graph.len(), b.graph.len());
        assert_eq!(a.fake_count(), b.fake_count());
        let ids_a: Vec<_> = a.graph.iter().map(|i| i.id).collect();
        let ids_b: Vec<_> = b.graph.iter().map(|i| i.id).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn populations_and_counts() {
        let s = generate(&small());
        assert_eq!(s.graph.len(), 10 + 80);
        assert_eq!(s.graph.root_count(), 10);
        assert_eq!(s.truth.len(), 80);
        assert!(s.fake_count() > 0, "some fakes expected");
        assert!(s.fake_count() < 80, "not everything should be fake");
    }

    #[test]
    fn fakes_mostly_derive_from_modified_factual() {
        // Matching the cited statistic: most fakes have parents (modified
        // factual news), a minority are fabricated (no parents).
        let cfg = SynthConfig {
            n_items: 400,
            ..SynthConfig::default()
        };
        let s = generate(&cfg);
        let fakes: Vec<_> = s
            .truth
            .iter()
            .filter(|(_, t)| t.is_fake && t.generation == 0)
            .map(|(id, _)| *id)
            .collect();
        let fabricated = fakes
            .iter()
            .filter(|id| s.graph.get(id).unwrap().parents.is_empty())
            .count();
        assert_eq!(
            fabricated,
            fakes.len(),
            "generation-0 fakes are exactly the fabricated ones"
        );
        let all_fake_origins = s.truth.values().filter(|t| t.is_fake).count();
        assert!(
            fabricated * 2 < all_fake_origins,
            "fabricated ({fabricated}) should be a minority of fakes ({all_fake_origins})"
        );
    }

    #[test]
    fn trace_scores_separate_fake_from_factual() {
        // The headline E3 property, verified in-miniature: average trace
        // score of factual items exceeds that of fake items.
        let s = generate(&SynthConfig {
            n_items: 250,
            ..SynthConfig::default()
        });
        let mut fake_scores = Vec::new();
        let mut fact_scores = Vec::new();
        for (id, trace) in s.graph.trace_all() {
            let Some(t) = s.truth.get(&id) else { continue };
            let score = crate::ranking::trace_score(&trace);
            if t.is_fake {
                fake_scores.push(score);
            } else {
                fact_scores.push(score);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&fact_scores) > mean(&fake_scores) + 0.15,
            "separation too small: factual {:.3} vs fake {:.3}",
            mean(&fact_scores),
            mean(&fake_scores)
        );
    }

    #[test]
    fn origin_attribution_matches_graph_walk() {
        let s = generate(&small());
        // For fabricated fakes (generation 0), the graph's origin_author
        // must recover the ground-truth fabricator.
        let mut checked = 0;
        for (id, t) in &s.truth {
            if t.is_fake && t.generation == 0 {
                let found = s.graph.origin_author(id).unwrap();
                assert_eq!(found, Some(t.origin), "origin mismatch for {}", id.short());
                checked += 1;
            }
        }
        assert!(checked > 0, "expected at least one fabricated item");
    }

    #[test]
    #[should_panic(expected = "need fact roots")]
    fn zero_roots_panics() {
        generate(&SynthConfig {
            n_fact_roots: 0,
            ..SynthConfig::default()
        });
    }
}
