//! # tn-par
//!
//! A zero-dependency, scoped fork-join worker pool for the trusting-news
//! platform's embarrassingly parallel hot paths: per-transaction signature
//! verification, Merkle leaf hashing, and independent contract batches.
//!
//! The paper's scalability argument (§VII, building on the authors'
//! ICDCS'18 parallel-architecture work) requires the verification path to
//! scale with hardware. This crate supplies the one primitive that path
//! needs: *order-preserving static partitioning* of a work list over
//! `std::thread::scope` workers. There is no queue, no work stealing and
//! no shared mutable state — each worker owns a contiguous chunk, so
//! results (and errors) compose back deterministically regardless of
//! worker count.
//!
//! Design rules:
//!
//! - A [`Pool`] is just a worker count; it owns no threads. Every call
//!   spawns scoped workers and joins them before returning, so borrowed
//!   data can flow into workers without `'static` bounds or `Arc`s.
//! - Work is split into at most `workers` contiguous chunks. One worker
//!   (or a single-item list) short-circuits to an inline loop on the
//!   caller's thread — a `Pool::new(1)` call sequence is byte-identical
//!   to not using the pool at all.
//! - [`Pool::try_check`] reports the *lowest-index* failure, exactly the
//!   error a sequential scan would return, while still pruning work past
//!   the best error found so far.
//!
//! # Example
//!
//! ```
//! use tn_par::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // First-error selection matches a sequential scan.
//! let r = pool.try_check(&[2u64, 7, 4, 9], |i, x| if x % 2 == 0 { Ok(()) } else { Err(i) });
//! assert_eq!(r, Err((1, 1)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fork-join worker pool: a worker count plus the chunking policy.
///
/// Cloning or sharing is trivial (`Copy`); the pool holds no resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Default for Pool {
    /// Same as [`Pool::auto`].
    fn default() -> Self {
        Pool::auto()
    }
}

impl Pool {
    /// A pool with exactly `workers` workers. Zero is clamped to one, so
    /// a miscomputed worker count degrades to sequential execution
    /// instead of panicking.
    pub fn new(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine: `std::thread::available_parallelism`,
    /// falling back to one worker when the machine cannot say.
    pub fn auto() -> Pool {
        Pool::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// A single-worker (sequential) pool.
    pub fn sequential() -> Pool {
        Pool::new(1)
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The contiguous `[lo, hi)` chunk each worker would own for an
    /// `n`-item work list — the pool's actual partitioning policy, public
    /// so observability layers can attribute item `i` to worker
    /// `bounds.iter().position(|(lo, hi)| (lo..hi).contains(&i))` without
    /// replicating the split arithmetic.
    pub fn chunk_bounds(&self, n: usize) -> Vec<(usize, usize)> {
        self.chunk_ranges(n)
    }

    /// Contiguous chunk boundaries splitting `n` items over the workers.
    fn chunk_ranges(&self, n: usize) -> Vec<(usize, usize)> {
        let parts = self.workers.min(n).max(1);
        let base = n / parts;
        let rem = n % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut lo = 0;
        for p in 0..parts {
            let len = base + usize::from(p < rem);
            ranges.push((lo, lo + len));
            lo += len;
        }
        ranges
    }

    /// Order-preserving parallel map over a shared slice.
    ///
    /// Equivalent to `items.iter().map(f).collect()` for any worker
    /// count; with more than one worker the chunks run on scoped threads.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_index(items.len(), |i| f(&items[i]))
    }

    /// Order-preserving parallel map over the index range `0..n`.
    ///
    /// The building block for maps whose input is not a plain slice
    /// (e.g. hashing adjacent pairs of a Merkle level).
    pub fn map_index<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.workers.min(n) <= 1 {
            return (0..n).map(f).collect();
        }
        let f = &f;
        let mut chunks: Vec<Vec<R>> = Vec::with_capacity(self.workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .chunk_ranges(n)
                .into_iter()
                .map(|(lo, hi)| scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                chunks.push(h.join().expect("tn-par worker panicked"));
            }
        });
        chunks.into_iter().flatten().collect()
    }

    /// Order-preserving parallel map over **fixed-size chunks** of a
    /// slice: `f` receives each chunk's index and contents, and the
    /// per-chunk results come back in chunk order.
    ///
    /// Chunk boundaries depend only on `chunk_size` (clamped to ≥ 1) —
    /// never on the worker count — so anything derived from a chunk's
    /// contents (e.g. a batched signature equation) is bit-identical
    /// across machines with different parallelism. The chunks themselves
    /// are distributed over the workers like any other work list.
    pub fn map_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        self.map_index(chunks.len(), |i| f(i, chunks[i]))
    }

    /// Order-preserving parallel map that consumes its input, for work
    /// units the workers must own (e.g. contract state moved out of a
    /// registry).
    pub fn map_owned<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if self.workers.min(n) <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Split the owned vector into contiguous chunks, front to back.
        let ranges = self.chunk_ranges(n);
        let mut rest = items;
        let mut owned_chunks: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
        for (lo, hi) in &ranges {
            let tail = rest.split_off(hi - lo);
            owned_chunks.push(std::mem::replace(&mut rest, tail));
        }
        let f = &f;
        let mut chunks: Vec<Vec<R>> = Vec::with_capacity(owned_chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = owned_chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                chunks.push(h.join().expect("tn-par worker panicked"));
            }
        });
        chunks.into_iter().flatten().collect()
    }

    /// Checks every item, returning `Ok(())` when all pass or the
    /// **lowest-index** failure `(index, error)` otherwise — byte-identical
    /// to a sequential `for` loop's first error, for any worker count.
    ///
    /// Workers prune items whose index is already above the best (lowest)
    /// failing index found so far, so a corrupt item near the front stops
    /// most of the remaining work without affecting which error is
    /// reported.
    pub fn try_check<T, E, F>(&self, items: &[T], f: F) -> Result<(), (usize, E)>
    where
        T: Sync,
        E: Send,
        F: Fn(usize, &T) -> Result<(), E> + Sync,
    {
        let n = items.len();
        if self.workers.min(n) <= 1 {
            for (i, item) in items.iter().enumerate() {
                f(i, item).map_err(|e| (i, e))?;
            }
            return Ok(());
        }
        // Lowest failing index seen so far; workers skip anything later.
        // An item before the final minimum is never skipped (the bound
        // only ever holds indices of actual failures), so the minimum
        // found equals the sequential first error.
        let best = AtomicUsize::new(usize::MAX);
        let best = &best;
        let f = &f;
        let mut first: Option<(usize, E)> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .chunk_ranges(n)
                .into_iter()
                .map(|(lo, hi)| {
                    scope.spawn(move || {
                        for (i, item) in items.iter().enumerate().take(hi).skip(lo) {
                            if i >= best.load(Ordering::Relaxed) {
                                return None;
                            }
                            if let Err(e) = f(i, item) {
                                best.fetch_min(i, Ordering::Relaxed);
                                return Some((i, e));
                            }
                        }
                        None
                    })
                })
                .collect();
            for h in handles {
                if let Some((i, e)) = h.join().expect("tn-par worker panicked") {
                    if first.as_ref().is_none_or(|(fi, _)| i < *fi) {
                        first = Some((i, e));
                    }
                }
            }
        });
        match first {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.map(&[1, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn auto_pool_has_workers() {
        assert!(Pool::auto().workers() >= 1);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for workers in 1..6 {
            let pool = Pool::new(workers);
            for n in 0..20 {
                let ranges = pool.chunk_ranges(n);
                let mut expect = 0;
                for (lo, hi) in &ranges {
                    assert_eq!(*lo, expect);
                    assert!(hi >= lo);
                    expect = *hi;
                }
                assert_eq!(expect, n, "workers={workers} n={n}");
                assert!(ranges.len() <= workers.max(1));
            }
        }
    }

    #[test]
    fn chunk_bounds_matches_internal_partitioning() {
        let pool = Pool::new(3);
        assert_eq!(pool.chunk_bounds(10), pool.chunk_ranges(10));
        // Every index maps to exactly one worker.
        let bounds = pool.chunk_bounds(10);
        for i in 0..10 {
            let owners = bounds.iter().filter(|(lo, hi)| (*lo..*hi).contains(&i));
            assert_eq!(owners.count(), 1, "index {i}");
        }
        assert!(pool.chunk_bounds(0).is_empty() || pool.chunk_bounds(0) == vec![(0, 0)]);
    }

    #[test]
    fn map_preserves_order_for_any_worker_count() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 7).collect();
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(Pool::new(workers).map(&items, |x| x * 7), expect);
        }
    }

    #[test]
    fn map_owned_preserves_order() {
        let items: Vec<String> = (0..57).map(|i| format!("item-{i}")).collect();
        let expect = items.clone();
        for workers in [1, 2, 5, 16] {
            let got = Pool::new(workers).map_owned(items.clone(), |s| s);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn map_index_matches_map() {
        let items: Vec<u32> = (0..41).collect();
        let pool = Pool::new(4);
        assert_eq!(
            pool.map_index(items.len(), |i| items[i] + 1),
            pool.map(&items, |x| x + 1)
        );
    }

    #[test]
    fn empty_inputs_are_fine() {
        let pool = Pool::new(8);
        assert!(pool.map(&[] as &[u8], |x| *x).is_empty());
        assert!(pool.map_owned(Vec::<u8>::new(), |x| x).is_empty());
        assert_eq!(
            pool.try_check(&[] as &[u8], |_, _| Ok::<(), ()>(())),
            Ok(())
        );
    }

    #[test]
    fn try_check_all_pass() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 3, 7] {
            assert_eq!(
                Pool::new(workers).try_check(&items, |_, _| Ok::<(), String>(())),
                Ok(())
            );
        }
    }

    #[test]
    fn try_check_reports_lowest_index_error() {
        // Failures at several indices: every worker count must report the
        // first one, like a sequential scan.
        let bad = [17usize, 40, 41, 90];
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 3, 4, 16] {
            let got = Pool::new(workers).try_check(&items, |i, _| {
                if bad.contains(&i) {
                    Err(format!("bad {i}"))
                } else {
                    Ok(())
                }
            });
            assert_eq!(got, Err((17, "bad 17".to_string())), "workers={workers}");
        }
    }

    #[test]
    fn map_chunks_partitioning_is_worker_independent() {
        let items: Vec<u32> = (0..103).collect();
        // Expected: per-chunk (index, sum) pairs from a sequential chunking.
        let expect: Vec<(usize, u32)> = items
            .chunks(10)
            .enumerate()
            .map(|(i, c)| (i, c.iter().sum()))
            .collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = Pool::new(workers).map_chunks(&items, 10, |i, c| (i, c.iter().sum::<u32>()));
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn map_chunks_edge_sizes() {
        let items: Vec<u8> = (0..7).collect();
        let pool = Pool::new(4);
        // Zero chunk size clamps to one (7 singleton chunks).
        assert_eq!(pool.map_chunks(&items, 0, |_, c| c.len()), vec![1; 7]);
        // Chunk larger than the list: one chunk with everything.
        assert_eq!(pool.map_chunks(&items, 100, |_, c| c.len()), vec![7]);
        // Empty input: no chunks at all.
        assert!(pool.map_chunks(&[] as &[u8], 4, |_, c| c.len()).is_empty());
    }

    #[test]
    fn try_check_single_item() {
        assert_eq!(
            Pool::new(4).try_check(&[5u8], |i, _| Err::<(), usize>(i)),
            Err((0, 0))
        );
    }
}
