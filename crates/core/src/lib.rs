//! # tn-core
//!
//! The AI blockchain platform for trusting news — the paper's headline
//! system (Figure 1) and ecosystem (Figure 2), assembled from every
//! substrate crate:
//!
//! - [`roles`]: verified identities and the five ecosystem roles.
//! - [`platform`]: the [`Platform`] struct — chain + contracts + factual
//!   database + supply-chain graph + AI detector behind one transactional
//!   API (publish, rate, attest, rank, trace, suggest experts).
//! - [`ecosystem`]: the multi-round ecosystem simulation (experiment E10)
//!   in which consumers, creators, fact checkers, AI developers and
//!   publishers act through the real platform APIs.
//! - [`client`]: light-client verification — readers check news events,
//!   anchors and fact records from block headers and Merkle proofs alone.
//!
//! # Example
//!
//! ```
//! use tn_core::platform::{Platform, PlatformConfig};
//! use tn_core::roles::Role;
//! use tn_crypto::Keypair;
//!
//! let mut platform = Platform::new(PlatformConfig::default());
//! let publisher = Keypair::from_seed(b"pub");
//! platform.register_identity(&publisher, "Daily Facts", &[Role::Publisher]);
//! platform.produce_block()?;
//! assert!(platform.identities().has_role(&publisher.address(), Role::Publisher));
//! # Ok::<(), tn_core::platform::PlatformError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod ecosystem;
pub mod platform;
pub mod roles;

pub use platform::{
    BlockSummary, ItemRank, Platform, PlatformConfig, PlatformError, PlatformRankWeights,
};
pub use client::{ClientError, LightClient};
pub use roles::{IdentityRecord, IdentityRegistry, Role};
