//! # tn-core
//!
//! The AI blockchain platform for trusting news — the paper's headline
//! system (Figure 1) and ecosystem (Figure 2), assembled from every
//! substrate crate:
//!
//! - [`roles`]: verified identities and the five ecosystem roles.
//! - [`projections`]: the four block observers (supply-chain graph,
//!   identity registry, factual database, headline cache) that derive
//!   platform state purely from committed blocks.
//! - [`pipeline`]: the [`ExecutionPipeline`] — chain store + contract
//!   executor + registered projections; the deterministic replica core
//!   shared by the local platform and `tn-node` validators.
//! - [`platform`]: the [`Platform`] struct — a facade over the pipeline
//!   adding keys, a mempool and the AI detector behind one transactional
//!   API (publish, rate, attest, rank, trace, suggest experts).
//! - [`ecosystem`]: the multi-round ecosystem simulation (experiment E10)
//!   in which consumers, creators, fact checkers, AI developers and
//!   publishers act through the real platform APIs.
//! - [`client`]: light-client verification — readers check news events,
//!   anchors and fact records from block headers and Merkle proofs alone.
//!
//! # Example
//!
//! ```
//! use tn_core::platform::{Platform, PlatformConfig};
//! use tn_core::roles::Role;
//! use tn_crypto::Keypair;
//!
//! let mut platform = Platform::new(PlatformConfig::default());
//! let publisher = Keypair::from_seed(b"pub");
//! platform.register_identity(&publisher, "Daily Facts", &[Role::Publisher])?;
//! platform.produce_block()?;
//! assert!(platform.identities().has_role(&publisher.address(), Role::Publisher));
//! # Ok::<(), tn_core::platform::PlatformError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod ecosystem;
pub mod pipeline;
pub mod platform;
pub mod projections;
pub mod roles;

pub use client::{ClientError, LightClient};
pub use pipeline::{bootstrap, Bootstrap, BuiltinAddrs, ExecutionPipeline};
pub use platform::{
    BlockSummary, ItemRank, Platform, PlatformConfig, PlatformError, PlatformRankWeights,
};
pub use projections::{
    AdmissionLedger, FactProjection, HeadlineProjection, IdentityProjection, SupplyChainProjection,
};
pub use roles::{IdentityRecord, IdentityRegistry, Role};
