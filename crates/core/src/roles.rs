//! Ecosystem roles and verified identities.
//!
//! Figure 2's ecosystem "consists of news consumers, content creators,
//! news fact checker, fake news detection AI code developers, and media
//! publishers", and §V requires that "identification verified persons"
//! create content. The identity registry tracks which verified account
//! holds which roles; registrations are recorded on-chain as IDENTITY
//! blobs so they are as auditable as everything else.

use std::collections::{BTreeSet, HashMap};

use tn_chain::codec::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use tn_crypto::sha256::tagged_hash;
use tn_crypto::{Address, Hash256};

/// A participant role in the trusting-news ecosystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Reads and rates news.
    Consumer,
    /// Writes news items (journalists and individuals).
    ContentCreator,
    /// Attests records into the factual database.
    FactChecker,
    /// Publishes/maintains AI detection models.
    AiDeveloper,
    /// Operates a distribution platform with news rooms.
    Publisher,
}

impl Role {
    /// All roles.
    pub const ALL: [Role; 5] = [
        Role::Consumer,
        Role::ContentCreator,
        Role::FactChecker,
        Role::AiDeveloper,
        Role::Publisher,
    ];

    /// Stable wire tag.
    pub fn tag(self) -> u8 {
        match self {
            Role::Consumer => 0,
            Role::ContentCreator => 1,
            Role::FactChecker => 2,
            Role::AiDeveloper => 3,
            Role::Publisher => 4,
        }
    }

    /// Decodes a wire tag.
    pub fn from_tag(t: u8) -> Option<Role> {
        Role::ALL.get(t as usize).copied()
    }
}

/// On-chain identity registration record (an IDENTITY blob payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentityRecord {
    /// Display name of the verified person/organization.
    pub name: String,
    /// Roles granted.
    pub roles: Vec<Role>,
}

impl Encodable for IdentityRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_varint(self.roles.len() as u64);
        for r in &self.roles {
            enc.put_u8(r.tag());
        }
    }
}

impl Decodable for IdentityRecord {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let name = dec.get_str()?;
        let n = dec.get_varint()?;
        if n > 16 {
            return Err(DecodeError::BadLength(n));
        }
        let mut roles = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let t = dec.get_u8()?;
            roles.push(Role::from_tag(t).ok_or(DecodeError::BadTag(t))?);
        }
        Ok(IdentityRecord { name, roles })
    }
}

/// The in-memory identity index (rebuilt from chain state).
#[derive(Debug, Clone, Default)]
pub struct IdentityRegistry {
    entries: HashMap<Address, (String, BTreeSet<Role>)>,
}

impl IdentityRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or extends) an identity.
    pub fn register(&mut self, who: Address, name: &str, roles: &[Role]) {
        let entry = self
            .entries
            .entry(who)
            .or_insert_with(|| (name.to_string(), BTreeSet::new()));
        entry.1.extend(roles.iter().copied());
    }

    /// True when `who` is a verified identity.
    pub fn is_verified(&self, who: &Address) -> bool {
        self.entries.contains_key(who)
    }

    /// True when `who` holds `role`.
    pub fn has_role(&self, who: &Address, role: Role) -> bool {
        self.entries
            .get(who)
            .is_some_and(|(_, rs)| rs.contains(&role))
    }

    /// Display name of an identity.
    pub fn name(&self, who: &Address) -> Option<&str> {
        self.entries.get(who).map(|(n, _)| n.as_str())
    }

    /// All accounts holding a role.
    pub fn with_role(&self, role: Role) -> Vec<Address> {
        let mut v: Vec<Address> = self
            .entries
            .iter()
            .filter(|(_, (_, rs))| rs.contains(&role))
            .map(|(a, _)| *a)
            .collect();
        v.sort();
        v
    }

    /// A hash of the full registry state (addresses sorted, names and
    /// role sets included), so replicas can compare registries by hash.
    pub fn digest(&self) -> Hash256 {
        let mut entries: Vec<_> = self.entries.iter().collect();
        entries.sort_by_key(|(addr, _)| **addr);
        let mut data = Vec::new();
        for (addr, (name, roles)) in entries {
            data.extend_from_slice(addr.as_hash().as_bytes());
            data.extend_from_slice(&(name.len() as u64).to_le_bytes());
            data.extend_from_slice(name.as_bytes());
            data.extend_from_slice(&(roles.len() as u64).to_le_bytes());
            for r in roles {
                data.push(r.tag());
            }
        }
        tagged_hash("TN/identity-registry", &data)
    }

    /// Serializes the registry (addresses sorted) for a chain checkpoint.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut entries: Vec<_> = self.entries.iter().collect();
        entries.sort_by_key(|(addr, _)| **addr);
        let mut e = Encoder::new();
        e.put_varint(entries.len() as u64);
        for (addr, (name, roles)) in entries {
            e.put_hash(addr.as_hash())
                .put_str(name)
                .put_varint(roles.len() as u64);
            for r in roles {
                e.put_u8(r.tag());
            }
        }
        e.finish()
    }

    /// Restores a registry from [`IdentityRegistry::to_bytes`] bytes.
    ///
    /// # Errors
    ///
    /// A message when the blob is malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<IdentityRegistry, String> {
        let err = |e: DecodeError| format!("malformed identity registry: {e}");
        let mut dec = Decoder::new(bytes);
        let mut reg = IdentityRegistry::new();
        let n = dec.get_varint().map_err(err)?;
        for _ in 0..n {
            let who = Address::from_hash(dec.get_hash().map_err(err)?);
            let name = dec.get_str().map_err(err)?;
            let m = dec.get_varint().map_err(err)?;
            let mut roles = Vec::with_capacity((m as usize).min(Role::ALL.len()));
            for _ in 0..m {
                let t = dec.get_u8().map_err(err)?;
                roles.push(Role::from_tag(t).ok_or_else(|| format!("unknown role tag {t}"))?);
            }
            reg.register(who, &name, &roles);
        }
        dec.expect_end().map_err(err)?;
        Ok(reg)
    }

    /// Number of verified identities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no identities are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_crypto::Keypair;

    fn addr(seed: &[u8]) -> Address {
        Keypair::from_seed(seed).address()
    }

    #[test]
    fn record_round_trip() {
        let r = IdentityRecord {
            name: "Jane Doe".into(),
            roles: vec![Role::ContentCreator, Role::FactChecker],
        };
        let decoded = IdentityRecord::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn bad_role_tag_rejected() {
        let mut enc = Encoder::new();
        enc.put_str("x").put_varint(1).put_u8(99);
        assert!(matches!(
            IdentityRecord::from_bytes(&enc.finish()),
            Err(DecodeError::BadTag(99))
        ));
    }

    #[test]
    fn registry_roles() {
        let mut reg = IdentityRegistry::new();
        let a = addr(b"a");
        reg.register(a, "Alice", &[Role::ContentCreator]);
        assert!(reg.is_verified(&a));
        assert!(reg.has_role(&a, Role::ContentCreator));
        assert!(!reg.has_role(&a, Role::FactChecker));
        assert_eq!(reg.name(&a), Some("Alice"));
        // Extending keeps old roles.
        reg.register(a, "Alice", &[Role::FactChecker]);
        assert!(reg.has_role(&a, Role::ContentCreator));
        assert!(reg.has_role(&a, Role::FactChecker));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn with_role_lists_sorted() {
        let mut reg = IdentityRegistry::new();
        let (a, b, c) = (addr(b"a"), addr(b"b"), addr(b"c"));
        reg.register(a, "A", &[Role::FactChecker]);
        reg.register(b, "B", &[Role::FactChecker]);
        reg.register(c, "C", &[Role::Consumer]);
        let checkers = reg.with_role(Role::FactChecker);
        assert_eq!(checkers.len(), 2);
        assert!(checkers.windows(2).all(|w| w[0] <= w[1]));
        assert!(reg.with_role(Role::Publisher).is_empty());
    }

    #[test]
    fn role_tags_round_trip() {
        for r in Role::ALL {
            assert_eq!(Role::from_tag(r.tag()), Some(r));
        }
        assert_eq!(Role::from_tag(200), None);
    }
}
