//! The trusting-news ecosystem simulation (Figure 2, experiment E10).
//!
//! All five roles act through the real platform APIs over multiple
//! rounds: publishers run news rooms, content creators publish (a
//! fraction of them distorting or fabricating), consumers rate what they
//! read, fact checkers attest new records into the factual database, and
//! an AI developer ships a detector partway through. The measured output
//! is the paper's central promise: the platform's combined ranking
//! separates factual from fake content, and the factual database grows
//! round over round.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use tn_crypto::{Hash256, Keypair};
use tn_factdb::record::{FactRecord, SourceKind};
use tn_supplychain::ops::{apply, PropagationOp};

use crate::platform::{Platform, PlatformConfig, PlatformError};
use crate::roles::Role;

/// Ecosystem population and schedule.
#[derive(Debug, Clone)]
pub struct EcosystemConfig {
    /// Rating consumers.
    pub n_consumers: usize,
    /// Honest content creators.
    pub n_creators: usize,
    /// Fake-news creators (authorized accounts gone rogue).
    pub n_fakers: usize,
    /// Fact checkers.
    pub n_checkers: usize,
    /// Simulation rounds.
    pub rounds: usize,
    /// Items published per creator per round (probabilistically).
    pub publish_prob: f64,
    /// Consumers rating each item (sampled).
    pub raters_per_item: usize,
    /// Probability a fact checker proposes+attests a fresh public record
    /// each round.
    pub new_fact_prob: f64,
    /// Round at which the AI developer ships the trained detector
    /// (`None` = never).
    pub detector_round: Option<usize>,
    /// Consumer rating noise (probability of misjudging an item).
    pub rating_noise: f64,
    /// RNG seed.
    pub seed: u64,
    /// Platform parameters.
    pub platform: PlatformConfig,
}

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            n_consumers: 12,
            n_creators: 6,
            n_fakers: 2,
            n_checkers: 3,
            rounds: 10,
            publish_prob: 0.8,
            raters_per_item: 5,
            new_fact_prob: 0.5,
            detector_round: Some(3),
            rating_noise: 0.15,
            seed: 2019,
            platform: PlatformConfig::default(),
        }
    }
}

/// Per-round measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: usize,
    /// Items published this round.
    pub published: usize,
    /// Of which fake.
    pub fake_published: usize,
    /// Records admitted to the factual DB this round.
    pub admitted_facts: usize,
    /// Mean combined rank of all factual items so far.
    pub mean_rank_factual: f64,
    /// Mean combined rank of all fake items so far.
    pub mean_rank_fake: f64,
    /// Mean incentive-point balance of consumers at round end.
    pub mean_consumer_points: f64,
    /// Factual-database size at round end.
    pub factdb_size: usize,
    /// Chain height at round end.
    pub chain_height: u64,
}

/// Full simulation output.
#[derive(Debug)]
pub struct EcosystemResult {
    /// Per-round stats.
    pub rounds: Vec<RoundStats>,
    /// The platform in its final state (for further inspection).
    pub platform: Platform,
    /// Ids and ground truth (`true` = fake) of all published items.
    pub truth: Vec<(Hash256, bool)>,
    /// Final rank separation: mean(factual) − mean(fake).
    pub final_separation: f64,
}

/// Runs the ecosystem simulation.
///
/// # Errors
///
/// Propagates platform errors (which indicate a bug in the harness — all
/// simulated actions are authorized).
pub fn run_ecosystem(config: &EcosystemConfig) -> Result<EcosystemResult, PlatformError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut platform = Platform::new(config.platform.clone());

    // --- population setup -------------------------------------------------
    let publisher = Keypair::from_seed(b"eco-publisher");
    platform.register_identity(&publisher, "Platform Press", &[Role::Publisher])?;
    let consumers: Vec<Keypair> = (0..config.n_consumers)
        .map(|i| Keypair::from_seed(format!("eco-consumer-{i}").as_bytes()))
        .collect();
    for (i, c) in consumers.iter().enumerate() {
        platform.register_identity(c, &format!("Consumer {i}"), &[Role::Consumer])?;
    }
    let creators: Vec<Keypair> = (0..config.n_creators)
        .map(|i| Keypair::from_seed(format!("eco-creator-{i}").as_bytes()))
        .collect();
    let fakers: Vec<Keypair> = (0..config.n_fakers)
        .map(|i| Keypair::from_seed(format!("eco-faker-{i}").as_bytes()))
        .collect();
    for (i, c) in creators.iter().chain(fakers.iter()).enumerate() {
        platform.register_identity(c, &format!("Creator {i}"), &[Role::ContentCreator])?;
    }
    let checkers: Vec<Keypair> = (0..config.n_checkers)
        .map(|i| Keypair::from_seed(format!("eco-checker-{i}").as_bytes()))
        .collect();
    for (i, c) in checkers.iter().enumerate() {
        platform.register_identity(c, &format!("Checker {i}"), &[Role::FactChecker])?;
    }
    platform.produce_block()?;

    platform.create_publisher_platform(&publisher, "Platform Press")?;
    platform.produce_block()?;
    let pid = platform
        .newsrooms()
        .find_platform("Platform Press")
        .expect("platform registered");
    platform.create_news_room(&publisher, pid, "general")?;
    platform.produce_block()?;
    let room = platform.newsrooms().rooms().next().expect("room created").0;
    for c in creators.iter().chain(fakers.iter()) {
        platform.authorize_journalist(&publisher, room, &c.address())?;
    }
    platform.produce_block()?;

    // --- rounds ------------------------------------------------------------
    let mut truth: Vec<(Hash256, bool)> = Vec::new();
    let mut rounds = Vec::with_capacity(config.rounds);
    let mut fact_counter = 0u64;

    for round in 0..config.rounds {
        let mut published = 0usize;
        let mut fake_published = 0usize;

        // AI developer ships the detector.
        if config.detector_round == Some(round) && !platform.has_detector() {
            let corpus = tn_aidetect::corpus::generate_news_corpus(
                &tn_aidetect::corpus::NewsCorpusConfig::default(),
            );
            platform.train_detector(&corpus);
        }

        // Fact checkers source fresh public records.
        let mut proposed: Vec<Hash256> = Vec::new();
        if rng.gen_bool(config.new_fact_prob.clamp(0.0, 1.0)) {
            fact_counter += 1;
            let record = FactRecord {
                source: SourceKind::VerifiedNews,
                speaker: "Recorder".into(),
                topic: "general".into(),
                content: format!(
                    "The council published the verified quarterly report number {fact_counter}. \
                     The figures were countersigned by independent auditors."
                ),
                recorded_at: 1_000 + fact_counter,
            };
            let id = platform.propose_fact(record)?;
            for checker in &checkers {
                platform.attest_fact(checker, &id)?;
            }
            proposed.push(id);
        }

        // Creators publish.
        let roots: Vec<FactRecord> = platform.factdb().iter().cloned().collect();
        for creator in &creators {
            if !rng.gen_bool(config.publish_prob.clamp(0.0, 1.0)) {
                continue;
            }
            let root = roots.choose(&mut rng).expect("factdb seeded");
            let op = *[
                PropagationOp::Cite,
                PropagationOp::Relay,
                PropagationOp::Split,
            ]
            .choose(&mut rng)
            .expect("nonempty");
            let content = apply(op, &[&root.content], false, &mut rng);
            let id = platform.publish_news(
                creator,
                room,
                &root.topic,
                &content,
                vec![(root.id(), op)],
            )?;
            truth.push((id, false));
            published += 1;
        }
        for faker in &fakers {
            if !rng.gen_bool(config.publish_prob.clamp(0.0, 1.0)) {
                continue;
            }
            let id = if rng.gen_bool(0.28) {
                // Fabricated from nothing.
                platform.publish_news(
                    faker,
                    room,
                    "general",
                    &format!(
                        "Shocking leaked memo exposes the corrupt cover-up, insiders warn. \
                         Share before the censors delete it. Report {round}-{published}."
                    ),
                    vec![],
                )?
            } else {
                // Distorted factual (the 72 % pattern).
                let root = roots.choose(&mut rng).expect("factdb seeded");
                let content = apply(PropagationOp::Insert, &[&root.content], true, &mut rng);
                platform.publish_news(
                    faker,
                    room,
                    &root.topic,
                    &content,
                    vec![(root.id(), PropagationOp::Insert)],
                )?
            };
            truth.push((id, true));
            published += 1;
            fake_published += 1;
        }

        let summary = platform.produce_block()?;

        // Consumers rate the round's new items (they can judge content
        // with some noise — the platform aggregates their scores). The
        // platform pays incentive points for ratings that agree with the
        // eventually-confirmed outcome and slashes disagreement (§V's
        // reward economy), exercised through the incentive contract.
        let new_items: Vec<(Hash256, bool)> = truth.iter().rev().take(published).copied().collect();
        for (item, is_fake) in &new_items {
            for rater in consumers.choose_multiple(&mut rng, config.raters_per_item) {
                let misjudge = rng.gen_bool(config.rating_noise.clamp(0.0, 1.0));
                let believes_factual = *is_fake == misjudge;
                let score: u8 = if believes_factual {
                    rng.gen_range(70..=100)
                } else {
                    rng.gen_range(0..=30)
                };
                platform.submit_rating(rater, item, score)?;
                let correct = believes_factual != *is_fake;
                if correct {
                    platform.reward_points(&rater.address(), 2)?;
                } else {
                    platform.slash_points(&rater.address(), 1)?;
                }
            }
        }
        platform.produce_block()?;
        // One more block so fact-DB re-anchors land.
        platform.produce_block()?;

        // Measure.
        let mut fact_ranks = Vec::new();
        let mut fake_ranks = Vec::new();
        for (id, is_fake) in &truth {
            let r = platform.rank_item(id)?;
            if *is_fake {
                fake_ranks.push(r.rank);
            } else {
                fact_ranks.push(r.rank);
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let mean_consumer_points = consumers
            .iter()
            .map(|c| platform.incentives().balance(&c.address()) as f64)
            .sum::<f64>()
            / consumers.len().max(1) as f64;
        rounds.push(RoundStats {
            round,
            published,
            fake_published,
            admitted_facts: summary.admitted_facts.len()
                + proposed
                    .iter()
                    .filter(|id| platform.factdb().contains(id))
                    .count(),
            mean_consumer_points,
            mean_rank_factual: mean(&fact_ranks),
            mean_rank_fake: mean(&fake_ranks),
            factdb_size: platform.factdb().len(),
            chain_height: platform.height(),
        });
    }

    let last = rounds.last().expect("at least one round");
    let final_separation = last.mean_rank_factual - last.mean_rank_fake;
    Ok(EcosystemResult {
        rounds,
        platform,
        truth,
        final_separation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EcosystemConfig {
        EcosystemConfig {
            n_consumers: 6,
            n_creators: 3,
            n_fakers: 1,
            n_checkers: 2,
            rounds: 4,
            platform: PlatformConfig {
                factdb_seed: tn_factdb::corpus::CorpusConfig {
                    size: 20,
                    seed: 42,
                    start_time: 0,
                },
                ..PlatformConfig::default()
            },
            ..EcosystemConfig::default()
        }
    }

    #[test]
    fn ecosystem_runs_and_separates_fake_from_factual() {
        let r = run_ecosystem(&small()).expect("runs");
        assert_eq!(r.rounds.len(), 4);
        assert!(
            r.truth.iter().any(|(_, fake)| *fake),
            "some fakes published"
        );
        assert!(
            r.truth.iter().any(|(_, fake)| !*fake),
            "some factual published"
        );
        assert!(
            r.final_separation > 15.0,
            "expected clear rank separation, got {}",
            r.final_separation
        );
    }

    #[test]
    fn factdb_grows_over_rounds() {
        let cfg = EcosystemConfig {
            new_fact_prob: 1.0,
            ..small()
        };
        let r = run_ecosystem(&cfg).expect("runs");
        let first = r.rounds.first().unwrap().factdb_size;
        let last = r.rounds.last().unwrap().factdb_size;
        assert!(last > first, "factdb should grow: {first} → {last}");
        assert_eq!(last - 20, 4, "one admitted record per round");
    }

    #[test]
    fn chain_height_advances_every_round() {
        let r = run_ecosystem(&small()).expect("runs");
        for w in r.rounds.windows(2) {
            assert!(w[1].chain_height > w[0].chain_height);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_ecosystem(&small()).expect("runs");
        let b = run_ecosystem(&small()).expect("runs");
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn detector_round_improves_or_maintains_separation() {
        let with = run_ecosystem(&small()).expect("runs");
        let without = run_ecosystem(&EcosystemConfig {
            detector_round: None,
            ..small()
        })
        .expect("runs");
        assert!(
            with.final_separation >= without.final_separation - 5.0,
            "with detector {} vs without {}",
            with.final_separation,
            without.final_separation
        );
        assert!(with.platform.has_detector());
        assert!(!without.platform.has_detector());
    }
}
