//! Light-client verification: readers check the platform's claims without
//! running a node.
//!
//! The paper's trust story requires that *anyone* can verify (a) a news
//! event really is on the immutable ledger and (b) a cited record really
//! is in the factual database — "the record is immutable and any changes
//! are easy to detect" (§IV). A light client holds only block headers:
//! it verifies proposer signatures and parent links, checks transaction
//! inclusion with Merkle proofs against the header's `tx_root`, learns
//! the factual-database anchor from proven `AnchorRoot` transactions, and
//! verifies fact records against that anchor.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use tn_chain::block::{Block, BlockHeader};
use tn_chain::transaction::{Payload, Transaction};
use tn_crypto::history::{ConsistencyProof, InclusionProof};
use tn_crypto::merkle::MerkleProof;
use tn_crypto::{Hash256, PublicKey, Signature};
use tn_factdb::db::FactualDatabase;
use tn_factdb::record::FactRecord;
use tn_supplychain::index::NewsEvent;

/// Errors raised by light-client verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Header signature or proposer mismatch.
    BadHeader,
    /// Header's parent is not the current tip.
    BrokenLink {
        /// Expected parent id.
        expected: Hash256,
        /// Parent id carried by the header.
        actual: Hash256,
    },
    /// The referenced block header is unknown to this client.
    UnknownBlock(Hash256),
    /// The Merkle proof did not verify.
    BadProof,
    /// The transaction's own signature is invalid.
    BadTransaction,
    /// The transaction is not a news event / anchor as claimed.
    WrongPayload,
    /// No factual-database anchor has been observed yet.
    NoAnchor,
    /// An append-only consistency audit failed: the new anchor does not
    /// extend the previous one (history was rewritten).
    HistoryRewritten,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::BadHeader => f.write_str("header signature invalid"),
            ClientError::BrokenLink { expected, actual } => {
                write!(
                    f,
                    "header parent {} != tip {}",
                    actual.short(),
                    expected.short()
                )
            }
            ClientError::UnknownBlock(h) => write!(f, "unknown block {}", h.short()),
            ClientError::BadProof => f.write_str("merkle proof failed"),
            ClientError::BadTransaction => f.write_str("transaction signature invalid"),
            ClientError::WrongPayload => f.write_str("payload is not of the claimed kind"),
            ClientError::NoAnchor => f.write_str("no factual-db anchor observed"),
            ClientError::HistoryRewritten => {
                f.write_str("factual-db anchor does not extend the previous anchor")
            }
        }
    }
}

impl Error for ClientError {}

/// A header accepted by the client.
#[derive(Debug, Clone)]
struct AcceptedHeader {
    header: BlockHeader,
}

/// The light client: a verified header chain plus the latest proven
/// factual-database anchor.
#[derive(Debug, Default)]
pub struct LightClient {
    headers: HashMap<Hash256, AcceptedHeader>,
    tip: Option<Hash256>,
    /// Latest proven `factdb` anchor root (and the height it was seen at).
    fact_anchor: Option<(Hash256, u64)>,
    /// Every proven anchor in observation order, for append-only audits.
    anchor_trail: Vec<Hash256>,
}

impl LightClient {
    /// New client with no state; the first header submitted becomes its
    /// trust root (in deployment this would be the known genesis).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current tip id.
    pub fn tip(&self) -> Option<Hash256> {
        self.tip
    }

    /// Number of accepted headers.
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// True when no headers have been accepted.
    pub fn is_empty(&self) -> bool {
        self.headers.is_empty()
    }

    /// The latest proven factual-database anchor.
    pub fn fact_anchor(&self) -> Option<Hash256> {
        self.fact_anchor.map(|(r, _)| r)
    }

    /// All proven anchors in observation order.
    pub fn anchor_trail(&self) -> &[Hash256] {
        &self.anchor_trail
    }

    /// Audits that the latest anchor *extends* the previous one via an
    /// append-only consistency proof (supplied by any full node; the proof
    /// is self-verifying against the two roots the client already holds).
    ///
    /// # Errors
    ///
    /// [`ClientError::NoAnchor`] with fewer than two observed anchors;
    /// [`ClientError::HistoryRewritten`] when the proof does not verify.
    pub fn verify_anchor_consistency(&self, proof: &ConsistencyProof) -> Result<(), ClientError> {
        let n = self.anchor_trail.len();
        if n < 2 {
            return Err(ClientError::NoAnchor);
        }
        let old = self.anchor_trail[n - 2];
        let new = self.anchor_trail[n - 1];
        if tn_crypto::history::HistoryTree::verify_consistency(&old, &new, proof) {
            Ok(())
        } else {
            Err(ClientError::HistoryRewritten)
        }
    }

    /// Submits the next header (with the proposer's key and signature).
    /// The first header is accepted as the trust root; later headers must
    /// extend the tip.
    ///
    /// # Errors
    ///
    /// [`ClientError::BadHeader`] or [`ClientError::BrokenLink`].
    pub fn submit_header(
        &mut self,
        header: BlockHeader,
        proposer_key: &PublicKey,
        signature: &Signature,
    ) -> Result<(), ClientError> {
        if proposer_key.address() != header.proposer
            || !proposer_key.verify(&header.digest(), signature)
        {
            return Err(ClientError::BadHeader);
        }
        if let Some(tip) = self.tip {
            if header.parent != tip {
                return Err(ClientError::BrokenLink {
                    expected: tip,
                    actual: header.parent,
                });
            }
        }
        let id = header.digest();
        self.headers.insert(id, AcceptedHeader { header });
        self.tip = Some(id);
        Ok(())
    }

    /// Convenience: submit a full block's header.
    ///
    /// # Errors
    ///
    /// Same as [`Self::submit_header`].
    pub fn submit_block_header(&mut self, block: &Block) -> Result<(), ClientError> {
        self.submit_header(block.header.clone(), &block.proposer_key, &block.signature)
    }

    /// Verifies that `tx` is included in the accepted block `block_id`
    /// via `proof`, and that the transaction itself is validly signed.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants for unknown blocks, bad proofs or bad
    /// signatures.
    pub fn verify_transaction(
        &self,
        block_id: &Hash256,
        tx: &Transaction,
        proof: &MerkleProof,
    ) -> Result<(), ClientError> {
        let accepted = self
            .headers
            .get(block_id)
            .ok_or(ClientError::UnknownBlock(*block_id))?;
        if !Block::verify_tx_proof(&tx.id(), proof, &accepted.header.tx_root) {
            return Err(ClientError::BadProof);
        }
        tx.verify().map_err(|_| ClientError::BadTransaction)
    }

    /// Verifies an on-chain news event: inclusion + signature + payload
    /// decoding. Returns the decoded event (author = `tx.from`).
    ///
    /// # Errors
    ///
    /// Verification errors, or [`ClientError::WrongPayload`] when the
    /// transaction is not a news blob.
    pub fn verify_news_event(
        &self,
        block_id: &Hash256,
        tx: &Transaction,
        proof: &MerkleProof,
    ) -> Result<NewsEvent, ClientError> {
        self.verify_transaction(block_id, tx, proof)?;
        match NewsEvent::from_payload(&tx.payload) {
            Some(Ok(event)) => Ok(event),
            _ => Err(ClientError::WrongPayload),
        }
    }

    /// Processes a proven `AnchorRoot` transaction for the `factdb`
    /// namespace, updating the client's trusted anchor.
    ///
    /// # Errors
    ///
    /// Verification errors, or [`ClientError::WrongPayload`] for other
    /// payloads/namespaces.
    pub fn observe_anchor(
        &mut self,
        block_id: &Hash256,
        tx: &Transaction,
        proof: &MerkleProof,
    ) -> Result<Hash256, ClientError> {
        self.verify_transaction(block_id, tx, proof)?;
        let height = self
            .headers
            .get(block_id)
            .ok_or(ClientError::UnknownBlock(*block_id))?
            .header
            .height;
        match &tx.payload {
            Payload::AnchorRoot { namespace, root } if namespace == "factdb" => {
                // Keep the newest anchor by height.
                if self.fact_anchor.is_none_or(|(_, h)| height >= h) {
                    self.fact_anchor = Some((*root, height));
                    if self.anchor_trail.last() != Some(root) {
                        self.anchor_trail.push(*root);
                    }
                }
                Ok(*root)
            }
            _ => Err(ClientError::WrongPayload),
        }
    }

    /// Verifies that a fact record is committed under the client's latest
    /// proven anchor.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoAnchor`] before any anchor is observed;
    /// [`ClientError::BadProof`] when verification fails.
    pub fn verify_fact(
        &self,
        record: &FactRecord,
        proof: &InclusionProof,
    ) -> Result<(), ClientError> {
        let (anchor, _) = self.fact_anchor.ok_or(ClientError::NoAnchor)?;
        if FactualDatabase::verify(record, proof, &anchor) {
            Ok(())
        } else {
            Err(ClientError::BadProof)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{Platform, PlatformConfig};
    use crate::roles::Role;
    use tn_crypto::Keypair;
    use tn_supplychain::ops::PropagationOp;

    /// Builds a platform with one published item, then replays its chain
    /// into a light client.
    fn platform_with_news() -> (Platform, Hash256) {
        let mut p = Platform::new(PlatformConfig::default());
        let publisher = Keypair::from_seed(b"lc2 publisher");
        let journo = Keypair::from_seed(b"lc2 journalist");
        p.register_identity(&publisher, "LC Press", &[Role::Publisher])
            .unwrap();
        p.register_identity(&journo, "LC Journo", &[Role::ContentCreator])
            .unwrap();
        p.produce_block().unwrap();
        p.create_publisher_platform(&publisher, "LC Press").unwrap();
        p.produce_block().unwrap();
        let pid = p.newsrooms().find_platform("LC Press").unwrap();
        p.create_news_room(&publisher, pid, "energy").unwrap();
        p.produce_block().unwrap();
        let room = p.newsrooms().rooms().next().unwrap().0;
        p.authorize_journalist(&publisher, room, &journo.address())
            .unwrap();
        p.produce_block().unwrap();
        let fact = p.factdb().iter().next().unwrap().clone();
        let item = p
            .publish_news(
                &journo,
                room,
                &fact.topic,
                &fact.content,
                vec![(fact.id(), PropagationOp::Cite)],
            )
            .unwrap();
        p.produce_block().unwrap();
        (p, item)
    }

    fn sync_client(p: &Platform) -> LightClient {
        let mut client = LightClient::new();
        let mut ids = p.store().canonical_chain();
        ids.reverse();
        for id in ids {
            let block = p.store().block(&id).expect("canonical");
            client.submit_block_header(&block).expect("valid header");
        }
        client
    }

    #[test]
    fn header_chain_sync_and_tip() {
        let (p, _) = platform_with_news();
        let client = sync_client(&p);
        assert_eq!(client.len() as u64, p.height() + 1);
        assert_eq!(client.tip(), Some(p.store().head_id()));
    }

    #[test]
    fn broken_link_rejected() {
        let (p, _) = platform_with_news();
        let mut client = LightClient::new();
        let chain = p.store().canonical_chain();
        // Submit genesis, then skip a block: link broken.
        let genesis = p.store().block(chain.last().unwrap()).unwrap();
        client.submit_block_header(&genesis).unwrap();
        let head = p.store().head();
        assert!(matches!(
            client.submit_block_header(head),
            Err(ClientError::BrokenLink { .. })
        ));
    }

    #[test]
    fn tampered_header_rejected() {
        let (p, _) = platform_with_news();
        let mut client = LightClient::new();
        let head = p.store().head();
        let mut header = head.header.clone();
        header.timestamp += 1;
        assert_eq!(
            client.submit_header(header, &head.proposer_key, &head.signature),
            Err(ClientError::BadHeader)
        );
    }

    #[test]
    fn verify_news_event_end_to_end() {
        let (p, _item) = platform_with_news();
        let client = sync_client(&p);
        // Find the news transaction and its block.
        let mut found = false;
        for block_id in p.store().canonical_chain() {
            let block = p.store().block(&block_id).unwrap().clone();
            for (i, tx) in block.transactions.iter().enumerate() {
                if NewsEvent::from_payload(&tx.payload).is_some() {
                    let proof = block.prove_tx(i).unwrap();
                    let event = client.verify_news_event(&block_id, tx, &proof).unwrap();
                    assert!(!event.content.is_empty());
                    assert_eq!(event.parents.len(), 1);
                    found = true;
                    // Wrong block id fails.
                    let bogus = tn_crypto::sha256::sha256(b"bogus block");
                    assert!(matches!(
                        client.verify_news_event(&bogus, tx, &proof),
                        Err(ClientError::UnknownBlock(_))
                    ));
                }
            }
        }
        assert!(found, "news event located and verified");
    }

    #[test]
    fn anchor_then_fact_verification() {
        let (p, _) = platform_with_news();
        let mut client = sync_client(&p);
        // Feed the anchor transaction with its proof.
        let mut anchored = false;
        for block_id in p.store().canonical_chain() {
            let block = p.store().block(&block_id).unwrap().clone();
            for (i, tx) in block.transactions.iter().enumerate() {
                if matches!(&tx.payload, Payload::AnchorRoot { namespace, .. } if namespace == "factdb")
                {
                    let proof = block.prove_tx(i).unwrap();
                    client.observe_anchor(&block_id, tx, &proof).unwrap();
                    anchored = true;
                }
            }
        }
        assert!(anchored);
        assert_eq!(client.fact_anchor(), Some(p.factdb().root()));

        // Now verify a record against the proven anchor.
        let record = p.factdb().iter().next().unwrap().clone();
        let (proof, _) = p.factdb().prove(&record.id()).unwrap();
        client.verify_fact(&record, &proof).unwrap();

        // Tampered record fails.
        let mut tampered = record.clone();
        tampered.content.push_str(" [edited]");
        assert_eq!(
            client.verify_fact(&tampered, &proof),
            Err(ClientError::BadProof)
        );
    }

    #[test]
    fn append_only_audit_between_anchors() {
        // Grow the factual DB through attestation, observe both anchors,
        // and audit that the new anchor extends the old one.
        let (mut p, _) = platform_with_news();
        let c1 = Keypair::from_seed(b"lc2 checker 1");
        let c2 = Keypair::from_seed(b"lc2 checker 2");
        p.register_identity(&c1, "C1", &[crate::roles::Role::FactChecker])
            .unwrap();
        p.register_identity(&c2, "C2", &[crate::roles::Role::FactChecker])
            .unwrap();
        p.produce_block().unwrap();
        let old_size = p.factdb().len();

        let record = tn_factdb::record::FactRecord {
            source: tn_factdb::record::SourceKind::VerifiedNews,
            speaker: "Auditor".into(),
            topic: "audit".into(),
            content: "A fresh verified record for the consistency audit.".into(),
            recorded_at: 4242,
        };
        let id = p.propose_fact(record).unwrap();
        p.attest_fact(&c1, &id).unwrap();
        p.attest_fact(&c2, &id).unwrap();
        p.produce_block().unwrap();
        p.produce_block().unwrap(); // re-anchor lands

        // Sync a client and feed it every anchor transaction with proofs,
        // oldest block first (anchors must be observed in order).
        let mut client = sync_client(&p);
        let mut chain = p.store().canonical_chain();
        chain.reverse();
        for block_id in chain {
            let block = p.store().block(&block_id).unwrap().clone();
            for (i, tx) in block.transactions.iter().enumerate() {
                if matches!(&tx.payload, Payload::AnchorRoot { namespace, .. } if namespace == "factdb")
                {
                    let proof = block.prove_tx(i).unwrap();
                    client.observe_anchor(&block_id, tx, &proof).unwrap();
                }
            }
        }
        assert!(client.anchor_trail().len() >= 2, "two anchors observed");

        // The platform (full node) serves the append-only proof; the
        // client verifies it against the roots it already holds.
        let proof = p.factdb().prove_consistency(old_size).unwrap();
        client.verify_anchor_consistency(&proof).unwrap();

        // A proof over the wrong boundary fails the audit.
        let bogus = p.factdb().prove_consistency(1).unwrap();
        assert_eq!(
            client.verify_anchor_consistency(&bogus),
            Err(ClientError::HistoryRewritten)
        );
    }

    #[test]
    fn no_anchor_means_no_fact_verification() {
        let (p, _) = platform_with_news();
        let client = sync_client(&p);
        let record = p.factdb().iter().next().unwrap().clone();
        let (proof, _) = p.factdb().prove(&record.id()).unwrap();
        assert_eq!(
            client.verify_fact(&record, &proof),
            Err(ClientError::NoAnchor)
        );
    }

    #[test]
    fn forged_transaction_rejected() {
        let (p, _) = platform_with_news();
        let client = sync_client(&p);
        let head_id = p.store().head_id();
        let head = p.store().head().clone();
        // A transaction not in the block cannot be proven with another's
        // proof.
        if let (Some(tx0), Some(proof1)) = (head.transactions.first(), head.prove_tx(0)) {
            let forged =
                Transaction::signed(&Keypair::from_seed(b"forger"), 0, 0, tx0.payload.clone());
            assert_eq!(
                client.verify_transaction(&head_id, &forged, &proof1),
                Err(ClientError::BadProof)
            );
        }
    }
}
