//! The four platform projections: chain-derived views as [`BlockObserver`]s.
//!
//! Each projection is a pure function of canonical block history — it
//! consumes `(block, receipts)` pairs in order and exposes a state digest.
//! The supply-chain graph, identity registry, fact-admission ledger and
//! headline cache were previously maintained ad hoc inside `Platform`;
//! here each is an independent observer registered with the
//! [`ChainStore`](tn_chain::ChainStore), so:
//!
//! - a replay from genesis rebuilds every view bit-for-bit (the audit
//!   path — see [`ChainStore::replay_into`](tn_chain::ChainStore::replay_into));
//! - every replica of an N-validator network that commits the same blocks
//!   reports the same projection digests (the consensus path — see
//!   `tn-node`).
//!
//! Projections deliberately do not share state: the fact-admission logic
//! needed by both the factual database and the supply-chain graph is the
//! shared [`AdmissionLedger`] *type*, instantiated per projection, so each
//! observer remains independently replayable.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use tn_chain::codec::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use tn_chain::observer::BlockObserver;
use tn_chain::{blob_tags, Block, Payload, Receipt};
use tn_crypto::sha256::tagged_hash;
use tn_crypto::{Address, Hash256};
use tn_factdb::db::FactualDatabase;
use tn_factdb::record::FactRecord;
use tn_supplychain::graph::SupplyChainGraph;
use tn_supplychain::index::{index_transaction, IndexStats, NewsEvent};

use crate::roles::{IdentityRecord, IdentityRegistry};

/// Projection names, as registered with the chain store.
pub mod names {
    /// [`SupplyChainProjection`](super::SupplyChainProjection).
    pub const SUPPLY_CHAIN: &str = "supplychain";
    /// [`IdentityProjection`](super::IdentityProjection).
    pub const IDENTITY: &str = "identity";
    /// [`FactProjection`](super::FactProjection).
    pub const FACTDB: &str = "factdb";
    /// [`HeadlineProjection`](super::HeadlineProjection).
    pub const HEADLINES: &str = "headlines";
}

/// Chain-derived fact-admission state: candidates proposed on-chain
/// (`FACT_PROPOSE` blobs) and attester sets accumulated from successful
/// attestation calls to the admission contract. A record is admitted once
/// its distinct-attester count reaches the threshold.
///
/// The admission *authority* (who counts as a fact checker) is enforced
/// by the on-chain `FactDbAdmission` contract at execution time; the
/// ledger only trusts successful receipts, so it never re-implements the
/// authorization rules.
#[derive(Debug, Clone)]
pub struct AdmissionLedger {
    admission_addr: Address,
    threshold: usize,
    candidates: BTreeMap<Hash256, FactRecord>,
    attesters: BTreeMap<Hash256, BTreeSet<Address>>,
    admitted: BTreeSet<Hash256>,
}

impl AdmissionLedger {
    /// Creates an empty ledger watching `admission_addr` with the given
    /// attestation threshold.
    pub fn new(admission_addr: Address, threshold: usize) -> Self {
        AdmissionLedger {
            admission_addr,
            threshold,
            candidates: BTreeMap::new(),
            attesters: BTreeMap::new(),
            admitted: BTreeSet::new(),
        }
    }

    /// True when `record` is a known (pending or admitted) candidate.
    pub fn is_candidate(&self, record: &Hash256) -> bool {
        self.candidates.contains_key(record) || self.admitted.contains(record)
    }

    /// Distinct attesters observed for `record`.
    pub fn attestation_count(&self, record: &Hash256) -> usize {
        self.attesters.get(record).map_or(0, BTreeSet::len)
    }

    fn clear(&mut self) {
        self.candidates.clear();
        self.attesters.clear();
        self.admitted.clear();
    }

    /// Feeds one committed transaction (with its receipt) into the
    /// ledger's candidate/attestation state.
    fn observe(&mut self, from: &Address, payload: &Payload, receipt: &Receipt) {
        if !receipt.success {
            return;
        }
        match payload {
            Payload::Blob { tag, data } if *tag == blob_tags::FACT_PROPOSE => {
                if let Ok(record) = FactRecord::from_bytes(data) {
                    let id = record.id();
                    if !self.admitted.contains(&id) {
                        self.candidates.entry(id).or_insert(record);
                    }
                }
            }
            // Attest inputs are `op 1 || record hash`; any other op is
            // not an attestation. A successful receipt implies the
            // contract accepted the caller as a registered checker.
            Payload::ContractCall {
                contract, input, ..
            } if *contract == self.admission_addr && input.len() == 33 && input[0] == 1 => {
                let mut bytes = [0u8; 32];
                bytes.copy_from_slice(&input[1..]);
                let record = Hash256::from_bytes(bytes);
                self.attesters.entry(record).or_default().insert(*from);
            }
            _ => {}
        }
    }

    /// Evaluates admissions at a block boundary: every pending candidate
    /// at or above the threshold is admitted, in record-id order (so all
    /// replicas admit in the same order regardless of map internals).
    fn evaluate(&mut self) -> Vec<FactRecord> {
        let ready: Vec<Hash256> = self
            .candidates
            .keys()
            .filter(|id| self.attestation_count(id) >= self.threshold)
            .copied()
            .collect();
        let mut admitted = Vec::with_capacity(ready.len());
        for id in ready {
            let record = self.candidates.remove(&id).expect("key listed");
            self.admitted.insert(id);
            admitted.push(record);
        }
        admitted
    }

    /// Hash of the pending candidate/attester state (admitted records are
    /// digested by whatever store consumed them).
    fn pending_digest_into(&self, data: &mut Vec<u8>) {
        data.extend_from_slice(&(self.candidates.len() as u64).to_le_bytes());
        for id in self.candidates.keys() {
            data.extend_from_slice(id.as_bytes());
        }
        data.extend_from_slice(&(self.attesters.len() as u64).to_le_bytes());
        for (id, who) in &self.attesters {
            data.extend_from_slice(id.as_bytes());
            data.extend_from_slice(&(who.len() as u64).to_le_bytes());
            for a in who {
                data.extend_from_slice(a.as_hash().as_bytes());
            }
        }
    }

    /// Appends the candidate/attester/admitted sets to a checkpoint
    /// encoder. The admission address and threshold are construction-time
    /// configuration, re-supplied by whoever rebuilds the projection, so
    /// they are not serialized.
    fn save_into(&self, e: &mut Encoder) {
        e.put_varint(self.candidates.len() as u64);
        for rec in self.candidates.values() {
            e.put_bytes(&rec.to_bytes());
        }
        e.put_varint(self.attesters.len() as u64);
        for (id, who) in &self.attesters {
            e.put_hash(id).put_varint(who.len() as u64);
            for a in who {
                e.put_hash(a.as_hash());
            }
        }
        e.put_varint(self.admitted.len() as u64);
        for id in &self.admitted {
            e.put_hash(id);
        }
    }

    /// Restores the sets written by [`save_into`](AdmissionLedger::save_into),
    /// leaving the ledger untouched on error.
    fn load_from(&mut self, dec: &mut Decoder<'_>) -> Result<(), String> {
        let err = |e: DecodeError| format!("malformed admission ledger: {e}");
        let mut candidates = BTreeMap::new();
        let n = dec.get_varint().map_err(err)?;
        for _ in 0..n {
            let raw = dec.get_bytes().map_err(err)?;
            let rec = FactRecord::from_bytes(&raw)
                .map_err(|e| format!("malformed candidate record: {e}"))?;
            candidates.insert(rec.id(), rec);
        }
        let mut attesters = BTreeMap::new();
        let n = dec.get_varint().map_err(err)?;
        for _ in 0..n {
            let id = dec.get_hash().map_err(err)?;
            let m = dec.get_varint().map_err(err)?;
            let mut who = BTreeSet::new();
            for _ in 0..m {
                who.insert(Address::from_hash(dec.get_hash().map_err(err)?));
            }
            attesters.insert(id, who);
        }
        let mut admitted = BTreeSet::new();
        let n = dec.get_varint().map_err(err)?;
        for _ in 0..n {
            admitted.insert(dec.get_hash().map_err(err)?);
        }
        self.candidates = candidates;
        self.attesters = attesters;
        self.admitted = admitted;
        Ok(())
    }
}

/// Rebuilds the supply-chain graph from canonical news events, with
/// admitted fact records entering as graph roots.
#[derive(Debug)]
pub struct SupplyChainProjection {
    seed: Vec<FactRecord>,
    graph: SupplyChainGraph,
    stats: IndexStats,
    ledger: AdmissionLedger,
}

impl SupplyChainProjection {
    /// Creates the projection. `seed` is the genesis factual corpus; its
    /// records are planted as graph roots on every (re)build.
    pub fn new(seed: Vec<FactRecord>, admission_addr: Address, threshold: usize) -> Self {
        let mut p = SupplyChainProjection {
            seed,
            graph: SupplyChainGraph::new(),
            stats: IndexStats::default(),
            ledger: AdmissionLedger::new(admission_addr, threshold),
        };
        p.reset();
        p
    }

    /// The derived graph.
    pub fn graph(&self) -> &SupplyChainGraph {
        &self.graph
    }

    /// Indexing statistics over all observed blocks.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    fn plant_root(graph: &mut SupplyChainGraph, rec: &FactRecord) {
        // A duplicate root (record already planted) is harmless.
        graph
            .add_fact_root(rec.id(), &rec.content, &rec.topic, rec.recorded_at)
            .ok();
    }
}

impl BlockObserver for SupplyChainProjection {
    fn name(&self) -> &'static str {
        names::SUPPLY_CHAIN
    }

    fn on_block(&mut self, block: &Block, receipts: &[Receipt]) {
        for (tx, receipt) in block.transactions.iter().zip(receipts) {
            if !receipt.success {
                continue;
            }
            index_transaction(tx, &mut self.graph, &mut self.stats);
            self.ledger.observe(&tx.from, &tx.payload, receipt);
        }
        for rec in self.ledger.evaluate() {
            Self::plant_root(&mut self.graph, &rec);
        }
    }

    fn digest(&self) -> Hash256 {
        let mut data = Vec::new();
        data.extend_from_slice(self.graph.digest().as_bytes());
        for n in [
            self.stats.indexed,
            self.stats.malformed,
            self.stats.rejected,
            self.stats.ignored,
        ] {
            data.extend_from_slice(&(n as u64).to_le_bytes());
        }
        self.ledger.pending_digest_into(&mut data);
        tagged_hash("TN/proj-supplychain", &data)
    }

    fn reset(&mut self) {
        self.graph = SupplyChainGraph::new();
        self.stats = IndexStats::default();
        self.ledger.clear();
        for rec in &self.seed {
            Self::plant_root(&mut self.graph, rec);
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut e = Encoder::new();
        e.put_bytes(&self.graph.to_bytes());
        for n in [
            self.stats.indexed,
            self.stats.malformed,
            self.stats.rejected,
            self.stats.ignored,
        ] {
            e.put_varint(n as u64);
        }
        self.ledger.save_into(&mut e);
        Some(e.finish())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let err = |e: DecodeError| format!("malformed supply-chain checkpoint: {e}");
        let mut dec = Decoder::new(bytes);
        let raw = dec.get_bytes().map_err(err)?;
        let graph = SupplyChainGraph::from_bytes(&raw)?;
        let mut stats = IndexStats::default();
        for field in [
            &mut stats.indexed,
            &mut stats.malformed,
            &mut stats.rejected,
            &mut stats.ignored,
        ] {
            *field = dec.get_varint().map_err(err)? as usize;
        }
        self.ledger.load_from(&mut dec)?;
        dec.expect_end().map_err(err)?;
        self.graph = graph;
        self.stats = stats;
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Rebuilds the verified-identity registry from IDENTITY blobs.
#[derive(Debug, Default)]
pub struct IdentityProjection {
    registry: IdentityRegistry,
}

impl IdentityProjection {
    /// Creates an empty projection.
    pub fn new() -> Self {
        Self::default()
    }

    /// The derived registry.
    pub fn registry(&self) -> &IdentityRegistry {
        &self.registry
    }
}

impl BlockObserver for IdentityProjection {
    fn name(&self) -> &'static str {
        names::IDENTITY
    }

    fn on_block(&mut self, block: &Block, receipts: &[Receipt]) {
        for (tx, receipt) in block.transactions.iter().zip(receipts) {
            if !receipt.success {
                continue;
            }
            if let Payload::Blob { tag, data } = &tx.payload {
                if *tag == blob_tags::IDENTITY {
                    if let Ok(rec) = IdentityRecord::from_bytes(data) {
                        self.registry.register(tx.from, &rec.name, &rec.roles);
                    }
                }
            }
        }
    }

    fn digest(&self) -> Hash256 {
        self.registry.digest()
    }

    fn reset(&mut self) {
        self.registry = IdentityRegistry::new();
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.registry.to_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.registry = IdentityRegistry::from_bytes(bytes)?;
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Rebuilds the factual database from the genesis corpus plus every
/// record admitted through the on-chain propose/attest pipeline.
#[derive(Debug)]
pub struct FactProjection {
    seed: Vec<FactRecord>,
    db: FactualDatabase,
    ledger: AdmissionLedger,
    /// Records admitted by blocks observed since the last
    /// [`take_newly_admitted`](FactProjection::take_newly_admitted) call.
    /// Deliberately excluded from the digest: it is a delivery buffer for
    /// the driving node, not projection state.
    newly_admitted: Vec<Hash256>,
}

impl FactProjection {
    /// Creates the projection over the genesis corpus `seed`.
    pub fn new(seed: Vec<FactRecord>, admission_addr: Address, threshold: usize) -> Self {
        let mut p = FactProjection {
            seed,
            db: FactualDatabase::new(),
            ledger: AdmissionLedger::new(admission_addr, threshold),
            newly_admitted: Vec::new(),
        };
        p.reset();
        p
    }

    /// The derived factual database.
    pub fn db(&self) -> &FactualDatabase {
        &self.db
    }

    /// The genesis seed corpus this projection was built with.
    pub fn seed(&self) -> &[FactRecord] {
        &self.seed
    }

    /// The attestation threshold.
    pub fn threshold(&self) -> usize {
        self.ledger.threshold
    }

    /// The chain-derived admission ledger.
    pub fn ledger(&self) -> &AdmissionLedger {
        &self.ledger
    }

    /// Drains the records admitted since the last call (the platform uses
    /// this to report admissions and trigger re-anchoring).
    pub fn take_newly_admitted(&mut self) -> Vec<Hash256> {
        std::mem::take(&mut self.newly_admitted)
    }
}

impl BlockObserver for FactProjection {
    fn name(&self) -> &'static str {
        names::FACTDB
    }

    fn on_block(&mut self, block: &Block, receipts: &[Receipt]) {
        for (tx, receipt) in block.transactions.iter().zip(receipts) {
            self.ledger.observe(&tx.from, &tx.payload, receipt);
        }
        for rec in self.ledger.evaluate() {
            let id = rec.id();
            if self.db.append(rec).is_ok() {
                self.newly_admitted.push(id);
            }
        }
    }

    fn digest(&self) -> Hash256 {
        let mut data = Vec::new();
        data.extend_from_slice(self.db.root().as_bytes());
        data.extend_from_slice(&(self.db.len() as u64).to_le_bytes());
        self.ledger.pending_digest_into(&mut data);
        tagged_hash("TN/proj-factdb", &data)
    }

    fn reset(&mut self) {
        self.db = FactualDatabase::new();
        self.ledger.clear();
        self.newly_admitted.clear();
        for rec in &self.seed {
            self.db
                .append(rec.clone())
                .expect("seed corpus records are unique");
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // The database is fully reconstructible from its append-ordered
        // record log, so that is all the checkpoint carries for it.
        let mut e = Encoder::new();
        e.put_varint(self.db.len() as u64);
        for rec in self.db.iter() {
            e.put_bytes(&rec.to_bytes());
        }
        self.ledger.save_into(&mut e);
        e.put_varint(self.newly_admitted.len() as u64);
        for id in &self.newly_admitted {
            e.put_hash(id);
        }
        Some(e.finish())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let err = |e: DecodeError| format!("malformed factdb checkpoint: {e}");
        let mut dec = Decoder::new(bytes);
        let n = dec.get_varint().map_err(err)?;
        let mut db = FactualDatabase::new();
        for _ in 0..n {
            let raw = dec.get_bytes().map_err(err)?;
            let rec =
                FactRecord::from_bytes(&raw).map_err(|e| format!("malformed fact record: {e}"))?;
            db.append(rec)
                .map_err(|e| format!("fact record replay rejected: {e}"))?;
        }
        let mut ledger = self.ledger.clone();
        ledger.load_from(&mut dec)?;
        let m = dec.get_varint().map_err(err)?;
        let mut newly_admitted = Vec::with_capacity((m as usize).min(1024));
        for _ in 0..m {
            newly_admitted.push(dec.get_hash().map_err(err)?);
        }
        dec.expect_end().map_err(err)?;
        self.db = db;
        self.ledger = ledger;
        self.newly_admitted = newly_admitted;
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Caches the headline of every news event that carries one, keyed by
/// item id — the input to headline/body stance analysis.
#[derive(Debug, Default)]
pub struct HeadlineProjection {
    headlines: HashMap<Hash256, String>,
}

impl HeadlineProjection {
    /// Creates an empty projection.
    pub fn new() -> Self {
        Self::default()
    }

    /// The headline recorded for `item`, if any.
    pub fn headline(&self, item: &Hash256) -> Option<&str> {
        self.headlines.get(item).map(String::as_str)
    }

    /// Number of cached headlines.
    pub fn len(&self) -> usize {
        self.headlines.len()
    }

    /// True when no headlines are cached.
    pub fn is_empty(&self) -> bool {
        self.headlines.is_empty()
    }
}

impl BlockObserver for HeadlineProjection {
    fn name(&self) -> &'static str {
        names::HEADLINES
    }

    fn on_block(&mut self, block: &Block, receipts: &[Receipt]) {
        for (tx, receipt) in block.transactions.iter().zip(receipts) {
            if !receipt.success {
                continue;
            }
            if let Some(Ok(event)) = NewsEvent::from_payload(&tx.payload) {
                if !event.headline.is_empty() {
                    let id = tn_supplychain::graph::item_id(
                        &tx.from,
                        &event.content,
                        event.published_at,
                    );
                    self.headlines.insert(id, event.headline);
                }
            }
        }
    }

    fn digest(&self) -> Hash256 {
        let mut entries: Vec<_> = self.headlines.iter().collect();
        entries.sort_by_key(|(id, _)| **id);
        let mut data = Vec::new();
        for (id, headline) in entries {
            data.extend_from_slice(id.as_bytes());
            data.extend_from_slice(&(headline.len() as u64).to_le_bytes());
            data.extend_from_slice(headline.as_bytes());
        }
        tagged_hash("TN/proj-headlines", &data)
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut entries: Vec<_> = self.headlines.iter().collect();
        entries.sort_by_key(|(id, _)| **id);
        let mut e = Encoder::new();
        e.put_varint(entries.len() as u64);
        for (id, headline) in entries {
            e.put_hash(id).put_str(headline);
        }
        Some(e.finish())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let err = |e: DecodeError| format!("malformed headline checkpoint: {e}");
        let mut dec = Decoder::new(bytes);
        let n = dec.get_varint().map_err(err)?;
        let mut headlines = HashMap::new();
        for _ in 0..n {
            let id = dec.get_hash().map_err(err)?;
            headlines.insert(id, dec.get_str().map_err(err)?);
        }
        dec.expect_end().map_err(err)?;
        self.headlines = headlines;
        Ok(())
    }

    fn reset(&mut self) {
        self.headlines.clear();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_chain::codec::Encodable;
    use tn_chain::prelude::*;
    use tn_crypto::Keypair;
    use tn_factdb::record::SourceKind;

    fn record(n: u64) -> FactRecord {
        FactRecord {
            source: SourceKind::VerifiedNews,
            speaker: format!("Speaker {n}"),
            topic: "energy".into(),
            content: format!("Statement number {n} was made on the record."),
            recorded_at: n,
        }
    }

    #[test]
    fn admission_ledger_admits_at_threshold_in_id_order() {
        let addr = Keypair::from_seed(b"admission").address();
        let mut ledger = AdmissionLedger::new(addr, 2);
        let (r1, r2) = (record(1), record(2));
        let (id1, id2) = (r1.id(), r2.id());
        let ok = Receipt {
            tx_id: Hash256::ZERO,
            success: true,
            gas_used: 0,
            output: Vec::new(),
            error: None,
        };

        for rec in [&r1, &r2] {
            ledger.observe(
                &Address::SYSTEM,
                &Payload::Blob {
                    tag: blob_tags::FACT_PROPOSE,
                    data: rec.to_bytes(),
                },
                &ok,
            );
        }
        assert!(ledger.is_candidate(&id1) && ledger.is_candidate(&id2));
        assert!(ledger.evaluate().is_empty(), "no attestations yet");

        let attest = |id: &Hash256| {
            let input = tn_contracts::builtin::admission_attest(id);
            Payload::ContractCall {
                contract: addr,
                input,
                gas_limit: 10_000,
            }
        };
        let c1 = Keypair::from_seed(b"c1").address();
        let c2 = Keypair::from_seed(b"c2").address();
        for id in [&id1, &id2] {
            ledger.observe(&c1, &attest(id), &ok);
            ledger.observe(&c2, &attest(id), &ok);
        }
        let admitted = ledger.evaluate();
        let mut expected = [(id1, r1), (id2, r2)];
        expected.sort_by_key(|(id, _)| *id);
        assert_eq!(
            admitted.iter().map(FactRecord::id).collect::<Vec<_>>(),
            expected.iter().map(|(id, _)| *id).collect::<Vec<_>>()
        );
        assert!(ledger.evaluate().is_empty(), "admission is one-shot");
    }

    #[test]
    fn admission_ledger_ignores_failed_receipts() {
        let addr = Keypair::from_seed(b"admission").address();
        let mut ledger = AdmissionLedger::new(addr, 1);
        let failed = Receipt {
            tx_id: Hash256::ZERO,
            success: false,
            gas_used: 0,
            output: Vec::new(),
            error: Some("not a checker".into()),
        };
        let input = tn_contracts::builtin::admission_attest(&record(1).id());
        ledger.observe(
            &Address::SYSTEM,
            &Payload::ContractCall {
                contract: addr,
                input,
                gas_limit: 10_000,
            },
            &failed,
        );
        assert_eq!(ledger.attestation_count(&record(1).id()), 0);
    }

    #[test]
    fn projections_replay_to_identical_digests() {
        // Build a small chain carrying one of every observed payload kind,
        // then check that feeding it twice produces identical digests.
        let author = Keypair::from_seed(b"author");
        let validator = Keypair::from_seed(b"validator");
        let admission_addr = Keypair::from_seed(b"admission").address();
        let genesis = State::genesis([(author.address(), 10_000)]);
        let mut store = ChainStore::new(genesis, &validator);

        let identity = IdentityRecord {
            name: "Jane".into(),
            roles: vec![crate::roles::Role::ContentCreator],
        };
        let event = tn_supplychain::index::NewsEvent {
            headline: "A headline".into(),
            content: "Original story text.".into(),
            topic: "energy".into(),
            room: 1,
            parents: vec![],
            published_at: 1,
        };
        let txs = vec![
            Transaction::signed(
                &author,
                0,
                1,
                Payload::Blob {
                    tag: blob_tags::IDENTITY,
                    data: identity.to_bytes(),
                },
            ),
            Transaction::signed(&author, 1, 1, event.into_payload()),
            Transaction::signed(
                &author,
                2,
                1,
                Payload::Blob {
                    tag: blob_tags::FACT_PROPOSE,
                    data: record(9).to_bytes(),
                },
            ),
        ];
        let block = store.propose(&validator, 1, txs, &mut NoExecutor);
        store.import(block, &mut NoExecutor).unwrap();

        let seed = vec![record(100), record(101)];
        let fresh = || -> Vec<Box<dyn BlockObserver>> {
            vec![
                Box::new(SupplyChainProjection::new(seed.clone(), admission_addr, 2)),
                Box::new(IdentityProjection::new()),
                Box::new(FactProjection::new(seed.clone(), admission_addr, 2)),
                Box::new(HeadlineProjection::new()),
            ]
        };
        let mut a = fresh();
        let mut b = fresh();
        store.replay_into(&mut a);
        store.replay_into(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.digest(), y.digest(), "projection {}", x.name());
        }
        // The projections actually saw the data.
        let sc = a[0]
            .as_any()
            .downcast_ref::<SupplyChainProjection>()
            .unwrap();
        assert_eq!(sc.stats().indexed, 1);
        assert_eq!(sc.graph().root_count(), 2);
        let idp = a[1].as_any().downcast_ref::<IdentityProjection>().unwrap();
        assert!(idp.registry().is_verified(&author.address()));
        let fp = a[2].as_any().downcast_ref::<FactProjection>().unwrap();
        assert!(fp.ledger().is_candidate(&record(9).id()));
        let hp = a[3].as_any().downcast_ref::<HeadlineProjection>().unwrap();
        assert_eq!(hp.len(), 1);
    }

    #[test]
    fn projection_checkpoints_round_trip() {
        // Drive every projection with real payloads, checkpoint each one,
        // load the bytes into a fresh instance, and require digest
        // equality — the property the storage-recovery path depends on.
        let author = Keypair::from_seed(b"author");
        let validator = Keypair::from_seed(b"validator");
        let admission_addr = Keypair::from_seed(b"admission").address();
        let genesis = State::genesis([(author.address(), 10_000)]);
        let mut store = ChainStore::new(genesis, &validator);

        let identity = IdentityRecord {
            name: "Jane".into(),
            roles: vec![crate::roles::Role::ContentCreator],
        };
        let event = tn_supplychain::index::NewsEvent {
            headline: "A headline".into(),
            content: "Original story text.".into(),
            topic: "energy".into(),
            room: 1,
            parents: vec![],
            published_at: 1,
        };
        let txs = vec![
            Transaction::signed(
                &author,
                0,
                1,
                Payload::Blob {
                    tag: blob_tags::IDENTITY,
                    data: identity.to_bytes(),
                },
            ),
            Transaction::signed(&author, 1, 1, event.into_payload()),
            Transaction::signed(
                &author,
                2,
                1,
                Payload::Blob {
                    tag: blob_tags::FACT_PROPOSE,
                    data: record(9).to_bytes(),
                },
            ),
        ];
        let block = store.propose(&validator, 1, txs, &mut NoExecutor);
        store.import(block, &mut NoExecutor).unwrap();

        let seed = vec![record(100), record(101)];
        let fresh = || -> Vec<Box<dyn BlockObserver>> {
            vec![
                Box::new(SupplyChainProjection::new(seed.clone(), admission_addr, 2)),
                Box::new(IdentityProjection::new()),
                Box::new(FactProjection::new(seed.clone(), admission_addr, 2)),
                Box::new(HeadlineProjection::new()),
            ]
        };
        let mut live = fresh();
        store.replay_into(&mut live);
        let mut restored = fresh();
        for (src, dst) in live.iter().zip(restored.iter_mut()) {
            let bytes = src.save_state().expect("projections support checkpoints");
            dst.load_state(&bytes).expect("load succeeds");
            assert_eq!(src.digest(), dst.digest(), "projection {}", src.name());
            // A second save of the restored state is byte-identical.
            assert_eq!(dst.save_state().unwrap(), bytes, "{}", src.name());
            // Trailing garbage is rejected, not silently ignored.
            let mut bad = bytes.clone();
            bad.push(0xFF);
            assert!(dst.load_state(&bad).is_err(), "{}", src.name());
        }
    }
}
