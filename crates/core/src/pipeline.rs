//! The layered block-execution pipeline.
//!
//! `ExecutionPipeline` is the deterministic core every node runs: a
//! [`ChainStore`] with the contract registry as executor and the four
//! platform projections (supply chain, identities, factual database,
//! headlines) registered as block observers. Everything above it —
//! [`Platform`](crate::platform::Platform) locally, `tn-node` validators
//! in a consensus network — is a driver that decides *which* transactions
//! to commit; the pipeline guarantees that committing the same blocks
//! yields the same state and the same projection digests everywhere.

use tn_chain::observer::BlockObserver;
use tn_chain::prelude::*;
use tn_contracts::builtin::{
    FactDbAdmission, IncentiveContract, NewsroomRegistry, RankingContract,
};
use tn_contracts::executor::ContractRegistry;
use tn_crypto::{Address, Hash256, Keypair};
use tn_factdb::db::FactualDatabase;
use tn_factdb::record::FactRecord;
use tn_storage::{Storage, StorageConfig};
use tn_supplychain::graph::SupplyChainGraph;
use tn_supplychain::index::IndexStats;
use tn_telemetry::TelemetrySink;
use tn_trace::{lanes, replica_span_id, TraceId, TraceSink};

use crate::platform::PlatformConfig;
use crate::projections::{
    names, FactProjection, HeadlineProjection, IdentityProjection, SupplyChainProjection,
};
use crate::roles::IdentityRegistry;

/// Checkpoint-extension key under which the pipeline stores the contract
/// registry's serialized state (distinct from every projection name).
pub const REGISTRY_EXTENSION: &str = "contracts.registry";

/// Well-known addresses of the four governance built-in contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuiltinAddrs {
    /// Newsroom registry (platforms, rooms, authorizations).
    pub newsroom: Address,
    /// Crowd-rating contract.
    pub ranking: Address,
    /// Incentive-points contract.
    pub incentive: Address,
    /// Fact-admission attestation gate.
    pub admission: Address,
}

/// Installs the four governance built-ins into a fresh registry.
fn install_builtins(governor: Address, fact_threshold: usize) -> (ContractRegistry, BuiltinAddrs) {
    let mut registry = ContractRegistry::new();
    let addrs = BuiltinAddrs {
        newsroom: registry.install_builtin(Box::new(NewsroomRegistry::new())),
        ranking: registry.install_builtin(Box::new(RankingContract::new(governor))),
        incentive: registry.install_builtin(Box::new(IncentiveContract::new(governor))),
        admission: registry
            .install_builtin(Box::new(FactDbAdmission::new(governor, fact_threshold))),
    };
    (registry, addrs)
}

/// The canonical projection set, in registration order.
fn projection_set(
    seed_corpus: Vec<FactRecord>,
    admission: Address,
    fact_threshold: usize,
) -> Vec<Box<dyn BlockObserver>> {
    vec![
        Box::new(SupplyChainProjection::new(
            seed_corpus.clone(),
            admission,
            fact_threshold,
        )),
        Box::new(IdentityProjection::new()),
        Box::new(FactProjection::new(seed_corpus, admission, fact_threshold)),
        Box::new(HeadlineProjection::new()),
    ]
}

/// A deterministically bootstrapped replica: the well-known governance
/// keys plus a pipeline whose chain already holds the genesis-follow
/// anchor block. Every party built from the same [`PlatformConfig`] —
/// the local [`Platform`](crate::platform::Platform), every `tn-node`
/// validator — starts from this byte-identical prefix.
#[derive(Debug)]
pub struct Bootstrap {
    /// Contract owner / grant issuer (seeded key, same on all replicas).
    pub governor: Keypair,
    /// Block proposer (seeded key, same on all replicas).
    pub validator: Keypair,
    /// The pipeline, advanced past the factual-DB anchor block.
    pub pipeline: ExecutionPipeline,
}

/// Builds the canonical replica start state for `config`: genesis balances
/// for governor and validator, the four governance contracts, the seeded
/// factual corpus, and one committed block anchoring the corpus root.
pub fn bootstrap(config: &PlatformConfig) -> Bootstrap {
    try_bootstrap(config).expect("storage backend initialization")
}

/// [`bootstrap`], surfacing storage-backend initialization failures (a
/// disk-backed replica's directory may be unwritable or already in use)
/// instead of panicking.
///
/// # Errors
///
/// [`ChainError::Storage`] when the configured backend cannot be created.
pub fn try_bootstrap(config: &PlatformConfig) -> Result<Bootstrap, ChainError> {
    let governor = Keypair::from_seed(b"tn-platform-governor");
    let validator = Keypair::from_seed(b"tn-platform-validator");
    let genesis = State::genesis([
        (governor.address(), 1_000_000_000),
        (validator.address(), 1_000_000),
    ]);
    let seed_corpus: Vec<FactRecord> = tn_factdb::corpus::generate_corpus(&config.factdb_seed)
        .into_iter()
        .collect();
    let mut pipeline = ExecutionPipeline::with_storage(
        genesis,
        &validator,
        governor.address(),
        config.fact_threshold,
        seed_corpus,
        config.storage.clone(),
    )?;
    pipeline.set_verify_workers(config.verify_workers);
    pipeline.set_verify_batch_chunk(config.verify_batch_chunk);
    let root = pipeline.factdb().root();
    let anchor = Transaction::signed(
        &governor,
        0,
        config.fee,
        Payload::AnchorRoot {
            namespace: "factdb".into(),
            root,
        },
    );
    pipeline
        .commit_batch(&validator, 1, vec![anchor])
        .expect("genesis anchor block");
    Ok(Bootstrap {
        governor,
        validator,
        pipeline,
    })
}

/// Reopens a disk-backed replica from its storage directory: re-derives
/// the well-known governance keys and seed corpus, restores the newest
/// checkpoint, and replays the durable WAL tail. Returns the bootstrap
/// and the number of tail blocks replayed — the measure that recovery
/// cost is proportional to blocks since the last checkpoint.
///
/// # Errors
///
/// [`ChainError::Checkpoint`] when `config` selects the in-memory
/// backend (there is nothing on disk to recover) or the stored state is
/// unusable; [`ChainError::Storage`] on backend failures.
pub fn recover_bootstrap(config: &PlatformConfig) -> Result<(Bootstrap, u64), ChainError> {
    let governor = Keypair::from_seed(b"tn-platform-governor");
    let validator = Keypair::from_seed(b"tn-platform-validator");
    let seed_corpus: Vec<FactRecord> = tn_factdb::corpus::generate_corpus(&config.factdb_seed)
        .into_iter()
        .collect();
    let dir = match &config.storage.backend {
        tn_storage::BackendKind::Disk(dir) => dir.clone(),
        tn_storage::BackendKind::Mem => {
            return Err(ChainError::Checkpoint(
                "recovery requires a disk storage backend".into(),
            ))
        }
    };
    let backend = Box::new(tn_storage::DiskBackend::open(&dir, &config.storage)?);
    let (mut pipeline, replayed) = ExecutionPipeline::recover(
        backend,
        &config.storage,
        governor.address(),
        config.fact_threshold,
        seed_corpus,
    )?;
    pipeline.set_verify_workers(config.verify_workers);
    pipeline.set_verify_batch_chunk(config.verify_batch_chunk);
    Ok((
        Bootstrap {
            governor,
            validator,
            pipeline,
        },
        replayed,
    ))
}

/// Rebuilds a replica from a [`ChainStore::snapshot`] taken by a node of
/// the same `config`: re-derives the well-known governance keys and seed
/// corpus, then restores the pipeline — every block re-validated and
/// re-executed, projections replayed over the restored chain. This is the
/// crash-recovery path: a restarted validator gets back exactly the state
/// it persisted, or an error if the ledger was damaged.
///
/// # Errors
///
/// Decode or validation errors from the snapshot.
pub fn restore_bootstrap(
    config: &PlatformConfig,
    snapshot: &[u8],
) -> Result<Bootstrap, ChainError> {
    let governor = Keypair::from_seed(b"tn-platform-governor");
    let validator = Keypair::from_seed(b"tn-platform-validator");
    let seed_corpus: Vec<FactRecord> = tn_factdb::corpus::generate_corpus(&config.factdb_seed)
        .into_iter()
        .collect();
    let mut pipeline = ExecutionPipeline::restore(
        snapshot,
        governor.address(),
        config.fact_threshold,
        seed_corpus,
    )?;
    pipeline.set_verify_workers(config.verify_workers);
    pipeline.set_verify_batch_chunk(config.verify_batch_chunk);
    Ok(Bootstrap {
        governor,
        validator,
        pipeline,
    })
}

/// The deterministic execution core: chain store + contract executor +
/// registered projections.
pub struct ExecutionPipeline {
    store: ChainStore,
    registry: ContractRegistry,
    addrs: BuiltinAddrs,
    telemetry: TelemetrySink,
    trace: TraceSink,
}

impl std::fmt::Debug for ExecutionPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionPipeline")
            .field("height", &self.store.height())
            .field("projections", &self.store.projection_digests().len())
            .finish()
    }
}

impl ExecutionPipeline {
    /// Builds a pipeline: genesis state, the four governance built-ins
    /// owned by `governor`, and the four projections seeded with the
    /// genesis factual corpus. Two pipelines built with identical
    /// arguments are bit-identical, which is what lets every validator of
    /// a network boot the same replica.
    pub fn new(
        genesis: State,
        validator: &Keypair,
        governor: Address,
        fact_threshold: usize,
        seed_corpus: Vec<FactRecord>,
    ) -> ExecutionPipeline {
        Self::with_storage(
            genesis,
            validator,
            governor,
            fact_threshold,
            seed_corpus,
            StorageConfig::default(),
        )
        .expect("in-memory storage cannot fail to initialize")
    }

    /// [`ExecutionPipeline::new`] on an explicit storage configuration —
    /// the entry point for disk-backed replicas.
    ///
    /// # Errors
    ///
    /// [`ChainError::Storage`] when the backend cannot be initialized
    /// (e.g. the disk directory already holds data; use
    /// [`ExecutionPipeline::recover`] for that).
    pub fn with_storage(
        genesis: State,
        validator: &Keypair,
        governor: Address,
        fact_threshold: usize,
        seed_corpus: Vec<FactRecord>,
        storage: StorageConfig,
    ) -> Result<ExecutionPipeline, ChainError> {
        let (registry, addrs) = install_builtins(governor, fact_threshold);
        let mut store = ChainStore::with_config(genesis, validator, storage)?;
        for projection in projection_set(seed_corpus, addrs.admission, fact_threshold) {
            store.register_observer(projection);
        }
        Ok(ExecutionPipeline {
            store,
            registry,
            addrs,
            telemetry: TelemetrySink::disabled(),
            trace: TraceSink::disabled(),
        })
    }

    /// Reopens a pipeline from an existing storage backend: restores the
    /// newest usable checkpoint (chain state, contract registry, all four
    /// projections), then replays the durable WAL tail through full
    /// re-execution. Returns the pipeline and the number of replayed
    /// blocks — recovery work is proportional to blocks since the last
    /// checkpoint, not to chain length. The construction parameters must
    /// match the ones the stored chain was built with.
    ///
    /// # Errors
    ///
    /// [`ChainError::Checkpoint`] when checkpointed state is unusable,
    /// [`ChainError::Storage`] on backend failures.
    pub fn recover(
        backend: Box<dyn Storage>,
        config: &StorageConfig,
        governor: Address,
        fact_threshold: usize,
        seed_corpus: Vec<FactRecord>,
    ) -> Result<(ExecutionPipeline, u64), ChainError> {
        let (mut store, cp) = ChainStore::open_recovering(backend, config)?;
        let (mut registry, addrs) = install_builtins(governor, fact_threshold);
        if let Some(bytes) = cp.extension(REGISTRY_EXTENSION) {
            registry.load_state(bytes).map_err(ChainError::Checkpoint)?;
        } else if cp.height != 0 {
            return Err(ChainError::Checkpoint(
                "checkpoint missing contract-registry state".into(),
            ));
        }
        for mut projection in projection_set(seed_corpus, addrs.admission, fact_threshold) {
            match cp.extension(projection.name()) {
                Some(bytes) => {
                    projection
                        .load_state(bytes)
                        .map_err(ChainError::Checkpoint)?;
                    store.register_observer_restored(projection);
                }
                // The genesis checkpoint (written before observers are
                // registered) has no extensions; fresh projections are
                // correct there because the tail replay starts at
                // height 1.
                None if cp.height == 0 => store.register_observer_restored(projection),
                None => {
                    return Err(ChainError::Checkpoint(format!(
                        "checkpoint missing projection '{}'",
                        projection.name()
                    )))
                }
            }
        }
        let mut pipeline = ExecutionPipeline {
            store,
            registry,
            addrs,
            telemetry: TelemetrySink::disabled(),
            trace: TraceSink::disabled(),
        };
        let replayed = pipeline.store.replay_tail(&mut pipeline.registry)?;
        Ok((pipeline, replayed))
    }

    /// Routes pipeline metrics to `sink` and forwards it to the chain
    /// store (import/projection timing) and contract registry (gas and
    /// execution counters). Disabled by default.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.store.set_telemetry(sink.clone());
        self.registry.set_telemetry(sink.clone());
        self.telemetry = sink;
    }

    /// Routes pipeline spans to `sink` and forwards it to the chain store
    /// and contract registry. Each committed block records a
    /// `pipeline.commit` root span with `chain.propose`,
    /// `pipeline.handoff`, and `chain.import` children. Disabled by
    /// default.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.store.set_trace(sink.clone());
        self.registry.set_trace(sink.clone());
        self.trace = sink;
    }

    /// Sizes the chain store's verification worker pool. `0` selects the
    /// machine's available parallelism; any other value is the exact
    /// worker count (1 = sequential). Verification results are
    /// byte-identical for every worker count, so this is purely a
    /// throughput knob.
    pub fn set_verify_workers(&mut self, workers: usize) {
        let pool = if workers == 0 {
            tn_par::Pool::auto()
        } else {
            tn_par::Pool::new(workers)
        };
        self.store.set_verify_pool(pool);
    }

    /// Configures the batched-Schnorr chunk size for block verification.
    /// `0` disables batching; any other value is the number of
    /// transactions folded into one batch equation. Accept/reject
    /// outcomes are identical for every setting (a failing batch falls
    /// back to the per-transaction scan), so this is purely a
    /// throughput knob.
    pub fn set_verify_batch_chunk(&mut self, chunk: usize) {
        let policy = if chunk == 0 {
            tn_chain::BatchVerifyPolicy::disabled()
        } else {
            tn_chain::BatchVerifyPolicy {
                enabled: true,
                chunk,
            }
        };
        self.store.set_batch_policy(policy);
    }

    /// Restores a pipeline from a [`ChainStore::snapshot`]: every block is
    /// re-validated and re-executed against a fresh contract registry (so
    /// contract state is recomputed, never trusted), then the projections
    /// are registered and replayed over the restored canonical chain. The
    /// construction parameters must match the ones the snapshotted chain
    /// was built with.
    ///
    /// # Errors
    ///
    /// Decode or validation errors from the snapshot.
    pub fn restore(
        snapshot: &[u8],
        governor: Address,
        fact_threshold: usize,
        seed_corpus: Vec<FactRecord>,
    ) -> Result<ExecutionPipeline, ChainError> {
        let (mut registry, addrs) = install_builtins(governor, fact_threshold);
        let mut store = ChainStore::restore(snapshot, &mut registry)?;
        for projection in projection_set(seed_corpus, addrs.admission, fact_threshold) {
            store.register_observer(projection);
        }
        Ok(ExecutionPipeline {
            store,
            registry,
            addrs,
            telemetry: TelemetrySink::disabled(),
            trace: TraceSink::disabled(),
        })
    }

    // --- commit path -----------------------------------------------------

    /// Proposes a block from `txs` at `timestamp`, imports it, and
    /// returns it with its receipts. Projections observe the import
    /// before this returns.
    ///
    /// # Errors
    ///
    /// Chain-level import errors.
    pub fn commit_batch(
        &mut self,
        proposer: &Keypair,
        timestamp: u64,
        txs: Vec<Transaction>,
    ) -> Result<(Block, Vec<Receipt>), ChainError> {
        // Contract execution never touches chain State (only fees/nonces),
        // so the proposal pass can run without the registry; the import
        // pass executes against the authoritative registry exactly once.
        let _span = self.telemetry.span("pipeline.commit_ns");
        let trace = self.trace.clone();
        let t0 = trace.now_ns();
        let block = self
            .store
            .propose(proposer, timestamp, txs, &mut NoExecutor);
        // The block id exists only after proposing, so the root span and
        // its propose child are recorded retroactively from t0 — the ids
        // are deterministic, so children recorded later still link up.
        let block_trace = if trace.is_enabled() {
            TraceId::from_seed(block.id().as_bytes())
        } else {
            TraceId::NONE
        };
        let commit_span = replica_span_id(block_trace, "pipeline.commit", trace.replica());
        trace.complete(
            block_trace,
            "chain.propose",
            commit_span,
            lanes::PIPELINE,
            t0,
            &[("txs", block.transactions.len() as u64)],
        );
        let h0 = trace.now_ns();
        let block_for_import = block.clone();
        trace.complete(
            block_trace,
            "pipeline.handoff",
            commit_span,
            lanes::PIPELINE,
            h0,
            &[],
        );
        let receipts = self.store.import(block_for_import, &mut self.registry)?;
        trace.complete(
            block_trace,
            "pipeline.commit",
            0,
            lanes::PIPELINE,
            t0,
            &[
                ("height", block.header.height),
                ("timestamp", block.header.timestamp),
            ],
        );
        self.telemetry.incr("pipeline.batches_committed");
        self.maybe_checkpoint()?;
        Ok((block, receipts))
    }

    /// Writes a storage checkpoint if one is due (per the configured
    /// interval), bundling the contract registry's serialized state with
    /// every projection's save-state; returns its height when written.
    /// The commit paths call this automatically.
    ///
    /// # Errors
    ///
    /// [`ChainError::Storage`] on backend write failures.
    pub fn maybe_checkpoint(&mut self) -> Result<Option<u64>, ChainError> {
        if !self.store.checkpoint_due() {
            return Ok(None);
        }
        let extras = vec![(REGISTRY_EXTENSION.to_string(), self.registry.save_state())];
        self.store.checkpoint_now(extras).map(Some)
    }

    /// Forces a storage checkpoint at the current head regardless of the
    /// interval (node shutdown, tests).
    ///
    /// # Errors
    ///
    /// [`ChainError::Storage`] on backend write failures.
    pub fn checkpoint_now(&mut self) -> Result<u64, ChainError> {
        let extras = vec![(REGISTRY_EXTENSION.to_string(), self.registry.save_state())];
        self.store.checkpoint_now(extras)
    }

    /// Imports a block produced elsewhere (a peer validator) through the
    /// same executor + projection path as locally committed blocks.
    ///
    /// # Errors
    ///
    /// Chain-level import errors.
    pub fn apply_block(&mut self, block: Block) -> Result<Vec<Receipt>, ChainError> {
        let receipts = self.store.import(block, &mut self.registry)?;
        self.maybe_checkpoint()?;
        Ok(receipts)
    }

    // --- digests ---------------------------------------------------------

    /// Per-projection state digests, in registration order.
    pub fn projection_digests(&self) -> Vec<(&'static str, Hash256)> {
        self.store.projection_digests()
    }

    /// One hash summarizing the replica: head id, world-state root,
    /// contract-storage root, and the projection root. Two nodes agree on
    /// their entire derived state iff they agree on this digest.
    pub fn execution_digest(&self) -> Hash256 {
        let mut data = Vec::with_capacity(128);
        data.extend_from_slice(self.store.head_id().as_bytes());
        data.extend_from_slice(self.store.head_state().root().as_bytes());
        data.extend_from_slice(self.registry.storage_root().as_bytes());
        data.extend_from_slice(self.store.projection_root().as_bytes());
        tn_crypto::sha256::tagged_hash("TN/execution", &data)
    }

    /// Replays the canonical chain into a fresh projection set and checks
    /// every digest against the live projections, returning the replayed
    /// `(name, live digest)` pairs. This is the ledger-replay audit: it
    /// proves the registered projections are pure functions of chain
    /// history.
    pub fn verify_replay(&self) -> Result<Vec<(&'static str, Hash256)>, String> {
        let mut fresh = self.fresh_projections();
        self.store.replay_into(&mut fresh);
        let live = self.projection_digests();
        for (observer, (name, digest)) in fresh.iter().zip(&live) {
            if observer.digest() != *digest {
                return Err(format!("projection '{name}' diverged from ledger replay"));
            }
        }
        Ok(live)
    }

    /// A fresh (genesis-state) copy of the registered projection set,
    /// suitable for [`ChainStore::replay_into`].
    pub fn fresh_projections(&self) -> Vec<Box<dyn BlockObserver>> {
        let fp = self
            .store
            .observer::<FactProjection>(names::FACTDB)
            .expect("fact projection");
        projection_set(fp.seed().to_vec(), self.addrs.admission, fp.threshold())
    }

    // --- read access -----------------------------------------------------

    /// The chain store.
    pub fn store(&self) -> &ChainStore {
        &self.store
    }

    /// Mutable chain store access (observer registration, tests).
    pub fn store_mut(&mut self) -> &mut ChainStore {
        &mut self.store
    }

    /// The contract registry.
    pub fn registry(&self) -> &ContractRegistry {
        &self.registry
    }

    /// Built-in contract addresses.
    pub fn addrs(&self) -> BuiltinAddrs {
        self.addrs
    }

    /// The supply-chain graph projection's derived graph.
    pub fn graph(&self) -> &SupplyChainGraph {
        self.store
            .observer::<SupplyChainProjection>(names::SUPPLY_CHAIN)
            .expect("supply-chain projection registered")
            .graph()
    }

    /// Indexing statistics from the supply-chain projection.
    pub fn index_stats(&self) -> &IndexStats {
        self.store
            .observer::<SupplyChainProjection>(names::SUPPLY_CHAIN)
            .expect("supply-chain projection registered")
            .stats()
    }

    /// The identity projection's derived registry.
    pub fn identities(&self) -> &IdentityRegistry {
        self.store
            .observer::<IdentityProjection>(names::IDENTITY)
            .expect("identity projection registered")
            .registry()
    }

    /// The fact projection's derived database.
    pub fn factdb(&self) -> &FactualDatabase {
        self.store
            .observer::<FactProjection>(names::FACTDB)
            .expect("fact projection")
            .db()
    }

    /// The fact projection (for candidate queries).
    pub fn fact_projection(&self) -> &FactProjection {
        self.store
            .observer::<FactProjection>(names::FACTDB)
            .expect("fact projection")
    }

    /// Drains fact records admitted since the last call.
    pub fn take_newly_admitted(&mut self) -> Vec<Hash256> {
        self.store
            .observer_mut::<FactProjection>(names::FACTDB)
            .expect("fact projection")
            .take_newly_admitted()
    }

    /// The headline recorded on-chain for `item`, if any.
    pub fn headline(&self, item: &Hash256) -> Option<&str> {
        self.store
            .observer::<HeadlineProjection>(names::HEADLINES)
            .expect("headline projection")
            .headline(item)
    }
}
