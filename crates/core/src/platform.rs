//! The AI blockchain trusting-news platform (Figure 1).
//!
//! [`Platform`] is a thin facade over the layered block-execution
//! pipeline: it holds the governor/validator keys, a fee-prioritised
//! mempool, and the AI detector, and drives an
//! [`ExecutionPipeline`] — the
//! deterministic core in which the chain store executes blocks and
//! notifies the four registered projections (supply-chain graph, identity
//! registry, factual database, headline cache). All state mutations flow
//! through signed transactions and block production — the platform never
//! mutates derived state out-of-band, so the ledger remains the complete
//! audit trail the paper's accountability story requires, and
//! [`Platform::verify_replay`] can prove it by rebuilding every
//! projection from genesis. (Consensus itself lives in `tn-consensus` and
//! is wired to the same pipeline by `tn-node`; here a single validator
//! produces blocks, which is faithful to a one-node deployment of the
//! permissioned network.)

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use tn_aidetect::ensemble::{EnsembleDetector, EnsembleWeights};
use tn_chain::codec::Encodable;
use tn_chain::prelude::*;
use tn_contracts::builtin::{
    admission_attest, admission_register_checker, newsroom_authorize, newsroom_create_room,
    newsroom_register_platform, ranking_submit, FactDbAdmission, IncentiveContract,
    NewsroomRegistry, RankingContract,
};
use tn_crypto::{Address, Hash256, Keypair};
use tn_factdb::corpus::CorpusConfig;
use tn_factdb::db::FactualDatabase;
use tn_factdb::record::FactRecord;
use tn_storage::StorageConfig;
use tn_supplychain::graph::{SupplyChainGraph, TraceResult};
use tn_supplychain::index::{IndexStats, NewsEvent};
use tn_supplychain::ops::PropagationOp;
use tn_supplychain::ranking::trace_score;

use crate::pipeline::ExecutionPipeline;
use crate::roles::{IdentityRecord, IdentityRegistry, Role};

/// Platform-level errors.
#[derive(Debug)]
pub enum PlatformError {
    /// Underlying chain rejection.
    Chain(ChainError),
    /// Supply-chain graph rejection.
    Graph(tn_supplychain::graph::GraphError),
    /// Contract-call failure.
    Contract(String),
    /// Caller lacks a required role or authorization.
    NotAuthorized(String),
    /// The account is not a verified identity.
    NotVerified(Address),
    /// Unknown news item.
    UnknownItem(Hash256),
    /// The mempool rejected a platform-built transaction.
    Mempool(ChainError),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Chain(e) => write!(f, "chain error: {e}"),
            PlatformError::Graph(e) => write!(f, "graph error: {e}"),
            PlatformError::Contract(e) => write!(f, "contract error: {e}"),
            PlatformError::NotAuthorized(e) => write!(f, "not authorized: {e}"),
            PlatformError::NotVerified(a) => write!(f, "account {} not verified", a.short()),
            PlatformError::UnknownItem(h) => write!(f, "unknown news item {}", h.short()),
            PlatformError::Mempool(e) => write!(f, "mempool rejection: {e}"),
        }
    }
}

impl Error for PlatformError {}

impl From<ChainError> for PlatformError {
    fn from(e: ChainError) -> Self {
        PlatformError::Chain(e)
    }
}

impl From<tn_supplychain::graph::GraphError> for PlatformError {
    fn from(e: tn_supplychain::graph::GraphError) -> Self {
        PlatformError::Graph(e)
    }
}

/// Ranking-weight configuration: how the three signals combine.
#[derive(Debug, Clone, Copy)]
pub struct PlatformRankWeights {
    /// Provenance (trace-back) weight.
    pub trace: f64,
    /// AI-detector weight.
    pub ai: f64,
    /// Crowd-rating weight.
    pub crowd: f64,
}

impl Default for PlatformRankWeights {
    fn default() -> Self {
        PlatformRankWeights {
            trace: 0.5,
            ai: 0.25,
            crowd: 0.25,
        }
    }
}

/// Front-door gateway parameters: admission rate limiting, bounded
/// ingress queueing, and batched mempool ingest.
///
/// The struct itself is plain data — `tn-gateway` validates it at
/// construction (a zero-capacity queue or zero-size ingest batch is a
/// typed configuration error there, never a silent stall; `workers == 0`
/// is clamped to one lane, mirroring `tn-par`). It lives here so a single
/// [`PlatformConfig`] describes a complete front-door deployment and can
/// be threaded through bootstrap alongside storage and verify settings.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Ingress lanes (bounded queues) the gateway shards clients across.
    /// `0` is clamped to one lane at gateway construction.
    pub workers: usize,
    /// Capacity of each ingress lane in transactions. Zero is rejected at
    /// gateway construction: an unfillable queue would shed everything.
    pub queue_capacity: usize,
    /// Token-bucket sustained admission rate per client, in requests per
    /// second. Zero disables rate limiting (admission is queue-bounded
    /// only).
    pub rate_per_client: u64,
    /// Token-bucket burst depth per client, in requests. Clamped up to at
    /// least one whenever rate limiting is enabled.
    pub burst_per_client: u64,
    /// Maximum transactions moved per mempool-ingest call when a lane
    /// drains. Zero is rejected at gateway construction: a zero-size
    /// batch would never drain an admitted transaction.
    pub ingest_batch: usize,
    /// Mempool-occupancy watermark that pauses lane draining: while the
    /// node's mempool holds at least this many transactions, admitted
    /// work waits in the bounded ingress lanes instead of growing the
    /// mempool without bound (so overload sheds at the door, visibly).
    /// Zero disables the gate.
    pub mempool_watermark: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 4,
            queue_capacity: 4_096,
            rate_per_client: 200,
            burst_per_client: 50,
            ingest_batch: 256,
            mempool_watermark: 8_192,
        }
    }
}

/// Platform construction parameters.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Tokens granted to each newly verified identity.
    pub identity_grant: u64,
    /// Flat fee attached to platform transactions.
    pub fee: u64,
    /// Attestations required to admit a record to the factual database.
    pub fact_threshold: usize,
    /// Initial factual corpus.
    pub factdb_seed: CorpusConfig,
    /// Ranking weights.
    pub weights: PlatformRankWeights,
    /// Maximum transactions the mempool holds at once.
    pub mempool_capacity: usize,
    /// Worker threads for block verification (signatures, tx-root
    /// hashing). `0` means "use the machine's available parallelism".
    /// Results are byte-identical for every worker count.
    pub verify_workers: usize,
    /// Transactions folded into one batched-Schnorr equation during block
    /// verification; `0` disables batching (per-transaction
    /// verification). Accept/reject outcomes are identical for every
    /// value — this only moves import cost.
    pub verify_batch_chunk: usize,
    /// Storage-engine configuration: backend selection (in-memory or
    /// on-disk), in-memory retention window, checkpoint cadence,
    /// segment/fsync sizing, and compaction.
    pub storage: StorageConfig,
    /// Front-door gateway configuration: admission rate limits, ingress
    /// queue bounds, and mempool ingest batching (consumed by
    /// `tn-gateway`).
    pub gateway: GatewayConfig,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            identity_grant: 10_000,
            fee: 1,
            fact_threshold: 2,
            factdb_seed: CorpusConfig {
                size: 50,
                seed: 42,
                start_time: 0,
            },
            weights: PlatformRankWeights::default(),
            mempool_capacity: 100_000,
            verify_workers: 0,
            verify_batch_chunk: tn_chain::BatchVerifyPolicy::DEFAULT_CHUNK,
            storage: StorageConfig::default(),
            gateway: GatewayConfig::default(),
        }
    }
}

/// The combined ranking of one news item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemRank {
    /// Provenance score in `[0, 1]`.
    pub trace: f64,
    /// AI probability-factual in `[0, 1]` (0.5 when no detector trained).
    pub ai: f64,
    /// Crowd weighted-mean score in `[0, 1]` (0.5 when unrated).
    pub crowd: f64,
    /// Final 0–100 ranking.
    pub rank: f64,
    /// Whether the item traces to the factual database.
    pub reaches_root: bool,
}

/// Summary of one produced block.
#[derive(Debug, Clone)]
pub struct BlockSummary {
    /// Block height.
    pub height: u64,
    /// Transactions included.
    pub included: usize,
    /// Transactions whose execution failed (still on-chain).
    pub failed: usize,
    /// Fact records admitted to the database in this round.
    pub admitted_facts: Vec<Hash256>,
}

/// The trusting-news platform: a facade over the execution pipeline.
pub struct Platform {
    config: PlatformConfig,
    governor: Keypair,
    validator: Keypair,
    pipeline: ExecutionPipeline,
    detector: Option<EnsembleDetector>,
    /// Pending transactions (real fee-prioritised mempool from tn-chain).
    mempool: Mempool,
    /// Nonces reserved by pending transactions, per account. Re-derived
    /// from mempool content after every block so reservations never drift
    /// from the pool.
    reserved_nonces: HashMap<Address, u64>,
    /// Fact ids proposed through this platform whose FACT_PROPOSE
    /// transaction may not have committed yet (pre-commit attest
    /// validation only; the authoritative candidate set is the fact
    /// projection's chain-derived ledger).
    pending_proposals: HashSet<Hash256>,
    clock: u64,
}

impl fmt::Debug for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Platform")
            .field("height", &self.pipeline.store().height())
            .field("factdb", &self.factdb().len())
            .field("graph", &self.graph().len())
            .field("identities", &self.identities().len())
            .field("pending", &self.mempool.len())
            .finish()
    }
}

impl Platform {
    /// Boots a platform from the canonical replica bootstrap (shared with
    /// `tn-node` validators): governance accounts, the execution pipeline
    /// (contracts + seeded projections), and the committed factual-DB
    /// anchor block.
    pub fn new(config: PlatformConfig) -> Platform {
        let crate::pipeline::Bootstrap {
            governor,
            validator,
            pipeline,
        } = crate::pipeline::bootstrap(&config);
        let mut mempool = Mempool::new(config.mempool_capacity);
        // Share the store's verified-tx cache so admission-time
        // verification pre-warms block proposal and import.
        mempool.set_sig_cache(pipeline.store().sig_cache());
        Platform {
            config,
            governor,
            validator,
            pipeline,
            detector: None,
            mempool,
            reserved_nonces: HashMap::new(),
            pending_proposals: HashSet::new(),
            // The bootstrap committed the anchor block at timestamp 1.
            clock: 2,
        }
    }

    /// Routes telemetry from the pipeline (import/projection/contract
    /// metrics) and the mempool (admission counters) to `sink`. Disabled
    /// by default.
    pub fn set_telemetry(&mut self, sink: tn_telemetry::TelemetrySink) {
        self.pipeline.set_telemetry(sink.clone());
        self.mempool.set_telemetry(sink);
    }

    // --- accessors -------------------------------------------------------

    /// Current chain height.
    pub fn height(&self) -> u64 {
        self.pipeline.store().height()
    }

    /// The execution pipeline (chain + executor + projections).
    pub fn pipeline(&self) -> &ExecutionPipeline {
        &self.pipeline
    }

    /// The factual database (derived by the fact projection).
    pub fn factdb(&self) -> &FactualDatabase {
        self.pipeline.factdb()
    }

    /// The supply-chain graph (derived by the supply-chain projection).
    pub fn graph(&self) -> &SupplyChainGraph {
        self.pipeline.graph()
    }

    /// The identity registry (derived by the identity projection).
    pub fn identities(&self) -> &IdentityRegistry {
        self.pipeline.identities()
    }

    /// The chain store (read-only).
    pub fn store(&self) -> &ChainStore {
        self.pipeline.store()
    }

    /// Indexing statistics accumulated over all produced blocks.
    pub fn index_stats(&self) -> &IndexStats {
        self.pipeline.index_stats()
    }

    /// The governor account address (contract owner).
    pub fn governor_address(&self) -> Address {
        self.governor.address()
    }

    /// The on-chain anchor for the factual database, if any.
    pub fn anchored_fact_root(&self) -> Option<Hash256> {
        self.pipeline.store().head_state().anchor("factdb")
    }

    /// Per-projection state digests, in registration order.
    pub fn projection_digests(&self) -> Vec<(&'static str, Hash256)> {
        self.pipeline.projection_digests()
    }

    /// One hash over the full replica state (head, world state, contract
    /// storage, projections) — see
    /// [`ExecutionPipeline::execution_digest`].
    pub fn execution_digest(&self) -> Hash256 {
        self.pipeline.execution_digest()
    }

    /// Replays the ledger from genesis into fresh projections and checks
    /// that every digest matches the live ones.
    ///
    /// # Errors
    ///
    /// Returns the name of the first diverging projection.
    pub fn verify_replay(&self) -> Result<Vec<(&'static str, Hash256)>, String> {
        self.pipeline.verify_replay()
    }

    /// Typed read access to the newsroom registry contract.
    pub fn newsrooms(&self) -> &NewsroomRegistry {
        self.pipeline
            .registry()
            .builtin(&self.pipeline.addrs().newsroom)
            .and_then(|b| b.as_any().downcast_ref())
            .expect("newsroom builtin installed")
    }

    /// Typed read access to the ranking contract.
    pub fn ranking_contract(&self) -> &RankingContract {
        self.pipeline
            .registry()
            .builtin(&self.pipeline.addrs().ranking)
            .and_then(|b| b.as_any().downcast_ref())
            .expect("ranking builtin installed")
    }

    /// Typed read access to the incentive contract.
    pub fn incentives(&self) -> &IncentiveContract {
        self.pipeline
            .registry()
            .builtin(&self.pipeline.addrs().incentive)
            .and_then(|b| b.as_any().downcast_ref())
            .expect("incentive builtin installed")
    }

    /// Typed read access to the admission contract.
    pub fn admission(&self) -> &FactDbAdmission {
        self.pipeline
            .registry()
            .builtin(&self.pipeline.addrs().admission)
            .and_then(|b| b.as_any().downcast_ref())
            .expect("admission builtin installed")
    }

    // --- transaction plumbing -------------------------------------------

    fn next_nonce(&mut self, who: &Address) -> u64 {
        let committed = self.pipeline.store().head_state().nonce(who);
        let reserved = self.reserved_nonces.entry(*who).or_insert(committed);
        if *reserved < committed {
            *reserved = committed;
        }
        let n = *reserved;
        *reserved += 1;
        n
    }

    fn enqueue(&mut self, signer: &Keypair, payload: Payload) -> Result<(), PlatformError> {
        self.enqueue_with_fee(signer, self.config.fee, payload)
    }

    fn enqueue_with_fee(
        &mut self,
        signer: &Keypair,
        fee: u64,
        payload: Payload,
    ) -> Result<(), PlatformError> {
        let nonce = self.next_nonce(&signer.address());
        let tx = Transaction::signed(signer, nonce, fee, payload);
        if let Err(e) = self.mempool.insert(tx, self.pipeline.store().head_state()) {
            // Release the reservation taken above so the nonce is not
            // burned by a transaction that never entered the pool.
            if let Some(reserved) = self.reserved_nonces.get_mut(&signer.address()) {
                *reserved = nonce;
            }
            return Err(PlatformError::Mempool(e));
        }
        Ok(())
    }

    fn enqueue_anchor(&mut self) -> Result<(), PlatformError> {
        let root = self.pipeline.factdb().root();
        let governor = self.governor.clone();
        self.enqueue(
            &governor,
            Payload::AnchorRoot {
                namespace: "factdb".into(),
                root,
            },
        )
    }

    /// Produces one block from all pending transactions and imports it
    /// through the pipeline; the projections (supply-chain graph,
    /// identities, fact admissions, headlines) observe the committed
    /// block before this returns, and a re-anchor transaction is enqueued
    /// when the factual database grew.
    ///
    /// # Errors
    ///
    /// Chain-level import errors (should not occur for platform-built
    /// transactions).
    pub fn produce_block(&mut self) -> Result<BlockSummary, PlatformError> {
        let txs = self
            .mempool
            .select(self.pipeline.store().head_state(), 10_000);
        let (block, receipts) = self
            .pipeline
            .commit_batch(&self.validator, self.clock, txs)?;
        self.mempool
            .prune_committed(self.pipeline.store().head_state());
        // Re-derive nonce reservations from what actually remains in the
        // pool: transactions that were neither selected nor pruned keep
        // their nonces reserved, everything else is released.
        self.reserved_nonces = self.mempool.next_nonces().into_iter().collect();
        self.clock += 1;

        let failed = receipts.iter().filter(|r| !r.success).count();
        let admitted = self.pipeline.take_newly_admitted();
        for id in &admitted {
            self.pending_proposals.remove(id);
        }
        if !admitted.is_empty() {
            self.enqueue_anchor()?;
        }

        Ok(BlockSummary {
            height: block.header.height,
            included: block.transactions.len(),
            failed,
            admitted_facts: admitted,
        })
    }

    // --- identity & governance -------------------------------------------

    /// Verifies an identity: the governor grants an initial token balance
    /// and the account registers its name and roles on-chain.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Mempool`] when a registration transaction cannot
    /// be enqueued.
    pub fn register_identity(
        &mut self,
        who: &Keypair,
        name: &str,
        roles: &[Role],
    ) -> Result<(), PlatformError> {
        let governor = self.governor.clone();
        self.enqueue(
            &governor,
            Payload::Transfer {
                to: who.address(),
                amount: self.config.identity_grant,
            },
        )?;
        let record = IdentityRecord {
            name: name.into(),
            roles: roles.to_vec(),
        };
        // Registration is platform-subsidized (fee 0): the account may be
        // brand-new and unfunded until the grant above commits, and the
        // mempool orders by fee, not enqueue order.
        self.enqueue_with_fee(
            who,
            0,
            Payload::Blob {
                tag: blob_tags::IDENTITY,
                data: record.to_bytes(),
            },
        )?;
        // Fact checkers are also registered with the admission contract.
        if roles.contains(&Role::FactChecker) {
            let input = admission_register_checker(&who.address());
            let governor = self.governor.clone();
            self.enqueue(
                &governor,
                Payload::ContractCall {
                    contract: self.pipeline.addrs().admission,
                    input,
                    gas_limit: 10_000,
                },
            )?;
        }
        Ok(())
    }

    fn require_role(&self, who: &Address, role: Role) -> Result<(), PlatformError> {
        if !self.identities().is_verified(who) {
            return Err(PlatformError::NotVerified(*who));
        }
        if !self.identities().has_role(who, role) {
            return Err(PlatformError::NotAuthorized(format!(
                "{} lacks role {role:?}",
                who.short()
            )));
        }
        Ok(())
    }

    /// A publisher applies to create a distribution platform (§V layer 1).
    ///
    /// # Errors
    ///
    /// Requires the `Publisher` role.
    pub fn create_publisher_platform(
        &mut self,
        publisher: &Keypair,
        name: &str,
    ) -> Result<(), PlatformError> {
        self.require_role(&publisher.address(), Role::Publisher)?;
        let input = newsroom_register_platform(name);
        let contract = self.pipeline.addrs().newsroom;
        self.enqueue(
            publisher,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 10_000,
            },
        )
    }

    /// Creates a topical news room on an owned platform (§V layer 2).
    ///
    /// # Errors
    ///
    /// Requires the `Publisher` role (ownership is enforced by the
    /// contract at execution).
    pub fn create_news_room(
        &mut self,
        publisher: &Keypair,
        platform_id: u64,
        topic: &str,
    ) -> Result<(), PlatformError> {
        self.require_role(&publisher.address(), Role::Publisher)?;
        let input = newsroom_create_room(platform_id, topic);
        let contract = self.pipeline.addrs().newsroom;
        self.enqueue(
            publisher,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 10_000,
            },
        )
    }

    /// Authorizes a journalist to publish in a room.
    ///
    /// # Errors
    ///
    /// Requires the `Publisher` role.
    pub fn authorize_journalist(
        &mut self,
        publisher: &Keypair,
        room: u64,
        journalist: &Address,
    ) -> Result<(), PlatformError> {
        self.require_role(&publisher.address(), Role::Publisher)?;
        let input = newsroom_authorize(room, journalist);
        let contract = self.pipeline.addrs().newsroom;
        self.enqueue(
            publisher,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 10_000,
            },
        )
    }

    // --- news flow ---------------------------------------------------------

    /// Publishes a news item into a room. Parents (other items or factual
    /// records) establish the provenance edges of §VI.
    ///
    /// Returns the item id the event will have once the block commits.
    ///
    /// # Errors
    ///
    /// Requires a verified `ContentCreator` authorized in the room.
    pub fn publish_news(
        &mut self,
        author: &Keypair,
        room: u64,
        topic: &str,
        content: &str,
        parents: Vec<(Hash256, PropagationOp)>,
    ) -> Result<Hash256, PlatformError> {
        self.publish_news_with_headline(author, room, topic, "", content, parents)
    }

    /// [`Self::publish_news`] with an explicit headline. The headline is
    /// recorded on-chain with the event, and the platform's AI component
    /// runs headline/body stance analysis on it: a body that contradicts
    /// its own headline (or is unrelated to it) is a fake-news signal per
    /// the Fake News Challenge approach the paper cites \[33\].
    ///
    /// # Errors
    ///
    /// Same as [`Self::publish_news`].
    pub fn publish_news_with_headline(
        &mut self,
        author: &Keypair,
        room: u64,
        topic: &str,
        headline: &str,
        content: &str,
        parents: Vec<(Hash256, PropagationOp)>,
    ) -> Result<Hash256, PlatformError> {
        self.require_role(&author.address(), Role::ContentCreator)?;
        if !self.newsrooms().is_authorized(room, &author.address()) {
            return Err(PlatformError::NotAuthorized(format!(
                "{} not authorized in room {room}",
                author.address().short()
            )));
        }
        let published_at = self.clock;
        let event = NewsEvent {
            headline: headline.to_string(),
            content: content.to_string(),
            topic: topic.to_string(),
            room,
            parents: parents.iter().map(|(id, op)| (*id, op.tag())).collect(),
            published_at,
        };
        let item_id = tn_supplychain::graph::item_id(&author.address(), content, published_at);
        self.enqueue(author, event.into_payload())?;
        Ok(item_id)
    }

    /// A consumer submits a 0–100 truthfulness rating for an item.
    ///
    /// # Errors
    ///
    /// Requires a verified identity (any role).
    pub fn submit_rating(
        &mut self,
        rater: &Keypair,
        item: &Hash256,
        score: u8,
    ) -> Result<(), PlatformError> {
        if !self.identities().is_verified(&rater.address()) {
            return Err(PlatformError::NotVerified(rater.address()));
        }
        let input = ranking_submit(item, score);
        let contract = self.pipeline.addrs().ranking;
        self.enqueue(
            rater,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 10_000,
            },
        )
    }

    /// Proposes a record for factual-database admission as an on-chain
    /// `FACT_PROPOSE` transaction (governor-signed); fact checkers then
    /// attest it, and the fact projection admits it once the attestation
    /// threshold is reached. Returns the record id.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Mempool`] when the proposal cannot be enqueued.
    pub fn propose_fact(&mut self, record: FactRecord) -> Result<Hash256, PlatformError> {
        let id = record.id();
        let governor = self.governor.clone();
        self.enqueue(
            &governor,
            Payload::Blob {
                tag: blob_tags::FACT_PROPOSE,
                data: record.to_bytes(),
            },
        )?;
        self.pending_proposals.insert(id);
        Ok(id)
    }

    /// A fact checker attests a proposed record.
    ///
    /// # Errors
    ///
    /// Requires the `FactChecker` role and a known candidate record
    /// (proposed on-chain, pending in the mempool, or already admitted).
    pub fn attest_fact(
        &mut self,
        checker: &Keypair,
        record_id: &Hash256,
    ) -> Result<(), PlatformError> {
        self.require_role(&checker.address(), Role::FactChecker)?;
        let known = self.pending_proposals.contains(record_id)
            || self
                .pipeline
                .fact_projection()
                .ledger()
                .is_candidate(record_id)
            || self.factdb().contains(record_id);
        if !known {
            return Err(PlatformError::UnknownItem(*record_id));
        }
        let input = admission_attest(record_id);
        let contract = self.pipeline.addrs().admission;
        self.enqueue(
            checker,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 10_000,
            },
        )
    }

    // --- AI & ranking -----------------------------------------------------

    /// Trains the platform's AI detector on a labeled corpus (the
    /// AI-developer role's contribution to the ecosystem).
    pub fn train_detector(&mut self, corpus: &[tn_aidetect::corpus::LabeledDoc]) {
        self.detector = Some(EnsembleDetector::train(corpus, EnsembleWeights::default()));
    }

    /// True when a detector has been trained.
    pub fn has_detector(&self) -> bool {
        self.detector.is_some()
    }

    /// Computes the combined ranking of an item: provenance trace × AI ×
    /// crowd, per the configured weights.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownItem`] when the item is not in the graph.
    pub fn rank_item(&self, item: &Hash256) -> Result<ItemRank, PlatformError> {
        let graph = self.graph();
        let node = graph.get(item).ok_or(PlatformError::UnknownItem(*item))?;
        let trace = graph.trace_back(item)?;
        let t = trace_score(&trace);
        let ai = match &self.detector {
            Some(d) => match self.pipeline.headline(item) {
                Some(headline) => 1.0 - d.prob_fake_with_headline(headline, &node.content),
                None => d.prob_factual(&node.content),
            },
            None => 0.5,
        };
        let (count, mean_e4) = self.ranking_contract().ranking(item);
        let crowd = if count > 0 {
            (mean_e4 as f64 / 10_000.0) / 100.0
        } else {
            0.5
        };
        let w = self.config.weights;
        let total = w.trace + w.ai + w.crowd;
        let rank = 100.0 * (w.trace * t + w.ai * ai + w.crowd * crowd) / total;
        Ok(ItemRank {
            trace: t,
            ai,
            crowd,
            rank,
            reaches_root: trace.reaches_root,
        })
    }

    /// Traces an item back toward the factual database.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Graph`] for unknown items.
    pub fn trace_item(&self, item: &Hash256) -> Result<TraceResult, PlatformError> {
        Ok(self.graph().trace_back(item)?)
    }

    /// The account that originated an item's content (§IV accountability).
    ///
    /// # Errors
    ///
    /// [`PlatformError::Graph`] for unknown items.
    pub fn origin_of(&self, item: &Hash256) -> Result<Option<Address>, PlatformError> {
        Ok(self.graph().origin_author(item)?)
    }

    /// The account that introduced the largest modification (≥ 0.1) along
    /// an item's provenance path — the distortion-accountability query.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Graph`] for unknown items.
    pub fn distortion_culprit_of(
        &self,
        item: &Hash256,
    ) -> Result<Option<(Address, f64)>, PlatformError> {
        Ok(self.graph().distortion_culprit(item, 0.1)?)
    }

    /// Suggests the top-k domain experts for a topic from ledger history
    /// (§VI expert identification).
    pub fn suggest_experts(
        &self,
        topic: &str,
        k: usize,
    ) -> Vec<tn_supplychain::expert::ExpertScore> {
        tn_supplychain::expert::experts_for_topic(self.graph(), topic, k)
    }

    /// The governor rewards an account with incentive points ("economic
    /// incentives to reward individuals", §V) via the incentive contract.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Mempool`] when the call cannot be enqueued.
    pub fn reward_points(&mut self, who: &Address, amount: u64) -> Result<(), PlatformError> {
        let governor = self.governor.clone();
        let input = tn_contracts::builtin::incentive_reward(who, amount);
        let contract = self.pipeline.addrs().incentive;
        self.enqueue(
            &governor,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 10_000,
            },
        )
    }

    /// The governor slashes an account's incentive points.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Mempool`] when the call cannot be enqueued.
    pub fn slash_points(&mut self, who: &Address, amount: u64) -> Result<(), PlatformError> {
        let governor = self.governor.clone();
        let input = tn_contracts::builtin::incentive_slash(who, amount);
        let contract = self.pipeline.addrs().incentive;
        self.enqueue(
            &governor,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 10_000,
            },
        )
    }

    // --- Adversarial-participant defenses ---------------------------------

    /// The governor activates the ranking contract's defense policy
    /// (minimum bond to vote, reputation decay, slashing on contradicted
    /// votes). Applies from the next produced block.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Mempool`] when the call cannot be enqueued.
    pub fn set_ranking_policy(
        &mut self,
        policy: &tn_contracts::builtin::DefensePolicy,
    ) -> Result<(), PlatformError> {
        let governor = self.governor.clone();
        let input = tn_contracts::builtin::ranking_set_policy(policy);
        let contract = self.pipeline.addrs().ranking;
        self.enqueue(
            &governor,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 10_000,
            },
        )
    }

    /// The governor grants free ranking stake to a verified participant
    /// (the admission cost a sybil must sink before voting carries
    /// weight).
    ///
    /// # Errors
    ///
    /// [`PlatformError::Mempool`] when the call cannot be enqueued.
    pub fn grant_ranking_stake(&mut self, who: &Address, amount: u64) -> Result<(), PlatformError> {
        let governor = self.governor.clone();
        let input = tn_contracts::builtin::ranking_grant_stake(who, amount);
        let contract = self.pipeline.addrs().ranking;
        self.enqueue(
            &governor,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 10_000,
            },
        )
    }

    /// A participant bonds free stake so their ratings carry weight
    /// under an active defense policy.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Mempool`] when the call cannot be enqueued.
    pub fn post_ranking_bond(
        &mut self,
        staker: &Keypair,
        amount: u64,
    ) -> Result<(), PlatformError> {
        let input = tn_contracts::builtin::ranking_post_bond(amount);
        let contract = self.pipeline.addrs().ranking;
        self.enqueue(
            staker,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 10_000,
            },
        )
    }

    /// The governor records a confirmed fact-check outcome for an item:
    /// raters who agreed gain reputation, contradicted raters lose
    /// reputation and part of their bond (slashed to the treasury).
    ///
    /// # Errors
    ///
    /// [`PlatformError::Mempool`] when the call cannot be enqueued.
    pub fn record_rating_outcome(
        &mut self,
        item: &Hash256,
        factual: bool,
    ) -> Result<(), PlatformError> {
        let governor = self.governor.clone();
        let input = tn_contracts::builtin::ranking_record_outcome(item, factual);
        let contract = self.pipeline.addrs().ranking;
        self.enqueue(
            &governor,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 50_000,
            },
        )
    }

    /// The governor quarantines a rater: new submissions are rejected and
    /// already-stored ratings stop counting toward rankings until
    /// [`Platform::unquarantine_rater`].
    ///
    /// # Errors
    ///
    /// [`PlatformError::Mempool`] when the call cannot be enqueued.
    pub fn quarantine_rater(&mut self, who: &Address) -> Result<(), PlatformError> {
        let governor = self.governor.clone();
        let input = tn_contracts::builtin::ranking_quarantine(who);
        let contract = self.pipeline.addrs().ranking;
        self.enqueue(
            &governor,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 10_000,
            },
        )
    }

    /// The governor lifts a rater's quarantine.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Mempool`] when the call cannot be enqueued.
    pub fn unquarantine_rater(&mut self, who: &Address) -> Result<(), PlatformError> {
        let governor = self.governor.clone();
        let input = tn_contracts::builtin::ranking_unquarantine(who);
        let contract = self.pipeline.addrs().ranking;
        self.enqueue(
            &governor,
            Payload::ContractCall {
                contract,
                input,
                gas_limit: 10_000,
            },
        )
    }

    // --- Management Act enforcement ---------------------------------------

    /// Enforces the "AI Blockchain Platform Management Act" (§V): scans the
    /// supply-chain graph for accounts that introduced heavy modifications
    /// (degree ≥ `threshold`) on `strikes` or more items, and revokes their
    /// authorization in every news room (by enqueueing the publisher-signed
    /// revocation calls — all enforcement actions are themselves on-chain).
    ///
    /// Returns the sanctioned accounts with their strike counts. The
    /// `enforcer` must own the affected rooms' platforms (the paper's "the
    /// distribution platform will be responsible for the trust of its
    /// content creators").
    pub fn enforce_management_act(
        &mut self,
        enforcer: &Keypair,
        threshold: f64,
        strikes: usize,
    ) -> Result<Vec<(Address, usize)>, PlatformError> {
        self.require_role(&enforcer.address(), Role::Publisher)?;
        // Count heavy-modification edges per author across the graph.
        let mut counts: HashMap<Address, usize> = HashMap::new();
        for item in self.graph().iter().filter(|i| !i.is_fact_root) {
            let heavy = item.parents.iter().any(|p| p.modification >= threshold);
            if heavy {
                *counts.entry(item.author).or_insert(0) += 1;
            }
        }
        let mut sanctioned: Vec<(Address, usize)> =
            counts.into_iter().filter(|(_, c)| *c >= strikes).collect();
        sanctioned.sort_by_key(|(a, c)| (std::cmp::Reverse(*c), *a));

        // Revoke each sanctioned account from every room on platforms the
        // enforcer owns.
        let rooms: Vec<u64> = self
            .newsrooms()
            .rooms()
            .filter(|(_, room)| {
                self.newsrooms()
                    .platform(room.platform)
                    .is_some_and(|p| p.owner == enforcer.address())
            })
            .map(|(id, _)| id)
            .collect();
        let contract = self.pipeline.addrs().newsroom;
        for (who, _) in &sanctioned {
            for room in &rooms {
                let input = tn_contracts::builtin::newsroom_revoke(*room, who);
                self.enqueue(
                    enforcer,
                    Payload::ContractCall {
                        contract,
                        input,
                        gas_limit: 10_000,
                    },
                )?;
            }
        }
        Ok(sanctioned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot() -> Platform {
        Platform::new(PlatformConfig::default())
    }

    fn kp(seed: &str) -> Keypair {
        Keypair::from_seed(seed.as_bytes())
    }

    #[test]
    fn boot_seeds_and_anchors_factdb() {
        let p = boot();
        assert_eq!(p.factdb().len(), 50);
        assert_eq!(p.graph().root_count(), 50);
        assert_eq!(p.anchored_fact_root(), Some(p.factdb().root()));
        assert!(p.height() >= 1);
    }

    #[test]
    fn identity_and_publisher_flow() {
        let mut p = boot();
        let pub_kp = kp("publisher");
        let journo = kp("journalist");
        p.register_identity(&pub_kp, "Daily Facts Inc", &[Role::Publisher])
            .unwrap();
        p.register_identity(&journo, "Jane Doe", &[Role::ContentCreator])
            .unwrap();
        p.produce_block().unwrap();
        assert!(p.identities().has_role(&pub_kp.address(), Role::Publisher));

        p.create_publisher_platform(&pub_kp, "Daily Facts").unwrap();
        p.produce_block().unwrap();
        let pid = p.newsrooms().find_platform("Daily Facts").expect("created");

        p.create_news_room(&pub_kp, pid, "energy").unwrap();
        p.produce_block().unwrap();
        let (rid, room) = p.newsrooms().rooms().next().expect("room exists");
        assert_eq!(room.topic, "energy");

        p.authorize_journalist(&pub_kp, rid, &journo.address())
            .unwrap();
        p.produce_block().unwrap();
        assert!(p.newsrooms().is_authorized(rid, &journo.address()));
    }

    /// Boots a platform with a publisher, a room and an authorized
    /// journalist; returns (platform, journalist, room id).
    fn with_room() -> (Platform, Keypair, u64) {
        let mut p = boot();
        let pub_kp = kp("publisher");
        let journo = kp("journalist");
        p.register_identity(&pub_kp, "Daily Facts Inc", &[Role::Publisher])
            .unwrap();
        p.register_identity(&journo, "Jane Doe", &[Role::ContentCreator, Role::Consumer])
            .unwrap();
        p.produce_block().unwrap();
        p.create_publisher_platform(&pub_kp, "Daily Facts").unwrap();
        p.produce_block().unwrap();
        let pid = p.newsrooms().find_platform("Daily Facts").unwrap();
        p.create_news_room(&pub_kp, pid, "energy").unwrap();
        p.produce_block().unwrap();
        let rid = p.newsrooms().rooms().next().unwrap().0;
        p.authorize_journalist(&pub_kp, rid, &journo.address())
            .unwrap();
        p.produce_block().unwrap();
        (p, journo, rid)
    }

    #[test]
    fn publish_cite_and_rank() {
        let (mut p, journo, rid) = with_room();
        // Cite a factual record verbatim.
        let root = p.factdb().iter().next().unwrap().clone();
        let item = p
            .publish_news(
                &journo,
                rid,
                &root.topic,
                &root.content,
                vec![(root.id(), PropagationOp::Cite)],
            )
            .unwrap();
        p.produce_block().unwrap();

        assert_eq!(p.index_stats().indexed, 1);
        let rank = p.rank_item(&item).unwrap();
        assert!(rank.reaches_root);
        assert!((rank.trace - 1.0).abs() < 1e-9);
        assert!(rank.rank > 60.0, "rank {}", rank.rank);

        // An unsourced fabrication ranks lower.
        let fake = p
            .publish_news(
                &journo,
                rid,
                "energy",
                "Secret memo reveals it was all a lie.",
                vec![],
            )
            .unwrap();
        p.produce_block().unwrap();
        let fake_rank = p.rank_item(&fake).unwrap();
        assert!(!fake_rank.reaches_root);
        assert!(fake_rank.rank < rank.rank);
    }

    #[test]
    fn unauthorized_publishing_rejected() {
        let (mut p, _journo, rid) = with_room();
        let stranger = kp("stranger");
        // Not verified at all.
        assert!(matches!(
            p.publish_news(&stranger, rid, "t", "text", vec![]),
            Err(PlatformError::NotVerified(_))
        ));
        // Verified consumer but not authorized in the room.
        p.register_identity(&stranger, "Stranger", &[Role::ContentCreator])
            .unwrap();
        p.produce_block().unwrap();
        assert!(matches!(
            p.publish_news(&stranger, rid, "t", "text", vec![]),
            Err(PlatformError::NotAuthorized(_))
        ));
    }

    #[test]
    fn ratings_flow_into_ranking() {
        let (mut p, journo, rid) = with_room();
        let root = p.factdb().iter().next().unwrap().clone();
        let item = p
            .publish_news(
                &journo,
                rid,
                &root.topic,
                &root.content,
                vec![(root.id(), PropagationOp::Cite)],
            )
            .unwrap();
        p.produce_block().unwrap();

        let neutral = p.rank_item(&item).unwrap();
        p.submit_rating(&journo, &item, 95).unwrap();
        p.produce_block().unwrap();
        let rated = p.rank_item(&item).unwrap();
        assert!(rated.crowd > neutral.crowd);
        assert!(rated.rank > neutral.rank);
    }

    #[test]
    fn defense_policy_bond_quarantine_flow() {
        let (mut p, journo, rid) = with_room();
        let bot = kp("ring-bot");
        p.register_identity(&bot, "Ring Bot", &[Role::Consumer])
            .unwrap();
        p.produce_block().unwrap();
        let item = p
            .publish_news(&journo, rid, "topic", "text", vec![])
            .unwrap();
        p.set_ranking_policy(&tn_contracts::builtin::DefensePolicy {
            min_bond: 50,
            decay_bps: 9_000,
            slash_bps: 2_500,
        })
        .unwrap();
        p.grant_ranking_stake(&journo.address(), 200).unwrap();
        p.grant_ranking_stake(&bot.address(), 200).unwrap();
        p.produce_block().unwrap();
        p.post_ranking_bond(&journo, 100).unwrap();
        p.post_ranking_bond(&bot, 100).unwrap();
        p.produce_block().unwrap();

        // Both bonded raters carry weight.
        p.submit_rating(&journo, &item, 80).unwrap();
        p.submit_rating(&bot, &item, 97).unwrap();
        p.produce_block().unwrap();
        let (count, _) = p.ranking_contract().ranking(&item);
        assert_eq!(count, 2);

        // Quarantining the bot zeroes its stored rating's weight.
        p.quarantine_rater(&bot.address()).unwrap();
        p.produce_block().unwrap();
        assert!(p.ranking_contract().is_quarantined(&bot.address()));
        // The stored rating stays on-chain but its weight drops to zero:
        // the mean collapses to the honest rater's 80.
        let (count, mean_e4) = p.ranking_contract().ranking(&item);
        assert_eq!(count, 2);
        assert_eq!(mean_e4, 80 * 10_000);

        // A confirmed not-factual outcome slashes the contradicted bot.
        let (_, bonded_before) = p.ranking_contract().stake(&bot.address());
        p.record_rating_outcome(&item, false).unwrap();
        p.produce_block().unwrap();
        let (_, bonded_after) = p.ranking_contract().stake(&bot.address());
        assert!(bonded_after < bonded_before);
        assert!(p.ranking_contract().treasury() > 0);
    }

    #[test]
    fn fact_attestation_grows_database_and_reanchors() {
        let mut p = boot();
        let c1 = kp("checker1");
        let c2 = kp("checker2");
        p.register_identity(&c1, "Checker One", &[Role::FactChecker])
            .unwrap();
        p.register_identity(&c2, "Checker Two", &[Role::FactChecker])
            .unwrap();
        p.produce_block().unwrap();

        let record = FactRecord {
            source: tn_factdb::record::SourceKind::VerifiedNews,
            speaker: "Mayor Donovan".into(),
            topic: "housing".into(),
            content: "The permit reform passed the council vote.".into(),
            recorded_at: 77,
        };
        let id = p.propose_fact(record).unwrap();
        let before_root = p.anchored_fact_root();
        let before_len = p.factdb().len();

        p.attest_fact(&c1, &id).unwrap();
        let s = p.produce_block().unwrap();
        assert!(
            s.admitted_facts.is_empty(),
            "one attestation below threshold"
        );

        p.attest_fact(&c2, &id).unwrap();
        let s = p.produce_block().unwrap();
        assert_eq!(s.admitted_facts, vec![id]);
        assert_eq!(p.factdb().len(), before_len + 1);
        assert!(p.factdb().contains(&id));

        // Re-anchor lands in the following block.
        p.produce_block().unwrap();
        assert_ne!(p.anchored_fact_root(), before_root);
        assert_eq!(p.anchored_fact_root(), Some(p.factdb().root()));
    }

    #[test]
    fn expert_suggestion_from_history() {
        let (mut p, journo, rid) = with_room();
        let roots: Vec<FactRecord> = p.factdb().iter().take(3).cloned().collect();
        for r in &roots {
            p.publish_news(
                &journo,
                rid,
                &r.topic,
                &r.content,
                vec![(r.id(), PropagationOp::Cite)],
            )
            .unwrap();
            p.produce_block().unwrap();
        }
        let topic = &roots[0].topic;
        let experts = p.suggest_experts(topic, 3);
        assert!(!experts.is_empty());
        assert_eq!(experts[0].author, journo.address());
    }

    #[test]
    fn origin_accountability() {
        let (mut p, journo, rid) = with_room();
        let fake = p
            .publish_news(
                &journo,
                rid,
                "energy",
                "Invented scandal content here.",
                vec![],
            )
            .unwrap();
        p.produce_block().unwrap();
        assert_eq!(p.origin_of(&fake).unwrap(), Some(journo.address()));
    }

    #[test]
    fn detector_changes_ai_component() {
        let (mut p, journo, rid) = with_room();
        let fake = p
            .publish_news(
                &journo,
                rid,
                "energy",
                "Shocking corrupt scandal exposed by anonymous insiders, share before deleted!",
                vec![],
            )
            .unwrap();
        p.produce_block().unwrap();
        let before = p.rank_item(&fake).unwrap();
        assert!((before.ai - 0.5).abs() < 1e-9, "no detector yet");

        let corpus = tn_aidetect::corpus::generate_news_corpus(
            &tn_aidetect::corpus::NewsCorpusConfig::default(),
        );
        p.train_detector(&corpus);
        let after = p.rank_item(&fake).unwrap();
        assert!(
            after.ai < 0.35,
            "detector should flag the fake, ai={}",
            after.ai
        );
        assert!(after.rank < before.rank);
    }

    #[test]
    fn contradictory_headline_lowers_ai_score() {
        let (mut p, journo, rid) = with_room();
        let corpus = tn_aidetect::corpus::generate_news_corpus(
            &tn_aidetect::corpus::NewsCorpusConfig::default(),
        );
        p.train_detector(&corpus);

        let body = "Officials confirmed the committee approved the amendment; \
                    the record was published and signed the same day.";
        let consistent = p
            .publish_news_with_headline(
                &journo,
                rid,
                "energy",
                "Committee approves amendment",
                body,
                vec![],
            )
            .unwrap();
        let refuting_body = "Claims that the committee approved the amendment are false; \
                             the chair denied the amendment approval and called the report \
                             a hoax, not news.";
        let contradicted = p
            .publish_news_with_headline(
                &journo,
                rid,
                "energy",
                "Committee approves amendment",
                refuting_body,
                vec![],
            )
            .unwrap();
        p.produce_block().unwrap();

        let rc = p.rank_item(&consistent).unwrap();
        let rx = p.rank_item(&contradicted).unwrap();
        assert!(
            rc.ai > rx.ai + 0.1,
            "stance should separate: consistent {} vs contradicted {}",
            rc.ai,
            rx.ai
        );
    }

    #[test]
    fn management_act_revokes_repeat_distorters() {
        let (mut p, journo, rid) = with_room();
        let pub_kp = kp("publisher");
        let tabloid = kp("ma tabloid");
        p.register_identity(&tabloid, "MA Tabloid", &[Role::ContentCreator])
            .unwrap();
        p.produce_block().unwrap();
        p.authorize_journalist(&pub_kp, rid, &tabloid.address())
            .unwrap();
        p.produce_block().unwrap();

        // Tabloid distorts three different factual records heavily;
        // journalist relays faithfully.
        let roots: Vec<_> = p.factdb().iter().take(3).cloned().collect();
        for r in &roots {
            let distorted = format!(
                "{} Insiders warn this is a shocking corrupt cover-up. \
                 They do not want you to know the terrifying truth. \
                 Share this before it gets deleted by the censors.",
                r.content
            );
            p.publish_news(
                &tabloid,
                rid,
                &r.topic,
                &distorted,
                vec![(r.id(), PropagationOp::Insert)],
            )
            .unwrap();
            p.publish_news(
                &journo,
                rid,
                &r.topic,
                &r.content,
                vec![(r.id(), PropagationOp::Cite)],
            )
            .unwrap();
            p.produce_block().unwrap();
        }

        let sanctioned = p.enforce_management_act(&pub_kp, 0.25, 3).unwrap();
        assert_eq!(sanctioned.len(), 1);
        assert_eq!(sanctioned[0].0, tabloid.address());
        assert_eq!(sanctioned[0].1, 3);
        p.produce_block().unwrap();

        // Revocation is effective: the tabloid can no longer publish.
        assert!(!p.newsrooms().is_authorized(rid, &tabloid.address()));
        assert!(matches!(
            p.publish_news(&tabloid, rid, "energy", "more spin", vec![]),
            Err(PlatformError::NotAuthorized(_))
        ));
        // The honest journalist is untouched.
        assert!(p.newsrooms().is_authorized(rid, &journo.address()));

        // Only publishers may enforce.
        assert!(matches!(
            p.enforce_management_act(&journo, 0.25, 3),
            Err(PlatformError::NotAuthorized(_))
        ));
    }

    #[test]
    fn chain_records_everything() {
        let (p, _journo, _rid) = with_room();
        // Every platform action above went through transactions.
        let txs = p.store().canonical_transactions();
        assert!(
            txs.len() >= 6,
            "expected a populated ledger, got {}",
            txs.len()
        );
    }

    #[test]
    fn ledger_replay_matches_live_projections() {
        let (mut p, journo, rid) = with_room();
        let root = p.factdb().iter().next().unwrap().clone();
        p.publish_news(
            &journo,
            rid,
            &root.topic,
            &root.content,
            vec![(root.id(), PropagationOp::Cite)],
        )
        .unwrap();
        p.submit_rating(&journo, &root.id(), 80).ok();
        p.produce_block().unwrap();

        let digests = p
            .verify_replay()
            .expect("replay must reproduce live digests");
        assert_eq!(digests.len(), 4);
        assert_eq!(digests, p.projection_digests());
    }

    #[test]
    fn mempool_rejection_surfaces_and_releases_nonce() {
        let config = PlatformConfig {
            mempool_capacity: 2,
            ..PlatformConfig::default()
        };
        let mut p = Platform::new(config);
        let who = kp("tiny-pool user");
        // Two transactions fill the pool; registration enqueues exactly two
        // (grant transfer + identity blob) for a non-checker role.
        p.register_identity(&who, "User", &[Role::Consumer])
            .unwrap();

        let record = FactRecord {
            source: tn_factdb::record::SourceKind::CourtRecord,
            speaker: "Clerk".into(),
            topic: "records".into(),
            content: "The registry office archived the deed.".into(),
            recorded_at: 9,
        };
        let err = p.propose_fact(record.clone());
        assert!(matches!(err, Err(PlatformError::Mempool(_))), "got {err:?}");

        // The failed enqueue must not burn the governor's nonce
        // reservation: once the pool drains, the same proposal enqueues
        // and commits cleanly.
        p.produce_block().unwrap();
        p.propose_fact(record).unwrap();
        let s = p.produce_block().unwrap();
        assert_eq!(s.failed, 0, "a nonce gap would strand the proposal");
        assert_eq!(s.included, 1);
    }
}
