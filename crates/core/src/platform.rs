//! The AI blockchain trusting-news platform (Figure 1).
//!
//! One struct wires every subsystem together: the chain (ordering +
//! accountability), the contract registry with the four governance
//! built-ins, the factual database, the supply-chain graph, the identity
//! registry, and the AI detector. All state mutations flow through signed
//! transactions and block production — the platform never mutates
//! contract state out-of-band, so the ledger remains the complete audit
//! trail the paper's accountability story requires. (Consensus itself is
//! exercised separately in `tn-consensus`; here a single validator
//! produces blocks, which is faithful to a one-node deployment of the
//! permissioned network.)

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use tn_aidetect::ensemble::{EnsembleDetector, EnsembleWeights};
use tn_chain::codec::Encodable;
use tn_chain::prelude::*;
use tn_contracts::builtin::{
    admission_attest, admission_register_checker, newsroom_authorize, newsroom_create_room,
    newsroom_register_platform, ranking_submit, FactDbAdmission, IncentiveContract,
    NewsroomRegistry, RankingContract,
};
use tn_contracts::executor::ContractRegistry;
use tn_crypto::{Address, Hash256, Keypair};
use tn_factdb::corpus::CorpusConfig;
use tn_factdb::db::FactualDatabase;
use tn_factdb::record::FactRecord;
use tn_supplychain::graph::{SupplyChainGraph, TraceResult};
use tn_supplychain::index::{index_transaction, IndexStats, NewsEvent};
use tn_supplychain::ops::PropagationOp;
use tn_supplychain::ranking::trace_score;

use crate::roles::{IdentityRecord, IdentityRegistry, Role};

/// Platform-level errors.
#[derive(Debug)]
pub enum PlatformError {
    /// Underlying chain rejection.
    Chain(ChainError),
    /// Supply-chain graph rejection.
    Graph(tn_supplychain::graph::GraphError),
    /// Contract-call failure.
    Contract(String),
    /// Caller lacks a required role or authorization.
    NotAuthorized(String),
    /// The account is not a verified identity.
    NotVerified(Address),
    /// Unknown news item.
    UnknownItem(Hash256),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Chain(e) => write!(f, "chain error: {e}"),
            PlatformError::Graph(e) => write!(f, "graph error: {e}"),
            PlatformError::Contract(e) => write!(f, "contract error: {e}"),
            PlatformError::NotAuthorized(e) => write!(f, "not authorized: {e}"),
            PlatformError::NotVerified(a) => write!(f, "account {} not verified", a.short()),
            PlatformError::UnknownItem(h) => write!(f, "unknown news item {}", h.short()),
        }
    }
}

impl Error for PlatformError {}

impl From<ChainError> for PlatformError {
    fn from(e: ChainError) -> Self {
        PlatformError::Chain(e)
    }
}

impl From<tn_supplychain::graph::GraphError> for PlatformError {
    fn from(e: tn_supplychain::graph::GraphError) -> Self {
        PlatformError::Graph(e)
    }
}

/// Ranking-weight configuration: how the three signals combine.
#[derive(Debug, Clone, Copy)]
pub struct PlatformRankWeights {
    /// Provenance (trace-back) weight.
    pub trace: f64,
    /// AI-detector weight.
    pub ai: f64,
    /// Crowd-rating weight.
    pub crowd: f64,
}

impl Default for PlatformRankWeights {
    fn default() -> Self {
        PlatformRankWeights { trace: 0.5, ai: 0.25, crowd: 0.25 }
    }
}

/// Platform construction parameters.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Tokens granted to each newly verified identity.
    pub identity_grant: u64,
    /// Flat fee attached to platform transactions.
    pub fee: u64,
    /// Attestations required to admit a record to the factual database.
    pub fact_threshold: usize,
    /// Initial factual corpus.
    pub factdb_seed: CorpusConfig,
    /// Ranking weights.
    pub weights: PlatformRankWeights,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            identity_grant: 10_000,
            fee: 1,
            fact_threshold: 2,
            factdb_seed: CorpusConfig { size: 50, seed: 42, start_time: 0 },
            weights: PlatformRankWeights::default(),
        }
    }
}

/// The combined ranking of one news item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemRank {
    /// Provenance score in `[0, 1]`.
    pub trace: f64,
    /// AI probability-factual in `[0, 1]` (0.5 when no detector trained).
    pub ai: f64,
    /// Crowd weighted-mean score in `[0, 1]` (0.5 when unrated).
    pub crowd: f64,
    /// Final 0–100 ranking.
    pub rank: f64,
    /// Whether the item traces to the factual database.
    pub reaches_root: bool,
}

/// Summary of one produced block.
#[derive(Debug, Clone)]
pub struct BlockSummary {
    /// Block height.
    pub height: u64,
    /// Transactions included.
    pub included: usize,
    /// Transactions whose execution failed (still on-chain).
    pub failed: usize,
    /// Fact records admitted to the database in this round.
    pub admitted_facts: Vec<Hash256>,
}

/// The trusting-news platform.
pub struct Platform {
    config: PlatformConfig,
    governor: Keypair,
    validator: Keypair,
    store: ChainStore,
    registry: ContractRegistry,
    newsroom_addr: Address,
    ranking_addr: Address,
    incentive_addr: Address,
    admission_addr: Address,
    factdb: FactualDatabase,
    graph: SupplyChainGraph,
    identities: IdentityRegistry,
    detector: Option<EnsembleDetector>,
    /// Pending transactions (real fee-prioritised mempool from tn-chain).
    mempool: Mempool,
    /// Nonces reserved by pending transactions, per account.
    reserved_nonces: HashMap<Address, u64>,
    /// Candidate fact records awaiting attestation, by id.
    fact_candidates: HashMap<Hash256, FactRecord>,
    /// Headlines of indexed items (for stance-aware AI scoring).
    headlines: HashMap<Hash256, String>,
    index_stats: IndexStats,
    clock: u64,
}

impl fmt::Debug for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Platform")
            .field("height", &self.store.height())
            .field("factdb", &self.factdb.len())
            .field("graph", &self.graph.len())
            .field("identities", &self.identities.len())
            .field("pending", &self.mempool.len())
            .finish()
    }
}

impl Platform {
    /// Boots a platform: creates governance accounts, installs the four
    /// built-in contracts, seeds and anchors the factual database.
    pub fn new(config: PlatformConfig) -> Platform {
        let governor = Keypair::from_seed(b"tn-platform-governor");
        let validator = Keypair::from_seed(b"tn-platform-validator");
        let genesis = State::genesis([
            (governor.address(), 1_000_000_000),
            (validator.address(), 1_000_000),
        ]);
        let store = ChainStore::new(genesis, &validator);

        let mut registry = ContractRegistry::new();
        let newsroom_addr = registry.install_builtin(Box::new(NewsroomRegistry::new()));
        let ranking_addr =
            registry.install_builtin(Box::new(RankingContract::new(governor.address())));
        let incentive_addr =
            registry.install_builtin(Box::new(IncentiveContract::new(governor.address())));
        let admission_addr = registry.install_builtin(Box::new(FactDbAdmission::new(
            governor.address(),
            config.fact_threshold,
        )));

        let mut factdb = FactualDatabase::new();
        let mut graph = SupplyChainGraph::new();
        for rec in tn_factdb::corpus::generate_corpus(&config.factdb_seed) {
            let id = rec.id();
            graph
                .add_fact_root(id, &rec.content, &rec.topic, rec.recorded_at)
                .expect("corpus records are unique");
            factdb.append(rec).expect("corpus records are unique");
        }

        let mut platform = Platform {
            config,
            governor,
            validator,
            store,
            registry,
            newsroom_addr,
            ranking_addr,
            incentive_addr,
            admission_addr,
            factdb,
            graph,
            identities: IdentityRegistry::new(),
            detector: None,
            mempool: Mempool::new(100_000),
            reserved_nonces: HashMap::new(),
            fact_candidates: HashMap::new(),
            headlines: HashMap::new(),
            index_stats: IndexStats::default(),
            clock: 1,
        };
        // Anchor the seeded factual DB and commit the genesis-follow block.
        platform.enqueue_anchor();
        platform.produce_block().expect("genesis anchor block");
        platform
    }

    // --- accessors -------------------------------------------------------

    /// Current chain height.
    pub fn height(&self) -> u64 {
        self.store.height()
    }

    /// The factual database.
    pub fn factdb(&self) -> &FactualDatabase {
        &self.factdb
    }

    /// The supply-chain graph.
    pub fn graph(&self) -> &SupplyChainGraph {
        &self.graph
    }

    /// The identity registry.
    pub fn identities(&self) -> &IdentityRegistry {
        &self.identities
    }

    /// The chain store (read-only).
    pub fn store(&self) -> &ChainStore {
        &self.store
    }

    /// Indexing statistics accumulated over all produced blocks.
    pub fn index_stats(&self) -> &IndexStats {
        &self.index_stats
    }

    /// The governor account address (contract owner).
    pub fn governor_address(&self) -> Address {
        self.governor.address()
    }

    /// The on-chain anchor for the factual database, if any.
    pub fn anchored_fact_root(&self) -> Option<Hash256> {
        self.store.head_state().anchor("factdb")
    }

    /// Typed read access to the newsroom registry contract.
    pub fn newsrooms(&self) -> &NewsroomRegistry {
        self.registry
            .builtin(&self.newsroom_addr)
            .and_then(|b| b.as_any().downcast_ref())
            .expect("newsroom builtin installed")
    }

    /// Typed read access to the ranking contract.
    pub fn ranking_contract(&self) -> &RankingContract {
        self.registry
            .builtin(&self.ranking_addr)
            .and_then(|b| b.as_any().downcast_ref())
            .expect("ranking builtin installed")
    }

    /// Typed read access to the incentive contract.
    pub fn incentives(&self) -> &IncentiveContract {
        self.registry
            .builtin(&self.incentive_addr)
            .and_then(|b| b.as_any().downcast_ref())
            .expect("incentive builtin installed")
    }

    /// Typed read access to the admission contract.
    pub fn admission(&self) -> &FactDbAdmission {
        self.registry
            .builtin(&self.admission_addr)
            .and_then(|b| b.as_any().downcast_ref())
            .expect("admission builtin installed")
    }

    // --- transaction plumbing -------------------------------------------

    fn next_nonce(&mut self, who: &Address) -> u64 {
        let committed = self.store.head_state().nonce(who);
        let reserved = self.reserved_nonces.entry(*who).or_insert(committed);
        if *reserved < committed {
            *reserved = committed;
        }
        let n = *reserved;
        *reserved += 1;
        n
    }

    fn enqueue(&mut self, signer: &Keypair, payload: Payload) {
        self.enqueue_with_fee(signer, self.config.fee, payload);
    }

    fn enqueue_with_fee(&mut self, signer: &Keypair, fee: u64, payload: Payload) {
        let nonce = self.next_nonce(&signer.address());
        let tx = Transaction::signed(signer, nonce, fee, payload);
        self.mempool
            .insert(tx, self.store.head_state())
            .expect("platform-built transactions are valid and unique");
    }

    fn enqueue_anchor(&mut self) {
        let root = self.factdb.root();
        let governor = self.governor.clone();
        self.enqueue(&governor, Payload::AnchorRoot { namespace: "factdb".into(), root });
    }

    /// Produces one block from all pending transactions, imports it, and
    /// post-processes: indexes news events, applies identity records,
    /// admits attested facts (and re-anchors when the DB grew).
    ///
    /// # Errors
    ///
    /// Chain-level import errors (should not occur for platform-built
    /// transactions).
    pub fn produce_block(&mut self) -> Result<BlockSummary, PlatformError> {
        let txs = self.mempool.select(self.store.head_state(), 10_000);
        self.reserved_nonces.clear();
        // Contract execution never touches chain State (only fees/nonces),
        // so the proposal pass can run without the registry; the import
        // pass executes against the authoritative registry exactly once.
        let block = self.store.propose(&self.validator, self.clock, txs, &mut NoExecutor);
        let receipts = self.store.import(block, &mut self.registry)?;
        self.mempool.prune_committed(self.store.head_state());
        self.clock += 1;

        let head = self.store.head().clone();
        let mut failed = 0usize;
        for (tx, receipt) in head.transactions.iter().zip(&receipts) {
            if !receipt.success {
                failed += 1;
                continue;
            }
            // Index news events into the supply-chain graph; remember
            // headlines for stance-aware AI scoring.
            index_transaction(tx, &mut self.graph, &mut self.index_stats);
            if let Some(Ok(event)) = NewsEvent::from_payload(&tx.payload) {
                if !event.headline.is_empty() {
                    let id = tn_supplychain::graph::item_id(
                        &tx.from,
                        &event.content,
                        event.published_at,
                    );
                    self.headlines.insert(id, event.headline);
                }
            }
            // Apply identity records.
            if let Payload::Blob { tag, data } = &tx.payload {
                if *tag == blob_tags::IDENTITY {
                    if let Ok(rec) = IdentityRecord::from_bytes(data) {
                        self.identities.register(tx.from, &rec.name, &rec.roles);
                    }
                }
            }
        }

        // Fact admission: any candidate that has reached the threshold is
        // appended to the DB and becomes a graph root; then re-anchor.
        let admitted: Vec<Hash256> = self
            .fact_candidates
            .keys()
            .filter(|id| self.admission().is_admitted(id))
            .copied()
            .collect();
        for id in &admitted {
            let rec = self.fact_candidates.remove(id).expect("key listed");
            if !self.factdb.contains(id) {
                self.graph
                    .add_fact_root(*id, &rec.content, &rec.topic, rec.recorded_at)
                    .ok(); // already a news item id clash is impossible (tagged hashes differ)
                self.factdb.append(rec).ok();
            }
        }
        if !admitted.is_empty() {
            self.enqueue_anchor();
        }

        Ok(BlockSummary {
            height: head.header.height,
            included: head.transactions.len(),
            failed,
            admitted_facts: admitted,
        })
    }

    // --- identity & governance -------------------------------------------

    /// Verifies an identity: the governor grants an initial token balance
    /// and the account registers its name and roles on-chain.
    pub fn register_identity(&mut self, who: &Keypair, name: &str, roles: &[Role]) {
        let governor = self.governor.clone();
        self.enqueue(
            &governor,
            Payload::Transfer { to: who.address(), amount: self.config.identity_grant },
        );
        let record = IdentityRecord { name: name.into(), roles: roles.to_vec() };
        // Registration is platform-subsidized (fee 0): the account may be
        // brand-new and unfunded until the grant above commits, and the
        // mempool orders by fee, not enqueue order.
        self.enqueue_with_fee(
            who,
            0,
            Payload::Blob { tag: blob_tags::IDENTITY, data: record.to_bytes() },
        );
        // Fact checkers are also registered with the admission contract.
        if roles.contains(&Role::FactChecker) {
            let input = admission_register_checker(&who.address());
            let governor = self.governor.clone();
            self.enqueue(
                &governor,
                Payload::ContractCall {
                    contract: self.admission_addr,
                    input,
                    gas_limit: 10_000,
                },
            );
        }
    }

    fn require_role(&self, who: &Address, role: Role) -> Result<(), PlatformError> {
        if !self.identities.is_verified(who) {
            return Err(PlatformError::NotVerified(*who));
        }
        if !self.identities.has_role(who, role) {
            return Err(PlatformError::NotAuthorized(format!(
                "{} lacks role {role:?}",
                who.short()
            )));
        }
        Ok(())
    }

    /// A publisher applies to create a distribution platform (§V layer 1).
    ///
    /// # Errors
    ///
    /// Requires the `Publisher` role.
    pub fn create_publisher_platform(
        &mut self,
        publisher: &Keypair,
        name: &str,
    ) -> Result<(), PlatformError> {
        self.require_role(&publisher.address(), Role::Publisher)?;
        let input = newsroom_register_platform(name);
        self.enqueue(
            publisher,
            Payload::ContractCall { contract: self.newsroom_addr, input, gas_limit: 10_000 },
        );
        Ok(())
    }

    /// Creates a topical news room on an owned platform (§V layer 2).
    ///
    /// # Errors
    ///
    /// Requires the `Publisher` role (ownership is enforced by the
    /// contract at execution).
    pub fn create_news_room(
        &mut self,
        publisher: &Keypair,
        platform_id: u64,
        topic: &str,
    ) -> Result<(), PlatformError> {
        self.require_role(&publisher.address(), Role::Publisher)?;
        let input = newsroom_create_room(platform_id, topic);
        self.enqueue(
            publisher,
            Payload::ContractCall { contract: self.newsroom_addr, input, gas_limit: 10_000 },
        );
        Ok(())
    }

    /// Authorizes a journalist to publish in a room.
    ///
    /// # Errors
    ///
    /// Requires the `Publisher` role.
    pub fn authorize_journalist(
        &mut self,
        publisher: &Keypair,
        room: u64,
        journalist: &Address,
    ) -> Result<(), PlatformError> {
        self.require_role(&publisher.address(), Role::Publisher)?;
        let input = newsroom_authorize(room, journalist);
        self.enqueue(
            publisher,
            Payload::ContractCall { contract: self.newsroom_addr, input, gas_limit: 10_000 },
        );
        Ok(())
    }

    // --- news flow ---------------------------------------------------------

    /// Publishes a news item into a room. Parents (other items or factual
    /// records) establish the provenance edges of §VI.
    ///
    /// Returns the item id the event will have once the block commits.
    ///
    /// # Errors
    ///
    /// Requires a verified `ContentCreator` authorized in the room.
    pub fn publish_news(
        &mut self,
        author: &Keypair,
        room: u64,
        topic: &str,
        content: &str,
        parents: Vec<(Hash256, PropagationOp)>,
    ) -> Result<Hash256, PlatformError> {
        self.publish_news_with_headline(author, room, topic, "", content, parents)
    }

    /// [`Self::publish_news`] with an explicit headline. The headline is
    /// recorded on-chain with the event, and the platform's AI component
    /// runs headline/body stance analysis on it: a body that contradicts
    /// its own headline (or is unrelated to it) is a fake-news signal per
    /// the Fake News Challenge approach the paper cites [33].
    ///
    /// # Errors
    ///
    /// Same as [`Self::publish_news`].
    pub fn publish_news_with_headline(
        &mut self,
        author: &Keypair,
        room: u64,
        topic: &str,
        headline: &str,
        content: &str,
        parents: Vec<(Hash256, PropagationOp)>,
    ) -> Result<Hash256, PlatformError> {
        self.require_role(&author.address(), Role::ContentCreator)?;
        if !self.newsrooms().is_authorized(room, &author.address()) {
            return Err(PlatformError::NotAuthorized(format!(
                "{} not authorized in room {room}",
                author.address().short()
            )));
        }
        let published_at = self.clock;
        let event = NewsEvent {
            headline: headline.to_string(),
            content: content.to_string(),
            topic: topic.to_string(),
            room,
            parents: parents.iter().map(|(id, op)| (*id, op.tag())).collect(),
            published_at,
        };
        let item_id =
            tn_supplychain::graph::item_id(&author.address(), content, published_at);
        self.enqueue(author, event.into_payload());
        Ok(item_id)
    }

    /// A consumer submits a 0–100 truthfulness rating for an item.
    ///
    /// # Errors
    ///
    /// Requires a verified identity (any role).
    pub fn submit_rating(
        &mut self,
        rater: &Keypair,
        item: &Hash256,
        score: u8,
    ) -> Result<(), PlatformError> {
        if !self.identities.is_verified(&rater.address()) {
            return Err(PlatformError::NotVerified(rater.address()));
        }
        let input = ranking_submit(item, score);
        self.enqueue(
            rater,
            Payload::ContractCall { contract: self.ranking_addr, input, gas_limit: 10_000 },
        );
        Ok(())
    }

    /// Proposes a record for factual-database admission; fact checkers
    /// then attest it. Returns the record id.
    pub fn propose_fact(&mut self, record: FactRecord) -> Hash256 {
        let id = record.id();
        self.fact_candidates.insert(id, record);
        id
    }

    /// A fact checker attests a proposed record.
    ///
    /// # Errors
    ///
    /// Requires the `FactChecker` role and a known candidate record.
    pub fn attest_fact(
        &mut self,
        checker: &Keypair,
        record_id: &Hash256,
    ) -> Result<(), PlatformError> {
        self.require_role(&checker.address(), Role::FactChecker)?;
        if !self.fact_candidates.contains_key(record_id) && !self.factdb.contains(record_id) {
            return Err(PlatformError::UnknownItem(*record_id));
        }
        let input = admission_attest(record_id);
        self.enqueue(
            checker,
            Payload::ContractCall { contract: self.admission_addr, input, gas_limit: 10_000 },
        );
        Ok(())
    }

    // --- AI & ranking -----------------------------------------------------

    /// Trains the platform's AI detector on a labeled corpus (the
    /// AI-developer role's contribution to the ecosystem).
    pub fn train_detector(&mut self, corpus: &[tn_aidetect::corpus::LabeledDoc]) {
        self.detector = Some(EnsembleDetector::train(corpus, EnsembleWeights::default()));
    }

    /// True when a detector has been trained.
    pub fn has_detector(&self) -> bool {
        self.detector.is_some()
    }

    /// Computes the combined ranking of an item: provenance trace × AI ×
    /// crowd, per the configured weights.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownItem`] when the item is not in the graph.
    pub fn rank_item(&self, item: &Hash256) -> Result<ItemRank, PlatformError> {
        let node = self.graph.get(item).ok_or(PlatformError::UnknownItem(*item))?;
        let trace = self.graph.trace_back(item)?;
        let t = trace_score(&trace);
        let ai = match &self.detector {
            Some(d) => match self.headlines.get(item) {
                Some(headline) => 1.0 - d.prob_fake_with_headline(headline, &node.content),
                None => d.prob_factual(&node.content),
            },
            None => 0.5,
        };
        let (count, mean_e4) = self.ranking_contract().ranking(item);
        let crowd = if count > 0 { (mean_e4 as f64 / 10_000.0) / 100.0 } else { 0.5 };
        let w = self.config.weights;
        let total = w.trace + w.ai + w.crowd;
        let rank = 100.0 * (w.trace * t + w.ai * ai + w.crowd * crowd) / total;
        Ok(ItemRank { trace: t, ai, crowd, rank, reaches_root: trace.reaches_root })
    }

    /// Traces an item back toward the factual database.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Graph`] for unknown items.
    pub fn trace_item(&self, item: &Hash256) -> Result<TraceResult, PlatformError> {
        Ok(self.graph.trace_back(item)?)
    }

    /// The account that originated an item's content (§IV accountability).
    ///
    /// # Errors
    ///
    /// [`PlatformError::Graph`] for unknown items.
    pub fn origin_of(&self, item: &Hash256) -> Result<Option<Address>, PlatformError> {
        Ok(self.graph.origin_author(item)?)
    }

    /// The account that introduced the largest modification (≥ 0.1) along
    /// an item's provenance path — the distortion-accountability query.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Graph`] for unknown items.
    pub fn distortion_culprit_of(
        &self,
        item: &Hash256,
    ) -> Result<Option<(Address, f64)>, PlatformError> {
        Ok(self.graph.distortion_culprit(item, 0.1)?)
    }

    /// Suggests the top-k domain experts for a topic from ledger history
    /// (§VI expert identification).
    pub fn suggest_experts(
        &self,
        topic: &str,
        k: usize,
    ) -> Vec<tn_supplychain::expert::ExpertScore> {
        tn_supplychain::expert::experts_for_topic(&self.graph, topic, k)
    }

    /// The governor rewards an account with incentive points ("economic
    /// incentives to reward individuals", §V) via the incentive contract.
    pub fn reward_points(&mut self, who: &Address, amount: u64) {
        let governor = self.governor.clone();
        let input = tn_contracts::builtin::incentive_reward(who, amount);
        self.enqueue(
            &governor,
            Payload::ContractCall { contract: self.incentive_addr, input, gas_limit: 10_000 },
        );
    }

    /// The governor slashes an account's incentive points.
    pub fn slash_points(&mut self, who: &Address, amount: u64) {
        let governor = self.governor.clone();
        let input = tn_contracts::builtin::incentive_slash(who, amount);
        self.enqueue(
            &governor,
            Payload::ContractCall { contract: self.incentive_addr, input, gas_limit: 10_000 },
        );
    }

    // --- Management Act enforcement ---------------------------------------

    /// Enforces the "AI Blockchain Platform Management Act" (§V): scans the
    /// supply-chain graph for accounts that introduced heavy modifications
    /// (degree ≥ `threshold`) on `strikes` or more items, and revokes their
    /// authorization in every news room (by enqueueing the publisher-signed
    /// revocation calls — all enforcement actions are themselves on-chain).
    ///
    /// Returns the sanctioned accounts with their strike counts. The
    /// `enforcer` must own the affected rooms' platforms (the paper's "the
    /// distribution platform will be responsible for the trust of its
    /// content creators").
    pub fn enforce_management_act(
        &mut self,
        enforcer: &Keypair,
        threshold: f64,
        strikes: usize,
    ) -> Result<Vec<(Address, usize)>, PlatformError> {
        self.require_role(&enforcer.address(), Role::Publisher)?;
        // Count heavy-modification edges per author across the graph.
        let mut counts: HashMap<Address, usize> = HashMap::new();
        for item in self.graph.iter().filter(|i| !i.is_fact_root) {
            let heavy = item.parents.iter().any(|p| p.modification >= threshold);
            if heavy {
                *counts.entry(item.author).or_insert(0) += 1;
            }
        }
        let mut sanctioned: Vec<(Address, usize)> =
            counts.into_iter().filter(|(_, c)| *c >= strikes).collect();
        sanctioned.sort_by_key(|(a, c)| (std::cmp::Reverse(*c), *a));

        // Revoke each sanctioned account from every room on platforms the
        // enforcer owns.
        let rooms: Vec<u64> = self
            .newsrooms()
            .rooms()
            .filter(|(_, room)| {
                self.newsrooms()
                    .platform(room.platform)
                    .is_some_and(|p| p.owner == enforcer.address())
            })
            .map(|(id, _)| id)
            .collect();
        for (who, _) in &sanctioned {
            for room in &rooms {
                let input = tn_contracts::builtin::newsroom_revoke(*room, who);
                self.enqueue(
                    enforcer,
                    Payload::ContractCall {
                        contract: self.newsroom_addr,
                        input,
                        gas_limit: 10_000,
                    },
                );
            }
        }
        Ok(sanctioned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot() -> Platform {
        Platform::new(PlatformConfig::default())
    }

    fn kp(seed: &str) -> Keypair {
        Keypair::from_seed(seed.as_bytes())
    }

    #[test]
    fn boot_seeds_and_anchors_factdb() {
        let p = boot();
        assert_eq!(p.factdb().len(), 50);
        assert_eq!(p.graph().root_count(), 50);
        assert_eq!(p.anchored_fact_root(), Some(p.factdb().root()));
        assert!(p.height() >= 1);
    }

    #[test]
    fn identity_and_publisher_flow() {
        let mut p = boot();
        let pub_kp = kp("publisher");
        let journo = kp("journalist");
        p.register_identity(&pub_kp, "Daily Facts Inc", &[Role::Publisher]);
        p.register_identity(&journo, "Jane Doe", &[Role::ContentCreator]);
        p.produce_block().unwrap();
        assert!(p.identities().has_role(&pub_kp.address(), Role::Publisher));

        p.create_publisher_platform(&pub_kp, "Daily Facts").unwrap();
        p.produce_block().unwrap();
        let pid = p.newsrooms().find_platform("Daily Facts").expect("created");

        p.create_news_room(&pub_kp, pid, "energy").unwrap();
        p.produce_block().unwrap();
        let (rid, room) = p.newsrooms().rooms().next().expect("room exists");
        assert_eq!(room.topic, "energy");

        p.authorize_journalist(&pub_kp, rid, &journo.address()).unwrap();
        p.produce_block().unwrap();
        assert!(p.newsrooms().is_authorized(rid, &journo.address()));
    }

    /// Boots a platform with a publisher, a room and an authorized
    /// journalist; returns (platform, journalist, room id).
    fn with_room() -> (Platform, Keypair, u64) {
        let mut p = boot();
        let pub_kp = kp("publisher");
        let journo = kp("journalist");
        p.register_identity(&pub_kp, "Daily Facts Inc", &[Role::Publisher]);
        p.register_identity(&journo, "Jane Doe", &[Role::ContentCreator, Role::Consumer]);
        p.produce_block().unwrap();
        p.create_publisher_platform(&pub_kp, "Daily Facts").unwrap();
        p.produce_block().unwrap();
        let pid = p.newsrooms().find_platform("Daily Facts").unwrap();
        p.create_news_room(&pub_kp, pid, "energy").unwrap();
        p.produce_block().unwrap();
        let rid = p.newsrooms().rooms().next().unwrap().0;
        p.authorize_journalist(&pub_kp, rid, &journo.address()).unwrap();
        p.produce_block().unwrap();
        (p, journo, rid)
    }

    #[test]
    fn publish_cite_and_rank() {
        let (mut p, journo, rid) = with_room();
        // Cite a factual record verbatim.
        let root = p.factdb().iter().next().unwrap().clone();
        let item = p
            .publish_news(
                &journo,
                rid,
                &root.topic,
                &root.content,
                vec![(root.id(), PropagationOp::Cite)],
            )
            .unwrap();
        p.produce_block().unwrap();

        assert_eq!(p.index_stats().indexed, 1);
        let rank = p.rank_item(&item).unwrap();
        assert!(rank.reaches_root);
        assert!((rank.trace - 1.0).abs() < 1e-9);
        assert!(rank.rank > 60.0, "rank {}", rank.rank);

        // An unsourced fabrication ranks lower.
        let fake = p
            .publish_news(&journo, rid, "energy", "Secret memo reveals it was all a lie.", vec![])
            .unwrap();
        p.produce_block().unwrap();
        let fake_rank = p.rank_item(&fake).unwrap();
        assert!(!fake_rank.reaches_root);
        assert!(fake_rank.rank < rank.rank);
    }

    #[test]
    fn unauthorized_publishing_rejected() {
        let (mut p, _journo, rid) = with_room();
        let stranger = kp("stranger");
        // Not verified at all.
        assert!(matches!(
            p.publish_news(&stranger, rid, "t", "text", vec![]),
            Err(PlatformError::NotVerified(_))
        ));
        // Verified consumer but not authorized in the room.
        p.register_identity(&stranger, "Stranger", &[Role::ContentCreator]);
        p.produce_block().unwrap();
        assert!(matches!(
            p.publish_news(&stranger, rid, "t", "text", vec![]),
            Err(PlatformError::NotAuthorized(_))
        ));
    }

    #[test]
    fn ratings_flow_into_ranking() {
        let (mut p, journo, rid) = with_room();
        let root = p.factdb().iter().next().unwrap().clone();
        let item = p
            .publish_news(&journo, rid, &root.topic, &root.content,
                          vec![(root.id(), PropagationOp::Cite)])
            .unwrap();
        p.produce_block().unwrap();

        let neutral = p.rank_item(&item).unwrap();
        p.submit_rating(&journo, &item, 95).unwrap();
        p.produce_block().unwrap();
        let rated = p.rank_item(&item).unwrap();
        assert!(rated.crowd > neutral.crowd);
        assert!(rated.rank > neutral.rank);
    }

    #[test]
    fn fact_attestation_grows_database_and_reanchors() {
        let mut p = boot();
        let c1 = kp("checker1");
        let c2 = kp("checker2");
        p.register_identity(&c1, "Checker One", &[Role::FactChecker]);
        p.register_identity(&c2, "Checker Two", &[Role::FactChecker]);
        p.produce_block().unwrap();

        let record = FactRecord {
            source: tn_factdb::record::SourceKind::VerifiedNews,
            speaker: "Mayor Donovan".into(),
            topic: "housing".into(),
            content: "The permit reform passed the council vote.".into(),
            recorded_at: 77,
        };
        let id = p.propose_fact(record);
        let before_root = p.anchored_fact_root();
        let before_len = p.factdb().len();

        p.attest_fact(&c1, &id).unwrap();
        let s = p.produce_block().unwrap();
        assert!(s.admitted_facts.is_empty(), "one attestation below threshold");

        p.attest_fact(&c2, &id).unwrap();
        let s = p.produce_block().unwrap();
        assert_eq!(s.admitted_facts, vec![id]);
        assert_eq!(p.factdb().len(), before_len + 1);
        assert!(p.factdb().contains(&id));

        // Re-anchor lands in the following block.
        p.produce_block().unwrap();
        assert_ne!(p.anchored_fact_root(), before_root);
        assert_eq!(p.anchored_fact_root(), Some(p.factdb().root()));
    }

    #[test]
    fn expert_suggestion_from_history() {
        let (mut p, journo, rid) = with_room();
        let roots: Vec<FactRecord> = p.factdb().iter().take(3).cloned().collect();
        for r in &roots {
            p.publish_news(&journo, rid, &r.topic, &r.content, vec![(r.id(), PropagationOp::Cite)])
                .unwrap();
            p.produce_block().unwrap();
        }
        let topic = &roots[0].topic;
        let experts = p.suggest_experts(topic, 3);
        assert!(!experts.is_empty());
        assert_eq!(experts[0].author, journo.address());
    }

    #[test]
    fn origin_accountability() {
        let (mut p, journo, rid) = with_room();
        let fake = p
            .publish_news(&journo, rid, "energy", "Invented scandal content here.", vec![])
            .unwrap();
        p.produce_block().unwrap();
        assert_eq!(p.origin_of(&fake).unwrap(), Some(journo.address()));
    }

    #[test]
    fn detector_changes_ai_component() {
        let (mut p, journo, rid) = with_room();
        let fake = p
            .publish_news(
                &journo,
                rid,
                "energy",
                "Shocking corrupt scandal exposed by anonymous insiders, share before deleted!",
                vec![],
            )
            .unwrap();
        p.produce_block().unwrap();
        let before = p.rank_item(&fake).unwrap();
        assert!((before.ai - 0.5).abs() < 1e-9, "no detector yet");

        let corpus = tn_aidetect::corpus::generate_news_corpus(
            &tn_aidetect::corpus::NewsCorpusConfig::default(),
        );
        p.train_detector(&corpus);
        let after = p.rank_item(&fake).unwrap();
        assert!(after.ai < 0.35, "detector should flag the fake, ai={}", after.ai);
        assert!(after.rank < before.rank);
    }

    #[test]
    fn contradictory_headline_lowers_ai_score() {
        let (mut p, journo, rid) = with_room();
        let corpus = tn_aidetect::corpus::generate_news_corpus(
            &tn_aidetect::corpus::NewsCorpusConfig::default(),
        );
        p.train_detector(&corpus);

        let body = "Officials confirmed the committee approved the amendment; \
                    the record was published and signed the same day.";
        let consistent = p
            .publish_news_with_headline(
                &journo, rid, "energy", "Committee approves amendment", body, vec![],
            )
            .unwrap();
        let refuting_body = "Claims that the committee approved the amendment are false; \
                             the chair denied the amendment approval and called the report \
                             a hoax, not news.";
        let contradicted = p
            .publish_news_with_headline(
                &journo, rid, "energy", "Committee approves amendment", refuting_body, vec![],
            )
            .unwrap();
        p.produce_block().unwrap();

        let rc = p.rank_item(&consistent).unwrap();
        let rx = p.rank_item(&contradicted).unwrap();
        assert!(
            rc.ai > rx.ai + 0.1,
            "stance should separate: consistent {} vs contradicted {}",
            rc.ai,
            rx.ai
        );
    }

    #[test]
    fn management_act_revokes_repeat_distorters() {
        let (mut p, journo, rid) = with_room();
        let pub_kp = kp("publisher");
        let tabloid = kp("ma tabloid");
        p.register_identity(&tabloid, "MA Tabloid", &[Role::ContentCreator]);
        p.produce_block().unwrap();
        p.authorize_journalist(&pub_kp, rid, &tabloid.address()).unwrap();
        p.produce_block().unwrap();

        // Tabloid distorts three different factual records heavily;
        // journalist relays faithfully.
        let roots: Vec<_> = p.factdb().iter().take(3).cloned().collect();
        for r in &roots {
            let distorted = format!(
                "{} Insiders warn this is a shocking corrupt cover-up. \
                 They do not want you to know the terrifying truth. \
                 Share this before it gets deleted by the censors.",
                r.content
            );
            p.publish_news(&tabloid, rid, &r.topic, &distorted,
                           vec![(r.id(), PropagationOp::Insert)])
                .unwrap();
            p.publish_news(&journo, rid, &r.topic, &r.content,
                           vec![(r.id(), PropagationOp::Cite)])
                .unwrap();
            p.produce_block().unwrap();
        }

        let sanctioned = p.enforce_management_act(&pub_kp, 0.25, 3).unwrap();
        assert_eq!(sanctioned.len(), 1);
        assert_eq!(sanctioned[0].0, tabloid.address());
        assert_eq!(sanctioned[0].1, 3);
        p.produce_block().unwrap();

        // Revocation is effective: the tabloid can no longer publish.
        assert!(!p.newsrooms().is_authorized(rid, &tabloid.address()));
        assert!(matches!(
            p.publish_news(&tabloid, rid, "energy", "more spin", vec![]),
            Err(PlatformError::NotAuthorized(_))
        ));
        // The honest journalist is untouched.
        assert!(p.newsrooms().is_authorized(rid, &journo.address()));

        // Only publishers may enforce.
        assert!(matches!(
            p.enforce_management_act(&journo, 0.25, 3),
            Err(PlatformError::NotAuthorized(_))
        ));
    }

    #[test]
    fn chain_records_everything() {
        let (p, _journo, _rid) = with_room();
        // Every platform action above went through transactions.
        let txs = p.store().canonical_transactions();
        assert!(txs.len() >= 6, "expected a populated ledger, got {}", txs.len());
    }
}
