//! Participant-level verdict state machine.
//!
//! The replica health machine in [`health`](crate::health) answers "can
//! I trust this *replica*?". During a misinformation campaign the
//! platform also needs an online answer to "can I trust this
//! *participant*?" — a crowd ranker whose votes keep landing inside
//! coordination rings. [`ParticipantLedger`] mirrors the replica
//! machine's shape: a monotone escalation ladder
//! (`Trusted → Watched → Quarantined`) driven by per-tick strike
//! observations, with hysteresis in both directions so a single noisy
//! tick neither condemns an honest ranker nor paroles a bot.
//!
//! Participants are identified by opaque strings (typically a hex
//! address) — this crate deliberately knows nothing about keys or
//! addresses, so verdicts stay a pure function of observed behaviour.

use std::collections::BTreeMap;

/// How much the monitoring plane currently trusts one participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ParticipantVerdict {
    /// No recent coordination evidence.
    Trusted,
    /// Implicated in at least one coordination ring recently; votes
    /// should be cross-checked but still count.
    Watched,
    /// Persistently coordinated; the enforcement plane should zero this
    /// participant's vote weight until the verdict decays.
    Quarantined,
}

impl ParticipantVerdict {
    /// Short lowercase label (`"trusted"`, `"watched"`, `"quarantined"`).
    pub fn label(&self) -> &'static str {
        match self {
            ParticipantVerdict::Trusted => "trusted",
            ParticipantVerdict::Watched => "watched",
            ParticipantVerdict::Quarantined => "quarantined",
        }
    }
}

/// Hysteresis thresholds for the verdict ladder.
#[derive(Debug, Clone, Copy)]
pub struct ParticipantPolicy {
    /// Consecutive strike ticks before `Trusted → Watched`.
    pub watch_after: u32,
    /// Consecutive strike ticks before `Watched → Quarantined`.
    pub quarantine_after: u32,
    /// Consecutive clean ticks before stepping one rung back down.
    pub clear_after: u32,
}

impl Default for ParticipantPolicy {
    fn default() -> Self {
        ParticipantPolicy {
            watch_after: 1,
            quarantine_after: 2,
            clear_after: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ParticipantRecord {
    verdict: ParticipantVerdict,
    /// Consecutive ticks implicated in a ring.
    strikes: u32,
    /// Consecutive ticks observed clean since the last strike.
    clean: u32,
}

impl ParticipantRecord {
    fn new() -> ParticipantRecord {
        ParticipantRecord {
            verdict: ParticipantVerdict::Trusted,
            strikes: 0,
            clean: 0,
        }
    }
}

/// Tracks a verdict per participant from per-tick strike observations.
///
/// Feed it one [`observe`](ParticipantLedger::observe) call per
/// monitoring tick with the ids implicated in coordination rings that
/// tick; every other known participant is treated as clean for the
/// tick. Verdict changes are returned and also appended to an
/// append-only transition log, mirroring
/// [`ReplicaMonitor::transitions`](crate::health::ReplicaMonitor::transitions).
#[derive(Debug, Default)]
pub struct ParticipantLedger {
    policy: ParticipantPolicy,
    records: BTreeMap<String, ParticipantRecord>,
    /// `(tick, participant, new verdict)`, oldest first.
    transitions: Vec<(u64, String, ParticipantVerdict)>,
}

impl ParticipantLedger {
    /// An empty ledger with the given hysteresis policy.
    pub fn new(policy: ParticipantPolicy) -> ParticipantLedger {
        ParticipantLedger {
            policy,
            records: BTreeMap::new(),
            transitions: Vec::new(),
        }
    }

    /// Ingests one monitoring tick: `implicated` are the participants
    /// flagged inside a coordination ring this tick; every other known
    /// participant counts as clean. Returns the verdict transitions the
    /// tick produced, in participant order.
    pub fn observe(
        &mut self,
        tick: u64,
        implicated: &[String],
    ) -> Vec<(String, ParticipantVerdict)> {
        for id in implicated {
            self.records
                .entry(id.clone())
                .or_insert_with(ParticipantRecord::new);
        }
        let mut changed = Vec::new();
        for (id, rec) in self.records.iter_mut() {
            let struck = implicated.iter().any(|i| i == id);
            let next = if struck {
                rec.strikes += 1;
                rec.clean = 0;
                match rec.verdict {
                    ParticipantVerdict::Trusted if rec.strikes >= self.policy.watch_after => {
                        // A strike streak long enough for quarantine
                        // skips the intermediate rung.
                        if rec.strikes >= self.policy.watch_after + self.policy.quarantine_after {
                            ParticipantVerdict::Quarantined
                        } else {
                            ParticipantVerdict::Watched
                        }
                    }
                    ParticipantVerdict::Watched
                        if rec.strikes
                            >= self.policy.watch_after + self.policy.quarantine_after =>
                    {
                        ParticipantVerdict::Quarantined
                    }
                    v => v,
                }
            } else {
                rec.clean += 1;
                if rec.clean >= self.policy.clear_after {
                    rec.clean = 0;
                    rec.strikes = 0;
                    match rec.verdict {
                        ParticipantVerdict::Quarantined => ParticipantVerdict::Watched,
                        ParticipantVerdict::Watched | ParticipantVerdict::Trusted => {
                            ParticipantVerdict::Trusted
                        }
                    }
                } else {
                    rec.verdict
                }
            };
            if next != rec.verdict {
                rec.verdict = next;
                changed.push((id.clone(), next));
            }
        }
        for (id, v) in &changed {
            self.transitions.push((tick, id.clone(), *v));
        }
        changed
    }

    /// Current verdict for `id` (`Trusted` when never observed).
    pub fn verdict(&self, id: &str) -> ParticipantVerdict {
        self.records
            .get(id)
            .map(|r| r.verdict)
            .unwrap_or(ParticipantVerdict::Trusted)
    }

    /// Participants currently under quarantine, in id order.
    pub fn quarantined(&self) -> Vec<&str> {
        self.records
            .iter()
            .filter(|(_, r)| r.verdict == ParticipantVerdict::Quarantined)
            .map(|(id, _)| id.as_str())
            .collect()
    }

    /// Every verdict transition so far, oldest first.
    pub fn transitions(&self) -> &[(u64, String, ParticipantVerdict)] {
        &self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn escalates_through_watched_to_quarantined_with_hysteresis() {
        let mut ledger = ParticipantLedger::new(ParticipantPolicy::default());
        let bot = ids(&["bot-1"]);
        let t1 = ledger.observe(1, &bot);
        assert_eq!(t1, vec![("bot-1".into(), ParticipantVerdict::Watched)]);
        // Policy default: quarantine needs watch_after + quarantine_after
        // = 3 consecutive strikes.
        assert!(ledger.observe(2, &bot).is_empty());
        let t3 = ledger.observe(3, &bot);
        assert_eq!(t3, vec![("bot-1".into(), ParticipantVerdict::Quarantined)]);
        assert_eq!(ledger.quarantined(), vec!["bot-1"]);
    }

    #[test]
    fn clean_ticks_step_back_down_one_rung_at_a_time() {
        let mut ledger = ParticipantLedger::new(ParticipantPolicy::default());
        let bot = ids(&["bot-1"]);
        for tick in 1..=3 {
            ledger.observe(tick, &bot);
        }
        assert_eq!(ledger.verdict("bot-1"), ParticipantVerdict::Quarantined);
        // clear_after = 4 clean ticks per rung: 4 → Watched, 8 → Trusted.
        for tick in 4..=7 {
            ledger.observe(tick, &[]);
        }
        assert_eq!(ledger.verdict("bot-1"), ParticipantVerdict::Watched);
        for tick in 8..=11 {
            ledger.observe(tick, &[]);
        }
        assert_eq!(ledger.verdict("bot-1"), ParticipantVerdict::Trusted);
        assert!(ledger.quarantined().is_empty());
    }

    #[test]
    fn single_noisy_tick_does_not_quarantine_and_resets_on_clean() {
        let mut ledger = ParticipantLedger::new(ParticipantPolicy::default());
        ledger.observe(1, &ids(&["h-1"]));
        assert_eq!(ledger.verdict("h-1"), ParticipantVerdict::Watched);
        // One strike then clean: strikes reset after clear_after ticks,
        // so a later isolated strike still only reaches Watched.
        for tick in 2..=5 {
            ledger.observe(tick, &[]);
        }
        assert_eq!(ledger.verdict("h-1"), ParticipantVerdict::Trusted);
        ledger.observe(6, &ids(&["h-1"]));
        assert_eq!(ledger.verdict("h-1"), ParticipantVerdict::Watched);
        assert!(ledger.quarantined().is_empty());
    }

    #[test]
    fn unknown_participants_default_to_trusted() {
        let ledger = ParticipantLedger::default();
        assert_eq!(ledger.verdict("nobody"), ParticipantVerdict::Trusted);
        assert!(ledger.quarantined().is_empty());
        assert!(ledger.transitions().is_empty());
    }

    #[test]
    fn transition_log_records_tick_and_order() {
        let mut ledger = ParticipantLedger::new(ParticipantPolicy::default());
        let ring = ids(&["a", "b"]);
        ledger.observe(5, &ring);
        ledger.observe(6, &ring);
        ledger.observe(7, &ring);
        let log = ledger.transitions();
        assert_eq!(log.len(), 4);
        assert_eq!(log[0], (5, "a".into(), ParticipantVerdict::Watched));
        assert_eq!(log[1], (5, "b".into(), ParticipantVerdict::Watched));
        assert_eq!(log[2], (7, "a".into(), ParticipantVerdict::Quarantined));
        assert_eq!(log[3], (7, "b".into(), ParticipantVerdict::Quarantined));
    }
}
