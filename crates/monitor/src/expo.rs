//! Exposition: Prometheus text format and JSON dumps of series, alerts,
//! and health, plus the merged cluster alert-timeline artifact.
//!
//! Everything here is a pure function from monitor state to a `String`;
//! no I/O, no dependencies. The Prometheus output follows the text
//! exposition format (metric names `[a-zA-Z_:][a-zA-Z0-9_:]*`, dots in
//! series names mapped to underscores, `# HELP`/`# TYPE` headers, label
//! values escaped) and [`lint_prometheus`] machine-checks that shape so
//! a formatting regression fails a unit test rather than a scrape.

use crate::health::{ClusterHealth, HealthState, ReplicaMonitor};
use crate::rules::{AlertState, Transition};

/// Quantiles exported for each histogram series.
const EXPORT_QUANTILES: [f64; 3] = [0.5, 0.99, 0.999];

/// Renders one replica's monitor state in the Prometheus text exposition
/// format: cumulative counters (`*_total`), histogram summaries
/// (quantile/sum/count), per-rule alert gauges, and the health state.
pub fn prometheus_text(monitor: &ReplicaMonitor) -> String {
    let mut out = String::new();
    let replica = monitor.replica();
    let tsdb = monitor.tsdb();

    // Counter series, cumulative values.
    for name in tsdb.counter_names() {
        let metric = metric_name(name);
        let value = tsdb.counter_latest(name).unwrap_or(0);
        push_header(&mut out, &format!("{metric}_total"), name, "counter");
        out.push_str(&format!(
            "{metric}_total{{replica=\"{replica}\"}} {value}\n"
        ));
    }
    // Histogram series as summaries over the full retained range.
    for name in tsdb.histogram_names() {
        let metric = metric_name(name);
        push_header(&mut out, &metric, name, "summary");
        if let Some(merged) = tsdb.histogram_window(name, usize::MAX) {
            for q in EXPORT_QUANTILES {
                let value = if merged.count == 0 {
                    f64::NAN
                } else {
                    merged.quantile(q) as f64
                };
                out.push_str(&format!(
                    "{metric}{{replica=\"{replica}\",quantile=\"{q}\"}} {}\n",
                    fmt_value(value)
                ));
            }
            out.push_str(&format!(
                "{metric}_sum{{replica=\"{replica}\"}} {}\n",
                merged.sum
            ));
            out.push_str(&format!(
                "{metric}_count{{replica=\"{replica}\"}} {}\n",
                merged.count
            ));
        }
    }
    // Alert gauges: 1 while firing.
    push_header(&mut out, "tn_alert_firing", "SLO rule alert state", "gauge");
    for rule in monitor.engine().rules() {
        let firing = matches!(monitor.engine().state(&rule.name), Some(AlertState::Firing));
        out.push_str(&format!(
            "tn_alert_firing{{replica=\"{replica}\",rule=\"{}\"}} {}\n",
            escape_label(&rule.name),
            u8::from(firing)
        ));
    }
    // Health as an enum gauge: exactly one state is 1.
    push_header(
        &mut out,
        "tn_replica_health",
        "replica health state (one-hot)",
        "gauge",
    );
    for state in [
        HealthState::Healthy,
        HealthState::Degraded,
        HealthState::Lagging,
        HealthState::Quarantined,
    ] {
        out.push_str(&format!(
            "tn_replica_health{{replica=\"{replica}\",state=\"{}\"}} {}\n",
            state.label(),
            u8::from(monitor.health() == state)
        ));
    }
    out
}

/// Emits `# HELP` / `# TYPE` headers for a metric.
fn push_header(out: &mut String, metric: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {metric} {help}\n"));
    out.push_str(&format!("# TYPE {metric} {kind}\n"));
}

/// Maps a series name to a legal Prometheus metric name: `tn_` prefix,
/// dots and other illegal characters replaced with underscores.
pub fn metric_name(series: &str) -> String {
    let mut name = String::with_capacity(series.len() + 3);
    name.push_str("tn_");
    for (i, c) in series.chars().enumerate() {
        let legal = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        let legal = legal && !(i == 0 && c.is_ascii_digit());
        name.push(if legal { c } else { '_' });
    }
    name
}

/// Escapes a label value per the exposition format (`\` → `\\`,
/// `"` → `\"`, newline → `\n`).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a sample value: finite numbers plainly, non-finite values as
/// the exposition-format specials `NaN` / `+Inf` / `-Inf`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Lints Prometheus text exposition output: every line must be a
/// well-formed `# HELP`/`# TYPE` comment or a `name{labels} value`
/// sample with a legal metric name, balanced quoted labels, and a
/// parseable value. Returns the first offending line on failure.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let ok = rest
                .strip_prefix("HELP ")
                .or_else(|| rest.strip_prefix("TYPE "))
                .map(|body| {
                    let mut parts = body.splitn(2, ' ');
                    let name = parts.next().unwrap_or("");
                    legal_metric_name(name) && parts.next().is_some_and(|s| !s.is_empty())
                })
                .unwrap_or(false);
            if !ok {
                return Err(format!("malformed comment line: {line:?}"));
            }
            continue;
        }
        lint_sample_line(line).map_err(|e| format!("{e}: {line:?}"))?;
    }
    Ok(())
}

/// Validates one sample line `name{labels} value`.
fn lint_sample_line(line: &str) -> Result<(), &'static str> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unbalanced label braces")?;
            if close < brace {
                return Err("unbalanced label braces");
            }
            lint_labels(&line[brace + 1..close])?;
            (&line[..brace], &line[close + 1..])
        }
        None => {
            let space = line.find(' ').ok_or("missing value")?;
            (&line[..space], &line[space..])
        }
    };
    if !legal_metric_name(name_part) {
        return Err("illegal metric name");
    }
    let value = rest.trim();
    let ok = matches!(value, "NaN" | "+Inf" | "-Inf") || value.parse::<f64>().is_ok();
    if !ok {
        return Err("unparseable sample value");
    }
    Ok(())
}

/// Validates a comma-separated `key="value"` label body.
fn lint_labels(body: &str) -> Result<(), &'static str> {
    if body.is_empty() {
        return Ok(());
    }
    for pair in split_labels(body) {
        let eq = pair.find('=').ok_or("label missing '='")?;
        let key = &pair[..eq];
        let value = &pair[eq + 1..];
        if key.is_empty() || !legal_metric_name(key) {
            return Err("illegal label name");
        }
        if value.len() < 2 || !value.starts_with('"') || !value.ends_with('"') {
            return Err("label value not quoted");
        }
    }
    Ok(())
}

/// Splits a label body on commas outside quoted values.
fn split_labels(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    out.push(&body[start..]);
    out
}

/// True when `name` is a legal Prometheus metric/label name.
fn legal_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => true,
            '0'..='9' => i > 0,
            _ => false,
        })
}

/// JSON dump of one replica's monitor state: latest cumulative counters,
/// histogram quantiles over the retained range, firing rules, the alert
/// timeline, and health transitions.
pub fn json_dump(monitor: &ReplicaMonitor) -> String {
    let tsdb = monitor.tsdb();
    let mut out = String::from("{");
    out.push_str(&format!("\"replica\":{}", monitor.replica()));
    out.push_str(&format!(",\"tick\":{}", tsdb.last_tick()));
    out.push_str(&format!(",\"samples\":{}", tsdb.samples_total()));
    out.push_str(&format!(",\"health\":\"{}\"", monitor.health().label()));
    out.push_str(",\"counters\":{");
    let mut first = true;
    for name in tsdb.counter_names() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{}:{}",
            json_str(name),
            tsdb.counter_latest(name).unwrap_or(0)
        ));
    }
    out.push_str("},\"histograms\":{");
    let mut first = true;
    for name in tsdb.histogram_names() {
        let merged = match tsdb.histogram_window(name, usize::MAX) {
            Some(m) => m,
            None => continue,
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
            json_str(name),
            merged.count,
            merged.sum,
            json_quantile(&merged, 0.5),
            json_quantile(&merged, 0.99),
            json_quantile(&merged, 0.999),
        ));
    }
    out.push_str("},\"firing\":[");
    let mut first = true;
    for (rule, value) in monitor.engine().firing() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"rule\":{},\"value\":{}}}",
            json_str(&rule.name),
            json_f64(value)
        ));
    }
    out.push_str("],\"alerts\":[");
    push_timeline(&mut out, monitor);
    out.push_str("],\"health_transitions\":[");
    let mut first = true;
    for &(tick, state) in monitor.transitions() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"tick\":{tick},\"state\":\"{}\"}}",
            state.label()
        ));
    }
    out.push_str("]}");
    out
}

/// Appends one replica's alert timeline entries (no brackets).
fn push_timeline(out: &mut String, monitor: &ReplicaMonitor) {
    let mut first = true;
    for alert in monitor.engine().timeline() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"replica\":{},\"tick\":{},\"rule\":{},\"transition\":\"{}\",\"value\":{}}}",
            monitor.replica(),
            alert.tick,
            json_str(&alert.rule),
            match alert.transition {
                Transition::Firing => "firing",
                Transition::Resolved => "resolved",
            },
            json_f64(alert.value)
        ));
    }
}

/// The merged cluster alert-timeline artifact: every replica's alert
/// transitions interleaved in tick order, plus the rollup verdict —
/// the machine-checkable record of what the health plane saw.
pub fn timeline_json(monitors: &[&ReplicaMonitor], health: &ClusterHealth) -> String {
    let mut events: Vec<(u64, usize, String)> = Vec::new();
    for monitor in monitors {
        for alert in monitor.engine().timeline() {
            let entry = format!(
                "{{\"replica\":{},\"tick\":{},\"rule\":{},\"severity\":\"{:?}\",\"transition\":\"{}\",\"value\":{}}}",
                monitor.replica(),
                alert.tick,
                json_str(&alert.rule),
                alert.severity,
                match alert.transition {
                    Transition::Firing => "firing",
                    Transition::Resolved => "resolved",
                },
                json_f64(alert.value)
            );
            events.push((alert.tick, monitor.replica(), entry));
        }
    }
    events.sort_by_key(|&(tick, replica, _)| (tick, replica));
    let mut out = String::from("{\"verdict\":");
    out.push_str(&format!("\"{}\"", health.verdict.label()));
    out.push_str(",\"replicas\":[");
    for (i, state) in health.replicas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", state.label()));
    }
    out.push_str("],\"events\":[");
    for (i, (_, _, entry)) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(entry);
    }
    out.push_str("]}");
    out
}

/// A quantile rendered for JSON (`null` when the histogram is empty).
fn json_quantile(merged: &tn_telemetry::HistogramSnapshot, q: f64) -> String {
    if merged.count == 0 {
        "null".into()
    } else {
        format!("{}", merged.quantile(q))
    }
}

/// An f64 rendered as valid JSON (`null` for non-finite values).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// A JSON string literal with escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{MonitorConfig, ReplicaMonitor};
    use tn_telemetry::Registry;

    fn exercised_monitor() -> ReplicaMonitor {
        let mut monitor = ReplicaMonitor::new(0, &MonitorConfig::default());
        let registry = Registry::new();
        let sink = registry.sink();
        sink.add("chain.blocks_imported", 3);
        sink.observe("pipeline.commit_ns", 1_500_000);
        sink.incr("node.batch.undecodable"); // fires a built-in rule
        monitor.sample(1, registry.snapshot());
        monitor
    }

    #[test]
    fn exposition_passes_the_lint() {
        let monitor = exercised_monitor();
        let text = prometheus_text(&monitor);
        lint_prometheus(&text).unwrap();
        assert!(text.contains("tn_chain_blocks_imported_total{replica=\"0\"} 3"));
        assert!(text.contains("tn_pipeline_commit_ns_count{replica=\"0\"} 1"));
        assert!(text.contains("tn_alert_firing{replica=\"0\",rule=\"undecodable-payloads\"} 1"));
        assert!(text.contains("tn_replica_health{replica=\"0\",state=\"degraded\"} 1"));
    }

    #[test]
    fn lint_rejects_malformed_lines() {
        assert!(lint_prometheus("1bad_name 3\n").is_err());
        assert!(lint_prometheus("name{unclosed=\"x\" 3\n").is_err());
        assert!(lint_prometheus("name{a=\"x\"} notanumber\n").is_err());
        assert!(lint_prometheus("# HELP only_name\n").is_err());
        assert!(lint_prometheus("ok{a=\"x,y\",b=\"z\"} 1.5\n").is_ok());
        assert!(lint_prometheus("ok NaN\n").is_ok());
    }

    #[test]
    fn metric_names_are_legalized() {
        assert_eq!(metric_name("pipeline.commit_ns"), "tn_pipeline_commit_ns");
        assert_eq!(metric_name("a-b.c"), "tn_a_b_c");
        assert!(legal_metric_name(&metric_name("9weird")));
    }

    #[test]
    fn json_dump_is_parseable_shape() {
        let monitor = exercised_monitor();
        let dump = json_dump(&monitor);
        // Cheap structural checks (no JSON parser dependency here):
        assert!(dump.starts_with('{') && dump.ends_with('}'));
        assert!(dump.contains("\"health\":\"degraded\""));
        assert!(dump.contains("\"chain.blocks_imported\":3"));
        assert!(dump.contains("\"rule\":\"undecodable-payloads\""));
        assert_eq!(
            dump.matches('{').count(),
            dump.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn timeline_merges_replicas_in_tick_order() {
        let config = MonitorConfig::default();
        let mut monitors = [
            ReplicaMonitor::new(0, &config),
            ReplicaMonitor::new(1, &config),
        ];
        let ra = Registry::new();
        let rb = Registry::new();
        ra.sink().incr("node.batch.undecodable");
        monitors[0].sample(5, ra.snapshot());
        rb.sink().incr("node.fault.recoveries");
        monitors[1].sample(2, rb.snapshot());
        let digests = vec![vec![1u8; 4], vec![1u8; 4]];
        let health = crate::health::assess_cluster(
            6,
            &mut monitors.iter_mut().collect::<Vec<_>>(),
            &[3, 3],
            &digests,
        );
        let artifact = timeline_json(&monitors.iter().collect::<Vec<_>>(), &health);
        // Replica 1's tick-2 event sorts before replica 0's tick-5 event.
        let restart = artifact.find("replica-restarted").unwrap();
        let undecodable = artifact.find("undecodable-payloads").unwrap();
        assert!(restart < undecodable, "{artifact}");
        assert!(artifact.contains("\"verdict\":\"degraded\""));
        assert_eq!(artifact.matches('{').count(), artifact.matches('}').count());
    }
}
