//! Declarative SLO rules evaluated against a [`Tsdb`], with hysteresis
//! and multi-window burn-rate semantics.
//!
//! A [`SloRule`] names a [`Query`] over the time-series store, a
//! comparison against a threshold, and two hysteresis knobs: the breach
//! must hold for `for_windows` consecutive evaluations before the rule
//! transitions to Firing, and clear for `clear_windows` consecutive
//! evaluations before it resolves — so a single noisy window neither
//! pages nor flaps an alert that is genuinely on.
//!
//! Queries that evaluate to "no data" (the series never appeared, or a
//! latency histogram was idle over the window) count as *clear*: an SLO
//! over a series that is not being exercised is vacuously met. Rules
//! whose job is to detect silence should instead threshold a rate
//! `Below` a floor on a series that is known to exist.

use crate::tsdb::Tsdb;

/// How a rule's measured value compares against its threshold to breach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Breach when `value > threshold`.
    Above,
    /// Breach when `value < threshold`.
    Below,
}

/// What a rule measures each evaluation tick.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Mean per-window increment rate of a counter over the trailing
    /// `windows` windows.
    Rate {
        /// Counter series name.
        counter: String,
        /// Trailing window count.
        windows: usize,
    },
    /// Total increments of a counter over the trailing `windows` windows.
    Sum {
        /// Counter series name.
        counter: String,
        /// Trailing window count.
        windows: usize,
    },
    /// `Σ parts / Σ total` over the trailing `windows` windows — e.g.
    /// shed ratio (`shed.* / offered`) or cache hit ratio
    /// (`hit / (hit + miss)`). No data until every `total` series has
    /// appeared and the denominator is non-zero in the window.
    Ratio {
        /// Numerator counter series (summed).
        parts: Vec<String>,
        /// Denominator counter series (summed).
        total: Vec<String>,
        /// Trailing window count.
        windows: usize,
    },
    /// Interpolated quantile of a histogram's activity over the trailing
    /// `windows` windows. No data when the histogram was idle.
    Quantile {
        /// Histogram series name.
        histogram: String,
        /// Quantile in `[0, 1]`.
        q: f64,
        /// Trailing window count.
        windows: usize,
    },
    /// Multi-window error-budget burn rate: how many times faster than
    /// `budget` the ratio `Σ bad / Σ total` is burning, evaluated over
    /// *both* a short and a long trailing window, taking the **minimum**
    /// of the two burns. Thresholding that minimum `Above` x implements
    /// the classic dual-window alert — the long window proves sustained
    /// burn, the short window makes the alert resolve quickly once the
    /// burn stops — as a single scalar.
    BurnRate {
        /// Counters measuring budget-consuming events (summed).
        bad: Vec<String>,
        /// Counters measuring all events (summed).
        total: Vec<String>,
        /// Error budget as a fraction of total, e.g. `0.01` for 1%.
        budget: f64,
        /// Short trailing window count.
        short_windows: usize,
        /// Long trailing window count.
        long_windows: usize,
    },
}

impl Query {
    /// Evaluates the query against `tsdb`; `None` means no data.
    pub fn evaluate(&self, tsdb: &Tsdb) -> Option<f64> {
        match self {
            Query::Rate { counter, windows } => tsdb.counter_rate(counter, *windows),
            Query::Sum { counter, windows } => {
                tsdb.counter_window(counter, *windows).map(|v| v as f64)
            }
            Query::Ratio {
                parts,
                total,
                windows,
            } => ratio(tsdb, parts, total, *windows),
            Query::Quantile {
                histogram,
                q,
                windows,
            } => tsdb
                .quantile_window(histogram, *q, *windows)
                .map(|v| v as f64),
            Query::BurnRate {
                bad,
                total,
                budget,
                short_windows,
                long_windows,
            } => {
                if *budget <= 0.0 {
                    return None;
                }
                let short = ratio(tsdb, bad, total, *short_windows)? / budget;
                let long = ratio(tsdb, bad, total, *long_windows)? / budget;
                Some(short.min(long))
            }
        }
    }
}

/// `Σ parts / Σ total` over the trailing windows; `None` when any total
/// series is unknown or the denominator is zero.
fn ratio(tsdb: &Tsdb, parts: &[String], total: &[String], windows: usize) -> Option<f64> {
    let mut den = 0u64;
    for name in total {
        den += tsdb.counter_window(name, windows)?;
    }
    if den == 0 {
        return None;
    }
    let num: u64 = parts
        .iter()
        .map(|name| tsdb.counter_window(name, windows).unwrap_or(0))
        .sum();
    Some(num as f64 / den as f64)
}

/// How bad a firing rule is for the replica that owns it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: recorded in the timeline, does not change health.
    Info,
    /// The replica is degraded while this fires.
    Warn,
    /// The replica is unhealthy while this fires.
    Critical,
}

/// One declarative SLO rule.
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Stable rule name, e.g. `"gateway-shed-burn"`; appears in alerts,
    /// exposition, and timelines.
    pub name: String,
    /// What to measure.
    pub query: Query,
    /// Breach direction.
    pub cmp: Cmp,
    /// Threshold the measured value is compared against.
    pub threshold: f64,
    /// Consecutive breached evaluations before Firing (min 1).
    pub for_windows: usize,
    /// Consecutive clear evaluations before Resolved (min 1).
    pub clear_windows: usize,
    /// Health impact while firing.
    pub severity: Severity,
}

impl SloRule {
    /// True when `value` breaches this rule's threshold.
    fn breached(&self, value: f64) -> bool {
        match self.cmp {
            Cmp::Above => value > self.threshold,
            Cmp::Below => value < self.threshold,
        }
    }
}

/// Alert lifecycle state of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// No breach.
    Inactive,
    /// Breached, but not yet for `for_windows` consecutive evaluations.
    Pending,
    /// The alert is on.
    Firing,
}

/// A state transition emitted by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Pending → Firing: the breach held for `for_windows` evaluations.
    Firing,
    /// Firing → Inactive: the rule cleared for `clear_windows`
    /// evaluations.
    Resolved,
}

/// One entry of the alert timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Rule that transitioned.
    pub rule: String,
    /// Logical tick of the evaluation that caused the transition.
    pub tick: u64,
    /// Which transition.
    pub transition: Transition,
    /// The measured value at the transition (last breached value for
    /// Resolved, where the clearing evaluation may have had no data).
    pub value: f64,
    /// The rule's severity.
    pub severity: Severity,
}

/// Per-rule runtime state.
#[derive(Debug, Clone)]
struct RuleRuntime {
    state: AlertState,
    breaches: usize,
    clears: usize,
    last_value: f64,
}

/// Evaluates a rule set against a [`Tsdb`] each tick, maintaining alert
/// states and an append-only timeline of transitions.
#[derive(Debug)]
pub struct RuleEngine {
    rules: Vec<SloRule>,
    runtime: Vec<RuleRuntime>,
    timeline: Vec<Alert>,
}

impl RuleEngine {
    /// An engine over `rules`.
    pub fn new(rules: Vec<SloRule>) -> RuleEngine {
        let runtime = rules
            .iter()
            .map(|_| RuleRuntime {
                state: AlertState::Inactive,
                breaches: 0,
                clears: 0,
                last_value: 0.0,
            })
            .collect();
        RuleEngine {
            rules,
            runtime,
            timeline: Vec::new(),
        }
    }

    /// Evaluates every rule against `tsdb` at logical `tick`, returning
    /// the transitions this evaluation produced (also appended to the
    /// timeline).
    pub fn evaluate(&mut self, tick: u64, tsdb: &Tsdb) -> Vec<Alert> {
        let mut out = Vec::new();
        for (rule, rt) in self.rules.iter().zip(self.runtime.iter_mut()) {
            let value = rule.query.evaluate(tsdb);
            let breached = value.map(|v| rule.breached(v)).unwrap_or(false);
            if breached {
                rt.last_value = value.unwrap_or(rt.last_value);
                rt.breaches += 1;
                rt.clears = 0;
                if rt.state != AlertState::Firing {
                    if rt.breaches >= rule.for_windows.max(1) {
                        rt.state = AlertState::Firing;
                        let alert = Alert {
                            rule: rule.name.clone(),
                            tick,
                            transition: Transition::Firing,
                            value: rt.last_value,
                            severity: rule.severity,
                        };
                        self.timeline.push(alert.clone());
                        out.push(alert);
                    } else {
                        rt.state = AlertState::Pending;
                    }
                }
            } else {
                rt.breaches = 0;
                rt.clears += 1;
                match rt.state {
                    AlertState::Firing => {
                        if rt.clears >= rule.clear_windows.max(1) {
                            rt.state = AlertState::Inactive;
                            let alert = Alert {
                                rule: rule.name.clone(),
                                tick,
                                transition: Transition::Resolved,
                                value: rt.last_value,
                                severity: rule.severity,
                            };
                            self.timeline.push(alert.clone());
                            out.push(alert);
                        }
                    }
                    AlertState::Pending => rt.state = AlertState::Inactive,
                    AlertState::Inactive => {}
                }
            }
        }
        out
    }

    /// The rules this engine evaluates.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Current state of the named rule, if it exists.
    pub fn state(&self, rule: &str) -> Option<AlertState> {
        self.rules
            .iter()
            .position(|r| r.name == rule)
            .map(|i| self.runtime[i].state)
    }

    /// Rules currently firing, with their last breached values.
    pub fn firing(&self) -> Vec<(&SloRule, f64)> {
        self.rules
            .iter()
            .zip(&self.runtime)
            .filter(|(_, rt)| rt.state == AlertState::Firing)
            .map(|(r, rt)| (r, rt.last_value))
            .collect()
    }

    /// The worst severity among currently firing rules, if any fire.
    pub fn worst_firing(&self) -> Option<Severity> {
        self.firing().iter().map(|(r, _)| r.severity).max()
    }

    /// The full transition timeline, oldest first.
    pub fn timeline(&self) -> &[Alert] {
        &self.timeline
    }

    /// Appends an externally detected transition (cluster-rollup facts
    /// like digest divergence are computed outside the per-replica store
    /// but belong on the same timeline).
    pub fn push_external(&mut self, alert: Alert) {
        self.timeline.push(alert);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_telemetry::Registry;

    fn rule(query: Query, cmp: Cmp, threshold: f64, forw: usize, clearw: usize) -> SloRule {
        SloRule {
            name: "r".into(),
            query,
            cmp,
            threshold,
            for_windows: forw,
            clear_windows: clearw,
            severity: Severity::Warn,
        }
    }

    #[test]
    fn threshold_rule_fires_after_for_windows_and_resolves_after_clear() {
        let registry = Registry::new();
        let sink = registry.sink();
        let mut tsdb = Tsdb::new(8);
        let mut engine = RuleEngine::new(vec![rule(
            Query::Sum {
                counter: "errors".into(),
                windows: 1,
            },
            Cmp::Above,
            0.0,
            2,
            2,
        )]);

        // Window 1: breach #1 → Pending, no transition yet.
        sink.incr("errors");
        tsdb.sample(1, registry.snapshot());
        assert!(engine.evaluate(1, &tsdb).is_empty());
        assert_eq!(engine.state("r"), Some(AlertState::Pending));

        // Window 2: breach #2 → Firing.
        sink.incr("errors");
        tsdb.sample(2, registry.snapshot());
        let alerts = engine.evaluate(2, &tsdb);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].transition, Transition::Firing);
        assert_eq!(alerts[0].tick, 2);

        // One quiet window: still firing (hysteresis).
        tsdb.sample(3, registry.snapshot());
        assert!(engine.evaluate(3, &tsdb).is_empty());
        assert_eq!(engine.state("r"), Some(AlertState::Firing));

        // Second quiet window: resolved.
        tsdb.sample(4, registry.snapshot());
        let alerts = engine.evaluate(4, &tsdb);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].transition, Transition::Resolved);
        assert_eq!(engine.state("r"), Some(AlertState::Inactive));
        assert_eq!(engine.timeline().len(), 2);
    }

    #[test]
    fn single_window_blip_never_fires() {
        let registry = Registry::new();
        let sink = registry.sink();
        let mut tsdb = Tsdb::new(8);
        let mut engine = RuleEngine::new(vec![rule(
            Query::Sum {
                counter: "errors".into(),
                windows: 1,
            },
            Cmp::Above,
            0.0,
            2,
            1,
        )]);
        sink.incr("errors");
        tsdb.sample(1, registry.snapshot());
        engine.evaluate(1, &tsdb);
        tsdb.sample(2, registry.snapshot());
        engine.evaluate(2, &tsdb);
        assert_eq!(engine.state("r"), Some(AlertState::Inactive));
        assert!(engine.timeline().is_empty());
    }

    #[test]
    fn ratio_rule_measures_shed_fraction() {
        let registry = Registry::new();
        let sink = registry.sink();
        let mut tsdb = Tsdb::new(8);
        let query = Query::Ratio {
            parts: vec!["shed.a".into(), "shed.b".into()],
            total: vec!["offered".into()],
            windows: 2,
        };
        sink.add("offered", 10);
        sink.add("shed.a", 1);
        sink.add("shed.b", 2);
        tsdb.sample(1, registry.snapshot());
        assert!((query.evaluate(&tsdb).unwrap() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn no_data_is_clear_not_breach() {
        let registry = Registry::new();
        let mut tsdb = Tsdb::new(4);
        tsdb.sample(1, registry.snapshot());
        let mut engine = RuleEngine::new(vec![rule(
            Query::Quantile {
                histogram: "lat".into(),
                q: 0.99,
                windows: 1,
            },
            Cmp::Above,
            10.0,
            1,
            1,
        )]);
        assert!(engine.evaluate(1, &tsdb).is_empty());
        assert_eq!(engine.state("r"), Some(AlertState::Inactive));
    }

    #[test]
    fn burn_rate_needs_both_windows_hot() {
        let registry = Registry::new();
        let sink = registry.sink();
        let mut tsdb = Tsdb::new(16);
        let query = Query::BurnRate {
            bad: vec!["bad".into()],
            total: vec!["all".into()],
            budget: 0.01,
            short_windows: 1,
            long_windows: 4,
        };
        // Three clean windows then one hot one: the long window dilutes
        // the burn, so min(short, long) reflects the sustained view.
        for t in 1..=3u64 {
            sink.add("all", 100);
            tsdb.sample(t, registry.snapshot());
        }
        sink.add("all", 100);
        sink.add("bad", 50);
        tsdb.sample(4, registry.snapshot());
        let burn = query.evaluate(&tsdb).unwrap();
        // short burn = (50/100)/0.01 = 50; long = (50/400)/0.01 = 12.5.
        assert!((burn - 12.5).abs() < 1e-9, "burn = {burn}");

        // Sustained burn across the long window pushes the min up.
        for t in 5..=8u64 {
            sink.add("all", 100);
            sink.add("bad", 50);
            tsdb.sample(t, registry.snapshot());
        }
        assert!(query.evaluate(&tsdb).unwrap() >= 50.0 - 1e-9);
    }

    #[test]
    fn below_rule_detects_collapse() {
        let registry = Registry::new();
        let sink = registry.sink();
        let mut tsdb = Tsdb::new(8);
        let mut engine = RuleEngine::new(vec![rule(
            Query::Ratio {
                parts: vec!["hit".into()],
                total: vec!["hit".into(), "miss".into()],
                windows: 1,
            },
            Cmp::Below,
            0.5,
            1,
            1,
        )]);
        sink.add("hit", 9);
        sink.add("miss", 1);
        tsdb.sample(1, registry.snapshot());
        assert!(engine.evaluate(1, &tsdb).is_empty(), "90% hits is healthy");
        sink.add("miss", 50);
        tsdb.sample(2, registry.snapshot());
        let alerts = engine.evaluate(2, &tsdb);
        assert_eq!(alerts.len(), 1, "hit collapse fires");
    }
}
