//! Live health plane for the trusting-news platform.
//!
//! `tn-monitor` closes the loop from passively recorded metrics
//! ([`tn_telemetry`]) to online verdicts. It is organized as four small
//! layers, each a pure function of the one below:
//!
//! 1. [`Tsdb`] — a ring-buffer time-series store fed cumulative
//!    [`Registry`](tn_telemetry::Registry) snapshots on a logical-clock
//!    tick, retaining per-window deltas.
//! 2. [`SloRule`] / [`RuleEngine`] — declarative rules (threshold,
//!    ratio, histogram quantile, multi-window burn-rate) evaluated each
//!    tick with hysteresis, emitting [`Alert`] transitions onto an
//!    append-only timeline.
//! 3. [`ReplicaMonitor`] / [`assess_cluster`] — a per-replica health
//!    state machine (`Healthy → Degraded → Lagging → Quarantined`)
//!    driven by the built-in rule set plus cross-replica rollup facts
//!    (height lag, digest divergence), rolled up into a
//!    [`ClusterHealth`] verdict. [`ParticipantLedger`] applies the same
//!    escalation-ladder idea to crowd *participants* flagged by
//!    coordination detection (`Trusted → Watched → Quarantined`).
//! 4. [`expo`] — Prometheus text exposition (with a line-format lint)
//!    and JSON dumps of series, alerts, and health, plus the merged
//!    cluster alert-timeline artifact.
//!
//! The monitor only ever *reads* registry snapshots and never feeds back
//! into execution, so enabling it cannot change consensus outcomes:
//! state digests are byte-identical with monitoring on or off (enforced
//! by `exp23_health_plane`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod expo;
pub mod health;
pub mod participants;
pub mod rules;
pub mod tsdb;

pub use expo::{json_dump, lint_prometheus, prometheus_text, timeline_json};
pub use health::{
    assess_cluster, builtin_rules, ClusterHealth, ClusterHealthVerdict, HealthState, MonitorConfig,
    ReplicaMonitor, RULE_CAMPAIGN_BURN, RULE_CATCHUP, RULE_COMMIT_LATENCY, RULE_DIVERGENCE,
    RULE_LAG, RULE_MSG_DROPS, RULE_RESTART, RULE_SHED_BURN, RULE_SIGCACHE, RULE_UNDECODABLE,
    RULE_WAL_REPLAY,
};
pub use participants::{ParticipantLedger, ParticipantPolicy, ParticipantVerdict};
pub use rules::{Alert, AlertState, Cmp, Query, RuleEngine, Severity, SloRule, Transition};
pub use tsdb::{Tsdb, Window};
