//! Ring-buffer time-series store over [`Registry`](tn_telemetry::Registry)
//! snapshots.
//!
//! A [`Tsdb`] is fed **cumulative** snapshots on a logical-clock tick
//! (block heights in cluster runs, block ticks in the open-loop harness)
//! and retains the per-window *deltas*: what each counter and histogram
//! did between consecutive samples. Queries then answer "what happened
//! over the last `k` windows" — rates, ratios, and merged-bucket
//! quantiles — which is exactly the shape SLO rules consume.
//!
//! The store diffs cumulative snapshots itself rather than calling
//! [`Snapshot::delta`], which drops zero-delta entries by design (it is
//! an attribution view). Here a series that exists but did not move is
//! still *known* — [`Tsdb::counter_window`] distinguishes "series known,
//! zero activity" (`Some(0)`) from "series never seen" (`None`) — so a
//! rule can never silently miss a series that went quiet.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use tn_telemetry::{HistogramSnapshot, Snapshot};

/// One retained sampling window: the deltas between two consecutive
/// cumulative snapshots.
#[derive(Debug, Clone)]
pub struct Window {
    /// Logical tick at which the window closed (the sample's tick).
    pub tick: u64,
    /// Counter increments in the window (zero-delta entries omitted; the
    /// series set is tracked separately by the [`Tsdb`]).
    pub counters: BTreeMap<String, u64>,
    /// Histogram activity in the window (bucket-count deltas; empty
    /// histograms omitted).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Bounded store of per-window metric deltas plus the latest cumulative
/// snapshot.
#[derive(Debug)]
pub struct Tsdb {
    capacity: usize,
    windows: VecDeque<Window>,
    /// Every counter name ever observed in a sample.
    counter_names: BTreeSet<String>,
    /// Every histogram name ever observed in a sample.
    histogram_names: BTreeSet<String>,
    /// The previous cumulative snapshot (None before the first sample).
    last: Option<Snapshot>,
    /// Tick of the most recent sample.
    last_tick: u64,
    /// Total samples ever taken (including windows since evicted).
    samples: u64,
}

impl Tsdb {
    /// A store retaining at most `capacity` windows (minimum 1).
    pub fn new(capacity: usize) -> Tsdb {
        Tsdb {
            capacity: capacity.max(1),
            windows: VecDeque::new(),
            counter_names: BTreeSet::new(),
            histogram_names: BTreeSet::new(),
            last: None,
            last_tick: 0,
            samples: 0,
        }
    }

    /// Ingests a cumulative snapshot taken at logical `tick`, closing one
    /// window (the delta against the previous sample). The first sample
    /// establishes the baseline: its absolute values are recorded as the
    /// first window so activity before monitoring began is visible.
    ///
    /// Ticks are expected to be non-decreasing; a stale tick is clamped
    /// to the previous one rather than reordering the ring.
    pub fn sample(&mut self, tick: u64, snapshot: Snapshot) {
        let tick = tick.max(self.last_tick);
        let mut counters = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        for (name, &value) in &snapshot.counters {
            self.counter_names.insert(name.clone());
            let base = self
                .last
                .as_ref()
                .and_then(|s| s.counter(name))
                .unwrap_or(0);
            let delta = value.saturating_sub(base);
            if delta > 0 {
                counters.insert(name.clone(), delta);
            }
        }
        for (name, hist) in &snapshot.histograms {
            self.histogram_names.insert(name.clone());
            let delta = match self.last.as_ref().and_then(|s| s.histogram(name)) {
                Some(base) => hist.delta(base),
                None => hist.clone(),
            };
            if delta.count > 0 {
                histograms.insert(name.clone(), delta);
            }
        }
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
        }
        self.windows.push_back(Window {
            tick,
            counters,
            histograms,
        });
        self.last = Some(snapshot);
        self.last_tick = tick;
        self.samples += 1;
    }

    /// Number of currently retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True before the first sample.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total samples ever taken, including evicted windows.
    pub fn samples_total(&self) -> u64 {
        self.samples
    }

    /// Tick of the most recent sample (0 before the first).
    pub fn last_tick(&self) -> u64 {
        self.last_tick
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &Window> {
        self.windows.iter()
    }

    /// Every counter series name ever observed, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &String> {
        self.counter_names.iter()
    }

    /// Every histogram series name ever observed, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &String> {
        self.histogram_names.iter()
    }

    /// The latest cumulative value of a counter, if the series is known.
    pub fn counter_latest(&self, name: &str) -> Option<u64> {
        self.last.as_ref()?.counter(name).or({
            // Known series absent from the latest snapshot (cannot happen
            // with a monotone registry, but be conservative).
            if self.counter_names.contains(name) {
                Some(0)
            } else {
                None
            }
        })
    }

    /// Sum of a counter's increments over the trailing `windows` windows.
    ///
    /// `Some(0)` means the series is known and was quiet; `None` means the
    /// series has never appeared in any sample (a rule evaluating it has
    /// no data).
    pub fn counter_window(&self, name: &str, windows: usize) -> Option<u64> {
        if !self.counter_names.contains(name) {
            return None;
        }
        Some(
            self.trailing(windows)
                .map(|w| w.counters.get(name).copied().unwrap_or(0))
                .sum(),
        )
    }

    /// Mean per-window increment rate over the trailing `windows` windows
    /// (the available window count bounds the divisor, so early samples
    /// are not diluted by windows that never existed).
    pub fn counter_rate(&self, name: &str, windows: usize) -> Option<f64> {
        let sum = self.counter_window(name, windows)?;
        let n = windows.clamp(1, self.windows.len().max(1));
        Some(sum as f64 / n as f64)
    }

    /// The merged distribution a histogram recorded over the trailing
    /// `windows` windows (bucket deltas summed across windows). `None`
    /// when the series has never appeared; an empty distribution when it
    /// was quiet.
    pub fn histogram_window(&self, name: &str, windows: usize) -> Option<HistogramSnapshot> {
        if !self.histogram_names.contains(name) {
            return None;
        }
        let mut merged = HistogramSnapshot::default();
        for w in self.trailing(windows) {
            if let Some(h) = w.histograms.get(name) {
                merge_into(&mut merged, h);
            }
        }
        Some(merged)
    }

    /// Estimated quantile of a histogram's activity over the trailing
    /// `windows` windows (interpolated power-of-two buckets; see
    /// [`HistogramSnapshot::quantile`]). `None` when the series is
    /// unknown **or** recorded no samples in the window — a latency rule
    /// has no data on an idle series, which must not read as "latency 0".
    pub fn quantile_window(&self, name: &str, q: f64, windows: usize) -> Option<u64> {
        let merged = self.histogram_window(name, windows)?;
        if merged.count == 0 {
            return None;
        }
        Some(merged.quantile(q))
    }

    fn trailing(&self, windows: usize) -> impl Iterator<Item = &Window> {
        let take = windows.clamp(1, self.windows.len());
        self.windows.iter().rev().take(take)
    }
}

/// Accumulates `delta` into `merged` bucket-wise.
fn merge_into(merged: &mut HistogramSnapshot, delta: &HistogramSnapshot) {
    if delta.count == 0 {
        return;
    }
    if merged.buckets.len() < delta.buckets.len() {
        merged.buckets.resize(delta.buckets.len(), 0);
    }
    for (i, &n) in delta.buckets.iter().enumerate() {
        merged.buckets[i] += n;
    }
    merged.min = if merged.count == 0 {
        delta.min
    } else {
        merged.min.min(delta.min)
    };
    merged.max = merged.max.max(delta.max);
    merged.count += delta.count;
    merged.sum += delta.sum;
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_telemetry::Registry;

    #[test]
    fn windows_hold_deltas_not_cumulative_values() {
        let registry = Registry::new();
        let sink = registry.sink();
        let mut tsdb = Tsdb::new(8);
        sink.add("blocks", 3);
        tsdb.sample(1, registry.snapshot());
        sink.add("blocks", 2);
        tsdb.sample(2, registry.snapshot());
        assert_eq!(tsdb.counter_window("blocks", 1), Some(2));
        assert_eq!(tsdb.counter_window("blocks", 2), Some(5));
        assert_eq!(tsdb.counter_latest("blocks"), Some(5));
    }

    #[test]
    fn quiet_series_reads_zero_not_missing() {
        let registry = Registry::new();
        let sink = registry.sink();
        let mut tsdb = Tsdb::new(4);
        sink.incr("once");
        tsdb.sample(1, registry.snapshot());
        // No further activity: the series must stay visible as known.
        tsdb.sample(2, registry.snapshot());
        assert_eq!(tsdb.counter_window("once", 1), Some(0));
        assert_eq!(tsdb.counter_window("never", 1), None);
    }

    #[test]
    fn ring_evicts_oldest_windows() {
        let registry = Registry::new();
        let sink = registry.sink();
        let mut tsdb = Tsdb::new(2);
        for t in 1..=5u64 {
            sink.incr("ticks");
            tsdb.sample(t, registry.snapshot());
        }
        assert_eq!(tsdb.len(), 2);
        assert_eq!(tsdb.samples_total(), 5);
        // Only the last two windows (one increment each) remain.
        assert_eq!(tsdb.counter_window("ticks", 10), Some(2));
        // The cumulative view still covers the whole history.
        assert_eq!(tsdb.counter_latest("ticks"), Some(5));
    }

    #[test]
    fn histogram_windows_merge_buckets() {
        let registry = Registry::new();
        let sink = registry.sink();
        let mut tsdb = Tsdb::new(8);
        sink.observe("lat", 10);
        tsdb.sample(1, registry.snapshot());
        sink.observe("lat", 1000);
        sink.observe("lat", 1000);
        tsdb.sample(2, registry.snapshot());
        let merged = tsdb.histogram_window("lat", 2).unwrap();
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 2010);
        assert_eq!(merged.min, 10);
        assert_eq!(merged.max, 1000);
        // Trailing 1 window only sees the two slow samples.
        let tail = tsdb.histogram_window("lat", 1).unwrap();
        assert_eq!(tail.count, 2);
        assert!(tsdb.quantile_window("lat", 0.5, 1).unwrap() >= 512);
    }

    #[test]
    fn idle_histogram_quantile_is_no_data() {
        let registry = Registry::new();
        let sink = registry.sink();
        let mut tsdb = Tsdb::new(4);
        sink.observe("lat", 100);
        tsdb.sample(1, registry.snapshot());
        tsdb.sample(2, registry.snapshot());
        // Known series, but no samples in the last window: no data, not 0.
        assert_eq!(tsdb.quantile_window("lat", 0.99, 1), None);
        assert_eq!(tsdb.quantile_window("unknown", 0.99, 1), None);
    }

    #[test]
    fn first_sample_is_the_baseline_window() {
        let registry = Registry::new();
        let sink = registry.sink();
        sink.add("pre", 7);
        let mut tsdb = Tsdb::new(4);
        tsdb.sample(1, registry.snapshot());
        // Activity before monitoring began lands in the first window.
        assert_eq!(tsdb.counter_window("pre", 1), Some(7));
    }

    #[test]
    fn stale_ticks_are_clamped() {
        let registry = Registry::new();
        let mut tsdb = Tsdb::new(4);
        tsdb.sample(5, registry.snapshot());
        tsdb.sample(3, registry.snapshot());
        assert_eq!(tsdb.last_tick(), 5);
    }
}
