//! Per-replica health state machine and cluster-wide rollup.
//!
//! A [`ReplicaMonitor`] owns one replica's [`Tsdb`] and [`RuleEngine`]
//! and derives a [`HealthState`] each sample: rule severities drive
//! `Healthy ↔ Degraded`, while the cross-replica facts only a rollup can
//! see — height lag behind the quorum, execution-digest divergence —
//! drive `Lagging` and `Quarantined` via [`assess_cluster`]. The rollup
//! emits its findings as external alerts on the affected replica's own
//! timeline, so one artifact tells the whole story of a fault.

use tn_telemetry::Snapshot;

use crate::rules::{Alert, Cmp, Query, RuleEngine, Severity, SloRule, Transition};
use crate::tsdb::Tsdb;

/// A replica's health, worst state last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// No rule firing, on the quorum digest.
    Healthy,
    /// At least one warning-severity rule is firing.
    Degraded,
    /// Behind the quorum chain (reconcilable by catch-up).
    Lagging,
    /// State irreconcilable with the quorum — do not trust until
    /// re-synced.
    Quarantined,
}

impl HealthState {
    /// Short lowercase label (`"healthy"`, `"degraded"`, …).
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Lagging => "lagging",
            HealthState::Quarantined => "quarantined",
        }
    }
}

/// Tuning for the built-in rule set and the cluster rollup.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Retained time-series windows per replica.
    pub retention: usize,
    /// Commit-latency SLO: `pipeline.commit_ns` p99 ceiling, nanoseconds.
    pub commit_p99_ns: u64,
    /// Gateway shed SLO error budget (fraction of offered requests that
    /// may shed before budget burns).
    pub shed_budget: f64,
    /// Burn-rate multiple over [`MonitorConfig::shed_budget`] that fires
    /// the shed alert.
    pub shed_burn_threshold: f64,
    /// Signature-cache hit-ratio floor; below it the cache has collapsed.
    pub sigcache_floor: f64,
    /// Consensus-message drops tolerated per rule window before the drop
    /// alert fires.
    pub msg_drop_max: u64,
    /// WAL records replayed per rule window tolerated before the replay
    /// spike alert fires.
    pub wal_replay_max: u64,
    /// Misinformation-campaign SLO error budget: fraction of submitted
    /// crowd votes that may look coordinated before budget burns.
    pub campaign_budget: f64,
    /// Burn-rate multiple over [`MonitorConfig::campaign_budget`] that
    /// fires the campaign alert.
    pub campaign_burn_threshold: f64,
    /// Extra caller-defined rules appended to the built-ins.
    pub extra_rules: Vec<SloRule>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            retention: 64,
            commit_p99_ns: 250_000_000, // 250 ms: far above healthy service time
            shed_budget: 0.01,
            shed_burn_threshold: 10.0,
            sigcache_floor: 0.25,
            msg_drop_max: 0,
            wal_replay_max: 0,
            campaign_budget: 0.05,
            campaign_burn_threshold: 4.0,
            extra_rules: Vec::new(),
        }
    }
}

/// Rule name for cross-replica digest divergence (emitted by
/// [`assess_cluster`], not evaluated from the time series).
pub const RULE_DIVERGENCE: &str = "replica-divergence";
/// Rule name for height lag behind the quorum (emitted by
/// [`assess_cluster`]).
pub const RULE_LAG: &str = "replica-lag";
/// Rule name for the commit-latency p99 SLO.
pub const RULE_COMMIT_LATENCY: &str = "commit-latency-p99";
/// Rule name for the gateway shed burn-rate SLO.
pub const RULE_SHED_BURN: &str = "gateway-shed-burn";
/// Rule name for signature-cache hit collapse.
pub const RULE_SIGCACHE: &str = "sigcache-collapse";
/// Rule name for WAL replay spikes.
pub const RULE_WAL_REPLAY: &str = "wal-replay-spike";
/// Rule name for state-sync catch-up activity.
pub const RULE_CATCHUP: &str = "catchup-active";
/// Rule name for replica restarts through the recovery path.
pub const RULE_RESTART: &str = "replica-restarted";
/// Rule name for consensus-layer message drops (loss, crashes,
/// partitions; recorded on the replica that owns the simulator sink).
pub const RULE_MSG_DROPS: &str = "consensus-drops";
/// Rule name for undecodable consensus payloads reaching execution.
pub const RULE_UNDECODABLE: &str = "undecodable-payloads";
/// Rule name for the misinformation-campaign burn-rate SLO over
/// coordinated crowd votes.
pub const RULE_CAMPAIGN_BURN: &str = "crowdrank-campaign-burn";

/// The built-in rule set over the platform's metric names (series that a
/// deployment does not record simply never fire).
pub fn builtin_rules(config: &MonitorConfig) -> Vec<SloRule> {
    let mut rules = vec![
        SloRule {
            name: RULE_COMMIT_LATENCY.into(),
            query: Query::Quantile {
                histogram: "pipeline.commit_ns".into(),
                q: 0.99,
                windows: 4,
            },
            cmp: Cmp::Above,
            threshold: config.commit_p99_ns as f64,
            for_windows: 2,
            clear_windows: 2,
            severity: Severity::Warn,
        },
        SloRule {
            name: RULE_SHED_BURN.into(),
            query: Query::BurnRate {
                bad: vec![
                    "gateway.shed.rate_limit".into(),
                    "gateway.shed.queue_full".into(),
                ],
                total: vec!["gateway.offered".into()],
                budget: config.shed_budget,
                short_windows: 2,
                long_windows: 8,
            },
            cmp: Cmp::Above,
            threshold: config.shed_burn_threshold,
            for_windows: 1,
            clear_windows: 2,
            severity: Severity::Warn,
        },
        SloRule {
            name: RULE_SIGCACHE.into(),
            query: Query::Ratio {
                parts: vec!["chain.sigcache.hit".into()],
                total: vec!["chain.sigcache.hit".into(), "chain.sigcache.miss".into()],
                windows: 4,
            },
            cmp: Cmp::Below,
            threshold: config.sigcache_floor,
            for_windows: 2,
            clear_windows: 2,
            severity: Severity::Warn,
        },
        SloRule {
            name: RULE_WAL_REPLAY.into(),
            query: Query::Sum {
                counter: "storage.wal.replays".into(),
                windows: 2,
            },
            cmp: Cmp::Above,
            threshold: config.wal_replay_max as f64,
            for_windows: 1,
            clear_windows: 2,
            severity: Severity::Warn,
        },
        SloRule {
            name: RULE_CATCHUP.into(),
            query: Query::Sum {
                counter: "node.catchup.blocks_applied".into(),
                windows: 2,
            },
            cmp: Cmp::Above,
            threshold: 0.0,
            for_windows: 1,
            clear_windows: 2,
            severity: Severity::Warn,
        },
        SloRule {
            name: RULE_RESTART.into(),
            query: Query::Sum {
                counter: "node.fault.recoveries".into(),
                windows: 2,
            },
            cmp: Cmp::Above,
            threshold: 0.0,
            for_windows: 1,
            clear_windows: 2,
            severity: Severity::Warn,
        },
        SloRule {
            name: RULE_MSG_DROPS.into(),
            query: Query::Sum {
                counter: "sim.msg.dropped".into(),
                windows: 2,
            },
            cmp: Cmp::Above,
            threshold: config.msg_drop_max as f64,
            for_windows: 1,
            clear_windows: 2,
            severity: Severity::Warn,
        },
        SloRule {
            name: RULE_CAMPAIGN_BURN.into(),
            query: Query::BurnRate {
                bad: vec!["crowdrank.votes.coordinated".into()],
                total: vec!["crowdrank.votes.total".into()],
                budget: config.campaign_budget,
                short_windows: 2,
                long_windows: 8,
            },
            cmp: Cmp::Above,
            threshold: config.campaign_burn_threshold,
            for_windows: 1,
            clear_windows: 2,
            severity: Severity::Warn,
        },
        SloRule {
            name: RULE_UNDECODABLE.into(),
            query: Query::Sum {
                counter: "node.batch.undecodable".into(),
                windows: 2,
            },
            cmp: Cmp::Above,
            threshold: 0.0,
            for_windows: 1,
            clear_windows: 2,
            severity: Severity::Warn,
        },
    ];
    rules.extend(config.extra_rules.iter().cloned());
    rules
}

/// One replica's live health plane: time series, rules, health state.
#[derive(Debug)]
pub struct ReplicaMonitor {
    replica: usize,
    tsdb: Tsdb,
    engine: RuleEngine,
    health: HealthState,
    /// Cluster-rollup override (Lagging/Quarantined) that rule state
    /// cannot clear on its own.
    cluster_state: HealthState,
    /// Health transitions, oldest first.
    transitions: Vec<(u64, HealthState)>,
}

impl ReplicaMonitor {
    /// A monitor for `replica` with the built-in rule set from `config`.
    pub fn new(replica: usize, config: &MonitorConfig) -> ReplicaMonitor {
        ReplicaMonitor {
            replica,
            tsdb: Tsdb::new(config.retention),
            engine: RuleEngine::new(builtin_rules(config)),
            health: HealthState::Healthy,
            cluster_state: HealthState::Healthy,
            transitions: Vec::new(),
        }
    }

    /// The replica id this monitor watches.
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// Ingests a cumulative registry snapshot at logical `tick`,
    /// evaluates every rule, and updates the health state. Returns the
    /// alert transitions this sample produced.
    pub fn sample(&mut self, tick: u64, snapshot: Snapshot) -> Vec<Alert> {
        self.tsdb.sample(tick, snapshot);
        let alerts = self.engine.evaluate(self.tsdb.last_tick(), &self.tsdb);
        self.recompute(self.tsdb.last_tick());
        alerts
    }

    /// Current health state.
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// Health transitions, oldest first (the state machine's history).
    pub fn transitions(&self) -> &[(u64, HealthState)] {
        &self.transitions
    }

    /// The underlying time-series store.
    pub fn tsdb(&self) -> &Tsdb {
        &self.tsdb
    }

    /// The rule engine (alert states and timeline).
    pub fn engine(&self) -> &RuleEngine {
        &self.engine
    }

    /// Applies a cluster-rollup fact: escalates this replica to `state`
    /// (never downgrades) and records `rule` as an externally detected
    /// Firing alert at `tick`.
    pub fn apply_cluster_fact(&mut self, tick: u64, state: HealthState, rule: &str, value: f64) {
        self.engine.push_external(Alert {
            rule: rule.into(),
            tick,
            transition: Transition::Firing,
            value,
            severity: Severity::Critical,
        });
        self.cluster_state = self.cluster_state.max(state);
        self.recompute(tick);
    }

    /// Records a participant-level fact (e.g. a crowd-rank quarantine
    /// verdict) as an externally detected alert on this replica's
    /// timeline. Unlike [`ReplicaMonitor::apply_cluster_fact`], the
    /// replica's own health is untouched: a quarantined *participant*
    /// does not make the replica less trustworthy — the timeline just
    /// documents the enforcement next to the rule alerts that led to it.
    pub fn record_participant_fact(&mut self, tick: u64, rule: &str, value: f64) {
        self.engine.push_external(Alert {
            rule: rule.into(),
            tick,
            transition: Transition::Firing,
            value,
            severity: Severity::Warn,
        });
    }

    /// Clears the cluster-rollup override (a later rollup found the
    /// replica back on the quorum, e.g. after catch-up), recording a
    /// Resolved transition for `rule`.
    pub fn clear_cluster_fact(&mut self, tick: u64, rule: &str) {
        if self.cluster_state == HealthState::Healthy {
            return;
        }
        self.engine.push_external(Alert {
            rule: rule.into(),
            tick,
            transition: Transition::Resolved,
            value: 0.0,
            severity: Severity::Critical,
        });
        self.cluster_state = HealthState::Healthy;
        self.recompute(tick);
    }

    /// Recomputes health from rule severities and the cluster override,
    /// logging a transition when the state changes.
    fn recompute(&mut self, tick: u64) {
        let rule_state = match self.engine.worst_firing() {
            Some(Severity::Critical) => HealthState::Quarantined,
            Some(Severity::Warn) => HealthState::Degraded,
            Some(Severity::Info) | None => HealthState::Healthy,
        };
        let next = rule_state.max(self.cluster_state);
        if next != self.health {
            self.health = next;
            self.transitions.push((tick, next));
        }
    }
}

/// Cluster-wide verdict rolled up from per-replica health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterHealthVerdict {
    /// Every replica healthy.
    Healthy,
    /// Some replica degraded, lagging, or quarantined, but a `2f+1`
    /// quorum still shares one digest.
    Degraded,
    /// No digest quorum, or more than `f` replicas quarantined — the
    /// cluster's output is not trustworthy.
    Critical,
}

impl ClusterHealthVerdict {
    /// Short lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            ClusterHealthVerdict::Healthy => "healthy",
            ClusterHealthVerdict::Degraded => "degraded",
            ClusterHealthVerdict::Critical => "critical",
        }
    }
}

/// The rollup's conclusion about the whole cluster.
#[derive(Debug, Clone)]
pub struct ClusterHealth {
    /// Per-replica health states, in replica-id order.
    pub replicas: Vec<HealthState>,
    /// The digest shared by `>= 2f+1` replicas, if one exists.
    pub quorum_digest: Option<Vec<u8>>,
    /// Cluster-wide verdict.
    pub verdict: ClusterHealthVerdict,
}

/// Rolls up cluster health at logical `tick` from each replica's height
/// and execution digest (opaque bytes; byte-equality is digest
/// agreement).
///
/// The rollup is purely observational — it reads state every replica
/// already exposes and never feeds back into execution:
///
/// - A `2f+1` quorum digest is computed (`f = (n-1)/3`).
/// - A replica off the quorum digest but **behind** the quorum height is
///   presumed on a stale prefix: [`HealthState::Lagging`], alert
///   [`RULE_LAG`].
/// - A replica off the quorum digest at (or past) the quorum height has
///   genuinely divergent state: [`HealthState::Quarantined`], alert
///   [`RULE_DIVERGENCE`].
/// - With no quorum at all, every replica is quarantined and the verdict
///   is [`ClusterHealthVerdict::Critical`].
///
/// A replica back on the quorum digest has any previous rollup override
/// cleared (its catch-up succeeded).
///
/// # Panics
///
/// When `monitors`, `heights`, and `digests` lengths differ.
pub fn assess_cluster(
    tick: u64,
    monitors: &mut [&mut ReplicaMonitor],
    heights: &[u64],
    digests: &[Vec<u8>],
) -> ClusterHealth {
    assert_eq!(monitors.len(), heights.len(), "one height per monitor");
    assert_eq!(monitors.len(), digests.len(), "one digest per monitor");
    let n = monitors.len();
    let quorum_digest = quorum_of(digests);
    match &quorum_digest {
        Some(q) => {
            let quorum_height = heights
                .iter()
                .zip(digests)
                .filter(|(_, d)| *d == q)
                .map(|(&h, _)| h)
                .max()
                .unwrap_or(0);
            for (i, monitor) in monitors.iter_mut().enumerate() {
                if &digests[i] == q {
                    monitor.clear_cluster_fact(tick, RULE_DIVERGENCE);
                } else if heights[i] < quorum_height {
                    let behind = quorum_height - heights[i];
                    monitor.apply_cluster_fact(tick, HealthState::Lagging, RULE_LAG, behind as f64);
                } else {
                    monitor.apply_cluster_fact(
                        tick,
                        HealthState::Quarantined,
                        RULE_DIVERGENCE,
                        heights[i] as f64,
                    );
                }
            }
        }
        None => {
            for monitor in monitors.iter_mut() {
                monitor.apply_cluster_fact(
                    tick,
                    HealthState::Quarantined,
                    RULE_DIVERGENCE,
                    f64::NAN,
                );
            }
        }
    }
    let replicas: Vec<HealthState> = monitors.iter().map(|m| m.health()).collect();
    let f = if n == 0 { 0 } else { (n - 1) / 3 };
    let quarantined = replicas
        .iter()
        .filter(|&&h| h == HealthState::Quarantined)
        .count();
    let verdict = if quorum_digest.is_none() || quarantined > f {
        ClusterHealthVerdict::Critical
    } else if replicas.iter().any(|&h| h != HealthState::Healthy) {
        ClusterHealthVerdict::Degraded
    } else {
        ClusterHealthVerdict::Healthy
    };
    ClusterHealth {
        replicas,
        quorum_digest,
        verdict,
    }
}

/// The digest shared by `>= 2f+1` of the entries, `f = (n-1)/3`.
fn quorum_of(digests: &[Vec<u8>]) -> Option<Vec<u8>> {
    let n = digests.len();
    if n == 0 {
        return None;
    }
    let quorum = 2 * ((n - 1) / 3) + 1;
    let mut counts: Vec<(&Vec<u8>, usize)> = Vec::new();
    for d in digests {
        match counts.iter_mut().find(|(seen, _)| *seen == d) {
            Some((_, c)) => *c += 1,
            None => counts.push((d, 1)),
        }
    }
    counts
        .into_iter()
        .find(|&(_, c)| c >= quorum)
        .map(|(d, _)| d.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_telemetry::Registry;

    fn monitors(n: usize) -> Vec<ReplicaMonitor> {
        let config = MonitorConfig::default();
        (0..n).map(|i| ReplicaMonitor::new(i, &config)).collect()
    }

    #[test]
    fn clean_cluster_is_healthy_everywhere() {
        let mut mons = monitors(4);
        let digests: Vec<Vec<u8>> = (0..4).map(|_| vec![1u8; 32]).collect();
        let health = assess_cluster(
            10,
            &mut mons.iter_mut().collect::<Vec<_>>(),
            &[5, 5, 5, 5],
            &digests,
        );
        assert_eq!(health.verdict, ClusterHealthVerdict::Healthy);
        assert!(health.replicas.iter().all(|&h| h == HealthState::Healthy));
        assert_eq!(health.quorum_digest, Some(vec![1u8; 32]));
    }

    #[test]
    fn behind_replica_is_lagging_not_quarantined() {
        let mut mons = monitors(4);
        let mut digests: Vec<Vec<u8>> = (0..4).map(|_| vec![1u8; 32]).collect();
        digests[3] = vec![2u8; 32]; // stale prefix digest differs
        let health = assess_cluster(
            10,
            &mut mons.iter_mut().collect::<Vec<_>>(),
            &[8, 8, 8, 3],
            &digests,
        );
        assert_eq!(health.replicas[3], HealthState::Lagging);
        assert_eq!(health.verdict, ClusterHealthVerdict::Degraded);
        let timeline = mons[3].engine().timeline();
        assert!(timeline.iter().any(|a| a.rule == RULE_LAG));
    }

    #[test]
    fn divergent_replica_at_height_is_quarantined() {
        let mut mons = monitors(4);
        let mut digests: Vec<Vec<u8>> = (0..4).map(|_| vec![1u8; 32]).collect();
        digests[2] = vec![9u8; 32];
        let health = assess_cluster(
            10,
            &mut mons.iter_mut().collect::<Vec<_>>(),
            &[8, 8, 8, 8],
            &digests,
        );
        assert_eq!(health.replicas[2], HealthState::Quarantined);
        assert_eq!(health.verdict, ClusterHealthVerdict::Degraded);
        assert!(mons[2]
            .engine()
            .timeline()
            .iter()
            .any(|a| a.rule == RULE_DIVERGENCE));
    }

    #[test]
    fn no_quorum_is_critical() {
        let mut mons = monitors(4);
        let digests: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 32]).collect();
        let health = assess_cluster(
            10,
            &mut mons.iter_mut().collect::<Vec<_>>(),
            &[8, 8, 8, 8],
            &digests,
        );
        assert_eq!(health.verdict, ClusterHealthVerdict::Critical);
        assert!(health
            .replicas
            .iter()
            .all(|&h| h == HealthState::Quarantined));
    }

    #[test]
    fn rollup_fact_clears_when_replica_rejoins_quorum() {
        let mut mons = monitors(4);
        let mut digests: Vec<Vec<u8>> = (0..4).map(|_| vec![1u8; 32]).collect();
        digests[3] = vec![2u8; 32];
        assess_cluster(
            10,
            &mut mons.iter_mut().collect::<Vec<_>>(),
            &[8, 8, 8, 3],
            &digests,
        );
        assert_eq!(mons[3].health(), HealthState::Lagging);
        // Catch-up brings replica 3 back onto the quorum digest.
        digests[3] = vec![1u8; 32];
        let health = assess_cluster(
            20,
            &mut mons.iter_mut().collect::<Vec<_>>(),
            &[8, 8, 8, 8],
            &digests,
        );
        assert_eq!(health.replicas[3], HealthState::Healthy);
        assert_eq!(health.verdict, ClusterHealthVerdict::Healthy);
    }

    #[test]
    fn rule_firing_degrades_health_and_recovers() {
        let config = MonitorConfig::default();
        let mut monitor = ReplicaMonitor::new(0, &config);
        let registry = Registry::new();
        let sink = registry.sink();
        // An undecodable payload fires a built-in rule on the 1st sample.
        sink.incr("node.batch.undecodable");
        let alerts = monitor.sample(1, registry.snapshot());
        assert!(alerts.iter().any(|a| a.rule == RULE_UNDECODABLE));
        assert_eq!(monitor.health(), HealthState::Degraded);
        // The rule sums a 2-window trail, so the breach persists one more
        // window; two quiet evaluations after that resolve it.
        monitor.sample(2, registry.snapshot());
        assert_eq!(monitor.health(), HealthState::Degraded);
        monitor.sample(3, registry.snapshot());
        monitor.sample(4, registry.snapshot());
        assert_eq!(monitor.health(), HealthState::Healthy);
        assert_eq!(
            monitor.transitions(),
            &[(1, HealthState::Degraded), (4, HealthState::Healthy)]
        );
    }

    #[test]
    fn restart_and_catchup_counters_fire_builtins() {
        let config = MonitorConfig::default();
        let mut monitor = ReplicaMonitor::new(2, &config);
        let registry = Registry::new();
        let sink = registry.sink();
        sink.incr("node.fault.recoveries");
        sink.add("node.catchup.blocks_applied", 12);
        let alerts = monitor.sample(1, registry.snapshot());
        let names: Vec<&str> = alerts.iter().map(|a| a.rule.as_str()).collect();
        assert!(names.contains(&RULE_RESTART), "{names:?}");
        assert!(names.contains(&RULE_CATCHUP), "{names:?}");
    }
}
