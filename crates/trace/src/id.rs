//! Trace and span identifiers.
//!
//! Everything here is a *deterministic hash*: a trace id is derived from
//! the item it follows (a transaction id, a batch digest, a block id), and
//! a span id is derived from `(trace, span name[, replica])`. That single
//! decision is what makes causal links work across replicas with no
//! coordination — replica 3 can parent its `tx.apply` span to the
//! cluster-wide `tx.commit` span by *computing* the parent id, without
//! ever learning which replica recorded it.

use std::fmt;

/// FNV-1a offset basis, 64-bit variant.
const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime, 64-bit variant.
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
/// FNV-1a offset basis, 128-bit variant.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a prime, 128-bit variant.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// FNV-1a-style mixing over 8-byte words, 64-bit state.
///
/// Byte-serial FNV costs one serially-dependent multiply per byte, which
/// is measurable at span-record rates (a span id hashes ~40 bytes and is
/// recomputed wherever a parent link is derived). The ids only need
/// determinism, not FNV compatibility, so the word-wise variant — tail
/// zero-padded, input length mixed in last to keep `"a"` distinct from
/// `"a\0"` — buys an ~8x shorter multiply chain.
fn mix64(mut state: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        state ^= u64::from_be_bytes(c.try_into().expect("8-byte chunk"));
        state = state.wrapping_mul(FNV64_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        state ^= u64::from_be_bytes(tail);
        state = state.wrapping_mul(FNV64_PRIME);
    }
    state ^= bytes.len() as u64;
    state.wrapping_mul(FNV64_PRIME)
}

/// FNV-1a-style mixing over 16-byte words, 128-bit state (see [`mix64`]).
fn mix128(mut state: u128, bytes: &[u8]) -> u128 {
    let mut chunks = bytes.chunks_exact(16);
    for c in &mut chunks {
        state ^= u128::from_be_bytes(c.try_into().expect("16-byte chunk"));
        state = state.wrapping_mul(FNV128_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 16];
        tail[..rem.len()].copy_from_slice(rem);
        state ^= u128::from_be_bytes(tail);
        state = state.wrapping_mul(FNV128_PRIME);
    }
    state ^= bytes.len() as u128;
    state.wrapping_mul(FNV128_PRIME)
}

/// A 128-bit causal trace identifier.
///
/// The zero value is reserved: it means "no trace" ([`TraceId::NONE`],
/// also the `Default`). Mint real ids with [`TraceId::from_seed`], always
/// from data every replica agrees on, so all replicas independently mint
/// the *same* id for the same item.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

impl TraceId {
    /// The absent trace (all zero).
    pub const NONE: TraceId = TraceId(0);

    /// Deterministically derives a trace id from `seed` (128-bit word-FNV).
    /// Equal seeds give equal ids on every replica; the reserved zero
    /// value is remapped so a real trace is never mistaken for
    /// [`TraceId::NONE`].
    pub fn from_seed(seed: &[u8]) -> TraceId {
        let h = mix128(FNV128_OFFSET, seed);
        TraceId(if h == 0 { 1 } else { h })
    }

    /// True for the reserved "no trace" value.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }

    /// Lower-case hex rendering (no `0x` prefix), as used in exports.
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Id of a span recorded *once per trace*, regardless of replica — e.g.
/// the single cluster-wide `tx.admission` span. Never returns 0 (the
/// "no parent" sentinel).
pub fn span_id(trace: TraceId, name: &str) -> u64 {
    let mut state = mix64(FNV64_OFFSET, &trace.0.to_be_bytes());
    state = mix64(state, name.as_bytes());
    if state == 0 {
        1
    } else {
        state
    }
}

/// Id of a span recorded *per replica* — e.g. each replica's `tx.apply`
/// span for the same transaction. Never returns 0.
pub fn replica_span_id(trace: TraceId, name: &str, replica: usize) -> u64 {
    let mut state = mix64(FNV64_OFFSET, &trace.0.to_be_bytes());
    state = mix64(state, name.as_bytes());
    state = mix64(state, &(replica as u64).to_be_bytes());
    if state == 0 {
        1
    } else {
        state
    }
}

/// The causal context a consensus message carries across the (simulated)
/// network: which trace the message belongs to and which span caused it.
///
/// Protocol layers attach this to every ordering message (PBFT
/// pre-prepare/prepare/commit, PoA slot proposals) so the receiving
/// replica can parent its own handling span under the sender's — the
/// cross-replica edge of the causal graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace this message belongs to.
    pub trace: TraceId,
    /// The span (on the sending replica) that caused this message;
    /// 0 when unknown.
    pub parent: u64,
}

impl SpanContext {
    /// An absent context (no trace, no parent).
    pub const NONE: SpanContext = SpanContext {
        trace: TraceId::NONE,
        parent: 0,
    };

    /// Builds a context for `trace` caused by span `parent`.
    pub fn new(trace: TraceId, parent: u64) -> SpanContext {
        SpanContext { trace, parent }
    }

    /// True when no trace is attached.
    pub fn is_none(&self) -> bool {
        self.trace.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_nonzero() {
        let a = TraceId::from_seed(b"tx-1");
        let b = TraceId::from_seed(b"tx-1");
        let c = TraceId::from_seed(b"tx-2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_none());
        assert!(TraceId::NONE.is_none());
        assert!(TraceId::default().is_none());
    }

    #[test]
    fn span_ids_differ_by_name_and_replica() {
        let t = TraceId::from_seed(b"x");
        assert_ne!(span_id(t, "a"), span_id(t, "b"));
        assert_ne!(replica_span_id(t, "a", 0), replica_span_id(t, "a", 1));
        assert_ne!(span_id(t, "a"), replica_span_id(t, "a", 0));
        // Deterministic: recomputable anywhere.
        assert_eq!(replica_span_id(t, "a", 3), replica_span_id(t, "a", 3));
        assert_ne!(span_id(t, "a"), 0);
    }

    #[test]
    fn hex_renders_full_width() {
        let t = TraceId(0xab);
        assert_eq!(t.to_hex().len(), 32);
        assert!(t.to_hex().ends_with("ab"));
        assert_eq!(format!("{t}"), t.to_hex());
    }

    #[test]
    fn span_context_roundtrip() {
        let t = TraceId::from_seed(b"ctx");
        let ctx = SpanContext::new(t, span_id(t, "root"));
        assert!(!ctx.is_none());
        assert!(SpanContext::NONE.is_none());
        assert_eq!(SpanContext::default(), SpanContext::NONE);
    }
}
