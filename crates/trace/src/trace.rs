//! The merged, causally-ordered trace of one run.

use std::collections::{BTreeMap, BTreeSet};

use crate::id::TraceId;
use crate::span::SpanRecord;

/// Every span collected from a run, merged across replicas and ordered by
/// start time. Produced by [`Tracer::collect`](crate::Tracer::collect);
/// consumed by the exporters ([`Trace::to_chrome_json`],
/// [`Trace::commit_breakdown`](crate::Trace::commit_breakdown),
/// [`Trace::critical_path_text`](crate::Trace::critical_path_text)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// All spans, ordered by `(start_ns, replica, id)`.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from ring buffers before collection.
    pub dropped: u64,
    /// Number of replica shards the tracer was built with.
    pub n_replicas: usize,
}

impl Trace {
    /// Number of collected spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were collected.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The distinct replicas that recorded at least one span.
    pub fn replicas(&self) -> BTreeSet<usize> {
        self.spans.iter().map(|s| s.replica).collect()
    }

    /// All spans belonging to `trace`, in start order.
    pub fn of_trace(&self, trace: TraceId) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.trace == trace).collect()
    }

    /// All spans with the given name, in start order.
    pub fn named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Trace ids that have spans on at least `min_replicas` distinct
    /// replicas — the cross-replica causal links an export must show.
    pub fn cross_replica_traces(&self, min_replicas: usize) -> Vec<TraceId> {
        let mut per_trace: BTreeMap<TraceId, BTreeSet<usize>> = BTreeMap::new();
        for s in &self.spans {
            per_trace.entry(s.trace).or_default().insert(s.replica);
        }
        per_trace
            .into_iter()
            .filter(|(_, replicas)| replicas.len() >= min_replicas)
            .map(|(trace, _)| trace)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::lanes;
    use crate::{replica_span_id, Tracer};

    fn sample() -> Trace {
        let tracer = Tracer::new(3);
        let t1 = TraceId::from_seed(b"one");
        let t2 = TraceId::from_seed(b"two");
        for replica in 0..3 {
            tracer
                .sink(replica)
                .complete(t1, "tx.apply", 0, lanes::EXECUTE, 0, &[]);
        }
        tracer
            .sink(0)
            .complete(t2, "local", 0, lanes::PIPELINE, 0, &[]);
        tracer.collect()
    }

    #[test]
    fn queries_cover_replicas_and_traces() {
        let trace = sample();
        assert_eq!(trace.len(), 4);
        assert!(!trace.is_empty());
        assert_eq!(trace.replicas().len(), 3);
        let t1 = TraceId::from_seed(b"one");
        assert_eq!(trace.of_trace(t1).len(), 3);
        assert_eq!(trace.named("tx.apply").len(), 3);
        assert_eq!(trace.cross_replica_traces(3), vec![t1]);
        assert_eq!(trace.cross_replica_traces(1).len(), 2);
        let id0 = replica_span_id(t1, "tx.apply", 0);
        assert!(trace.of_trace(t1).iter().any(|s| s.id == id0));
    }
}
