//! # tn-trace — causal, cross-replica tracing for the trusted-news chain
//!
//! A zero-dependency tracing subsystem: every transaction gets a 128-bit
//! trace id minted at mempool admission, consensus messages carry a
//! [`SpanContext`], and each lifecycle stage (admission → verify →
//! consensus phases → pipeline commit → execute → projections) records
//! [`SpanRecord`]s into per-replica lock-light ring buffers. After a run
//! the shards merge into one causally-ordered [`Trace`] which exports to
//! Chrome trace-event JSON (open in Perfetto: replicas are processes,
//! pipeline lanes are threads) or to a plain-text critical-path summary.
//!
//! ## Deterministic ids
//!
//! Ids are content-derived (FNV-1a), never random:
//!
//! - trace id = hash of a seed all replicas agree on (tx id, batch
//!   digest, block id), via [`TraceId::from_seed`];
//! - span id = [`span_id`]`(trace, name)` for cluster-once spans, or
//!   [`replica_span_id`]`(trace, name, replica)` for per-replica spans.
//!
//! Any replica can therefore *compute* the id of a parent span another
//! replica recorded — cross-replica parent links need no communication.
//! Cluster-once spans (`tx.admission`, `tx.commit`) are deduplicated via
//! [`TraceSink::complete_once`], backed by a shared mint set.
//!
//! ## Overhead
//!
//! A disabled [`TraceSink`] (the default) reduces every call to a single
//! `Option` check, mirroring `tn-telemetry`'s sink design, so tracing
//! stays compiled into hot paths unconditionally.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod critical;
mod export;
mod id;
mod span;
mod trace;
mod tracer;

pub use critical::StageBreakdown;
pub use id::{replica_span_id, span_id, SpanContext, TraceId};
pub use span::{lanes, SpanRecord};
pub use trace::Trace;
pub use tracer::{TraceSink, Tracer};
