//! The span record: one timed, causally-linked unit of work.

use std::borrow::Cow;

use crate::id::TraceId;

/// Well-known lane names. A lane is the "thread" a span renders on in the
/// Chrome trace-event export; each replica ("process") shows one row per
/// lane, so the pipeline stages line up vertically in Perfetto.
pub mod lanes {
    /// Client ingest: mempool admission and its signature check.
    pub const ADMISSION: &str = "admission";
    /// Consensus ordering: PBFT phases / PoA slots.
    pub const CONSENSUS: &str = "consensus";
    /// Block-level pipeline: propose, handoff, import.
    pub const PIPELINE: &str = "pipeline";
    /// Verification: block structure + per-transaction signatures.
    pub const VERIFY: &str = "verify";
    /// Execution: per-transaction state application.
    pub const EXECUTE: &str = "execute";
    /// Projection application (block observers).
    pub const PROJECTION: &str = "projection";
    /// Contract VM calls.
    pub const CONTRACTS: &str = "contracts";

    /// Every lane, in the fixed display order used by the exporter.
    pub const ALL: [&str; 7] = [
        ADMISSION, CONSENSUS, PIPELINE, VERIFY, EXECUTE, PROJECTION, CONTRACTS,
    ];
}

/// Annotations a span can carry inline (see [`SpanArgs`]).
pub const MAX_ARGS: usize = 4;

/// Numeric key/value annotations stored inline in the record, so the
/// record path never heap-allocates for them. At most [`MAX_ARGS`]
/// entries are kept; extras are silently dropped (span annotations are
/// best-effort context, not data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanArgs {
    items: [(&'static str, u64); MAX_ARGS],
    len: u8,
}

impl SpanArgs {
    /// Copies up to [`MAX_ARGS`] entries from `args`.
    pub fn new(args: &[(&'static str, u64)]) -> SpanArgs {
        let mut out = SpanArgs::default();
        for &(k, v) in args.iter().take(MAX_ARGS) {
            out.items[out.len as usize] = (k, v);
            out.len += 1;
        }
        out
    }

    /// The stored annotations, in insertion order.
    pub fn as_slice(&self) -> &[(&'static str, u64)] {
        &self.items[..self.len as usize]
    }

    /// Iterates the stored annotations.
    pub fn iter(&self) -> std::slice::Iter<'_, (&'static str, u64)> {
        self.as_slice().iter()
    }

    /// Number of stored annotations.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no annotations are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for SpanArgs {
    fn default() -> SpanArgs {
        SpanArgs {
            items: [("", 0); MAX_ARGS],
            len: 0,
        }
    }
}

/// One completed span: a named interval on one replica, belonging to a
/// trace and (optionally) parented under another span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id (see [`crate::span_id`] / [`crate::replica_span_id`]).
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    /// Span name, e.g. `"tx.admission"` or `"pbft.prepare_phase"`.
    /// Borrowed for the static names used on hot paths; owned only for
    /// dynamic names (`projection.{name}`).
    pub name: Cow<'static, str>,
    /// Replica that recorded the span.
    pub replica: usize,
    /// Display lane (see [`lanes`]).
    pub lane: &'static str,
    /// Start, in nanoseconds since the tracer's shared origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric key/value annotations (sim ticks, heights, worker ids…).
    pub args: SpanArgs,
}

impl SpanRecord {
    /// End of the span, saturating at `u64::MAX`.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    /// The value of the named annotation, if present.
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_and_args() {
        let s = SpanRecord {
            trace: TraceId::from_seed(b"t"),
            id: 1,
            parent: 0,
            name: "x".into(),
            replica: 0,
            lane: lanes::PIPELINE,
            start_ns: 10,
            dur_ns: 5,
            args: SpanArgs::new(&[("height", 7)]),
        };
        assert_eq!(s.end_ns(), 15);
        assert_eq!(s.arg("height"), Some(7));
        assert_eq!(s.arg("missing"), None);
    }

    #[test]
    fn args_truncate_at_capacity() {
        let many: Vec<(&'static str, u64)> = vec![("a", 1), ("b", 2), ("c", 3), ("d", 4), ("e", 5)];
        let args = SpanArgs::new(&many);
        assert_eq!(args.len(), MAX_ARGS);
        assert!(!args.is_empty());
        assert_eq!(args.as_slice().last(), Some(&("d", 4)));
        assert!(SpanArgs::default().is_empty());
    }

    #[test]
    fn lanes_are_distinct() {
        let mut names: Vec<&str> = lanes::ALL.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), lanes::ALL.len());
    }
}
