//! Critical-path analysis: where commit latency actually goes.
//!
//! The unit of accounting is a *root span* (normally `pipeline.commit`,
//! one per committed block per replica): its direct children are the
//! named stages, child durations are clipped to the root interval, and
//! whatever the children don't cover is the `(other)` bucket. The slowest
//! root also yields a critical chain — the deepest maximum-duration
//! descendant path — rendered as plain text.

use std::collections::BTreeMap;

use crate::span::SpanRecord;
use crate::trace::Trace;

/// Per-stage attribution of the total duration of all roots with a given
/// name. See [`Trace::commit_breakdown`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageBreakdown {
    /// The root span name the breakdown was computed for.
    pub root_name: String,
    /// Number of root spans found.
    pub roots: usize,
    /// Sum of all root durations, nanoseconds.
    pub total_ns: u64,
    /// Per-stage (direct-child name → clipped duration) totals,
    /// descending by duration.
    pub stages: Vec<(String, u64)>,
    /// Root time not covered by any direct child.
    pub other_ns: u64,
}

impl StageBreakdown {
    /// Fraction of root time attributed to named stages, in `[0, 1]`
    /// (1.0 for an empty breakdown).
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            1.0
        } else {
            1.0 - self.other_ns as f64 / self.total_ns as f64
        }
    }

    /// Renders the breakdown as an aligned table.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "stage breakdown of {} x {} ({} ns total, {:.1}% attributed)\n",
            self.roots,
            self.root_name,
            self.total_ns,
            self.coverage() * 100.0
        );
        let width = self
            .stages
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(7)
            .max(7);
        for (name, ns) in &self.stages {
            out.push_str(&format!(
                "  {name:<width$}  {ns:>12} ns  {:>5.1}%\n",
                *ns as f64 * 100.0 / self.total_ns.max(1) as f64
            ));
        }
        out.push_str(&format!(
            "  {:<width$}  {:>12} ns  {:>5.1}%\n",
            "(other)",
            self.other_ns,
            self.other_ns as f64 * 100.0 / self.total_ns.max(1) as f64
        ));
        out
    }
}

/// Duration of the part of `child` that overlaps `root`'s interval.
fn clipped(child: &SpanRecord, root: &SpanRecord) -> u64 {
    let lo = child.start_ns.max(root.start_ns);
    let hi = child.end_ns().min(root.end_ns());
    hi.saturating_sub(lo)
}

impl Trace {
    /// Direct children of `root`: spans whose `parent` equals its id.
    fn children_of<'a>(&'a self, root: &SpanRecord) -> Vec<&'a SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.parent == root.id && s.id != root.id)
            .collect()
    }

    /// Attributes the total duration of every span named `root_name` to
    /// its direct children (clipped to the parent interval), summing per
    /// stage name across all roots. The residue lands in
    /// [`StageBreakdown::other_ns`].
    pub fn commit_breakdown(&self, root_name: &str) -> StageBreakdown {
        let mut stages: BTreeMap<String, u64> = BTreeMap::new();
        let mut total_ns = 0u64;
        let mut covered_ns = 0u64;
        let mut roots = 0usize;
        for root in self.spans.iter().filter(|s| s.name == root_name) {
            roots += 1;
            total_ns += root.dur_ns;
            for child in self.children_of(root) {
                let d = clipped(child, root);
                covered_ns += d;
                *stages.entry(child.name.to_string()).or_default() += d;
            }
        }
        let mut stages: Vec<(String, u64)> = stages.into_iter().collect();
        stages.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        StageBreakdown {
            root_name: root_name.to_string(),
            roots,
            total_ns,
            stages,
            other_ns: total_ns.saturating_sub(covered_ns),
        }
    }

    /// The critical chain under the slowest span named `root_name`: from
    /// that root, repeatedly descend into the longest (clipped) direct
    /// child. Returns the chain root-first; empty when no such span
    /// exists.
    pub fn critical_path(&self, root_name: &str) -> Vec<&SpanRecord> {
        let Some(mut cur) = self
            .spans
            .iter()
            .filter(|s| s.name == root_name)
            .max_by_key(|s| (s.dur_ns, s.start_ns))
        else {
            return Vec::new();
        };
        let mut chain = vec![cur];
        loop {
            let next = self
                .children_of(cur)
                .into_iter()
                .max_by_key(|c| (clipped(c, cur), c.start_ns));
            match next {
                // Guard against parent-link cycles (malformed ids).
                Some(c) if !chain.iter().any(|s| s.id == c.id) => {
                    chain.push(c);
                    cur = c;
                }
                _ => break,
            }
        }
        chain
    }

    /// Renders the slowest block's critical chain as indented text: one
    /// line per hop with name, replica, duration, and share of the root.
    pub fn critical_path_text(&self, root_name: &str) -> String {
        let chain = self.critical_path(root_name);
        let Some(root) = chain.first() else {
            return format!("no '{root_name}' spans recorded\n");
        };
        let mut out = format!(
            "critical path of slowest {root_name} (trace {}):\n",
            root.trace
        );
        for (depth, span) in chain.iter().enumerate() {
            out.push_str(&format!(
                "  {}{} [replica {}] {} ns ({:.1}%)\n",
                "  ".repeat(depth),
                span.name,
                span.replica,
                span.dur_ns,
                span.dur_ns as f64 * 100.0 / root.dur_ns.max(1) as f64,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::TraceId;
    use crate::span::{lanes, SpanArgs};
    use crate::tracer::Tracer;

    /// Builds: root(0..100) with children a(0..60), b(60..90); a has a
    /// grandchild a1(10..50).
    fn sample() -> Trace {
        let tracer = Tracer::new(1);
        let sink = tracer.sink(0);
        let t = TraceId::from_seed(b"block");
        let mk = |id: u64, parent: u64, name: &'static str, start: u64, dur: u64| SpanRecord {
            trace: t,
            id,
            parent,
            name: name.into(),
            replica: 0,
            lane: lanes::PIPELINE,
            start_ns: start,
            dur_ns: dur,
            args: SpanArgs::default(),
        };
        sink.record(mk(1, 0, "pipeline.commit", 0, 100));
        sink.record(mk(2, 1, "chain.propose", 0, 60));
        sink.record(mk(3, 1, "chain.import", 60, 30));
        sink.record(mk(4, 2, "verify", 10, 40));
        tracer.collect()
    }

    #[test]
    fn breakdown_attributes_children_and_residue() {
        let b = sample().commit_breakdown("pipeline.commit");
        assert_eq!(b.roots, 1);
        assert_eq!(b.total_ns, 100);
        assert_eq!(
            b.stages,
            vec![
                ("chain.propose".to_string(), 60),
                ("chain.import".to_string(), 30)
            ]
        );
        assert_eq!(b.other_ns, 10);
        assert!((b.coverage() - 0.9).abs() < 1e-9);
        let text = b.render_text();
        assert!(text.contains("chain.propose"));
        assert!(text.contains("(other)"));
    }

    #[test]
    fn children_clip_to_root_interval() {
        let tracer = Tracer::new(1);
        let sink = tracer.sink(0);
        let t = TraceId::from_seed(b"clip");
        sink.record(SpanRecord {
            trace: t,
            id: 1,
            parent: 0,
            name: "root".into(),
            replica: 0,
            lane: lanes::PIPELINE,
            start_ns: 50,
            dur_ns: 50,
            args: SpanArgs::default(),
        });
        // Child overflows the root on both sides: only the overlap counts.
        sink.record(SpanRecord {
            trace: t,
            id: 2,
            parent: 1,
            name: "wide".into(),
            replica: 0,
            lane: lanes::PIPELINE,
            start_ns: 0,
            dur_ns: 500,
            args: SpanArgs::default(),
        });
        let b = tracer.collect().commit_breakdown("root");
        assert_eq!(b.stages[0].1, 50);
        assert_eq!(b.other_ns, 0);
    }

    #[test]
    fn critical_path_descends_longest_children() {
        let trace = sample();
        let chain: Vec<&str> = trace
            .critical_path("pipeline.commit")
            .iter()
            .map(|s| s.name.as_ref())
            .collect();
        assert_eq!(chain, vec!["pipeline.commit", "chain.propose", "verify"]);
        let text = trace.critical_path_text("pipeline.commit");
        assert!(text.contains("chain.propose"));
        assert!(text.contains("100.0%"));
    }

    #[test]
    fn missing_root_is_reported_not_panicked() {
        let trace = sample();
        assert!(trace.critical_path("nope").is_empty());
        assert!(trace.critical_path_text("nope").contains("no 'nope' spans"));
        let b = trace.commit_breakdown("nope");
        assert_eq!(b.roots, 0);
        assert_eq!(b.coverage(), 1.0);
    }
}
