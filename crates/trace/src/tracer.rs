//! The tracer: per-replica ring buffers behind cheap cloneable sinks.

use std::borrow::Cow;
use std::collections::HashSet;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::id::{replica_span_id, span_id, TraceId};
use crate::span::{SpanArgs, SpanRecord};
use crate::trace::Trace;

/// Spans retained per replica shard; pushing past this evicts the oldest
/// span and counts it as dropped.
const SHARD_CAPACITY: usize = 1 << 16;

/// One replica's span storage.
#[derive(Debug)]
struct Shard {
    spans: VecDeque<SpanRecord>,
    dropped: u64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            spans: VecDeque::new(),
            dropped: 0,
        }
    }
}

/// Shared state behind a [`Tracer`] and its [`TraceSink`]s.
#[derive(Debug)]
pub(crate) struct TracerInner {
    /// Shared wall-clock origin: every span timestamp is nanoseconds
    /// since this instant, so spans from different replicas land on one
    /// causally-consistent timeline.
    origin: Instant,
    /// One lock per replica. A replica's spans are recorded by that
    /// replica's execution (plus its scoped verify workers), so the lock
    /// is effectively uncontended — "lock-light", not lock-free.
    shards: Vec<Mutex<Shard>>,
    /// Ids of once-per-trace spans already minted (cluster-wide dedup for
    /// spans like `tx.admission` that every replica would otherwise
    /// record).
    minted: Mutex<HashSet<u64>>,
}

/// Owns the span storage for an `n`-replica run and hands out per-replica
/// [`TraceSink`]s. Collect the merged, causally-ordered [`Trace`] with
/// [`Tracer::collect`] after the run.
#[derive(Debug)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer with one span shard per replica (`n_replicas` is clamped
    /// to at least 1).
    pub fn new(n_replicas: usize) -> Tracer {
        let shards = (0..n_replicas.max(1))
            .map(|_| Mutex::new(Shard::new()))
            .collect();
        Tracer {
            inner: Arc::new(TracerInner {
                origin: Instant::now(),
                shards,
                minted: Mutex::new(HashSet::new()),
            }),
        }
    }

    /// An enabled sink recording into replica `replica`'s shard. Sinks
    /// are cheap to clone and hand to instrumented components; a replica
    /// index past the shard count is clamped to the last shard.
    pub fn sink(&self, replica: usize) -> TraceSink {
        TraceSink {
            inner: Some(Arc::clone(&self.inner)),
            replica,
        }
    }

    /// Drains every shard into one merged trace, ordered by start time
    /// (ties broken by replica then span id, so collection is
    /// deterministic for a given set of records).
    pub fn collect(&self) -> Trace {
        let mut spans = Vec::new();
        let mut dropped = 0;
        for shard in &self.inner.shards {
            let mut shard = shard.lock().expect("trace shard poisoned");
            dropped += shard.dropped;
            shard.dropped = 0;
            spans.extend(shard.spans.drain(..));
        }
        spans.sort_by_key(|a| (a.start_ns, a.replica, a.id));
        Trace {
            spans,
            dropped,
            n_replicas: self.inner.shards.len(),
        }
    }
}

/// The cheap handle instrumented components hold.
///
/// Like `tn-telemetry`'s sink, a `TraceSink` is either *enabled* (from
/// [`Tracer::sink`]) or *disabled* (the default): every operation on a
/// disabled sink is a single `Option` test and an immediate return, so
/// tracing can stay compiled into hot paths unconditionally.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<TracerInner>>,
    replica: usize,
}

impl TraceSink {
    /// A sink that records nothing. Equivalent to `TraceSink::default()`.
    pub fn disabled() -> TraceSink {
        TraceSink {
            inner: None,
            replica: 0,
        }
    }

    /// Whether this sink records into a tracer.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The replica index this sink records as.
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// Nanoseconds since the tracer's shared origin (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.origin.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Claims a once-per-trace span id: true exactly for the first caller
    /// across all replicas (false when disabled). Gate cluster-wide-once
    /// spans (`tx.admission`, `tx.commit`) on this.
    pub fn once(&self, id: u64) -> bool {
        match &self.inner {
            Some(inner) => inner.minted.lock().expect("mint set poisoned").insert(id),
            None => false,
        }
    }

    /// Records a completed span into this replica's shard.
    pub fn record(&self, record: SpanRecord) {
        if let Some(inner) = &self.inner {
            Self::push(inner, record);
        }
    }

    /// The shared push path: ring-buffer insert under the shard lock.
    fn push(inner: &TracerInner, record: SpanRecord) {
        let shard_idx = record.replica.min(inner.shards.len() - 1);
        let mut shard = inner.shards[shard_idx]
            .lock()
            .expect("trace shard poisoned");
        if shard.spans.len() == SHARD_CAPACITY {
            shard.spans.pop_front();
            shard.dropped += 1;
        }
        shard.spans.push_back(record);
    }

    /// Records a per-replica span (`id = replica_span_id(trace, name,
    /// replica)`) running from `start_ns` to now.
    ///
    /// With a `&'static str` name (every hot-path span) and inline-sized
    /// `args`, recording performs no heap allocation beyond the shard's
    /// amortized ring growth.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &self,
        trace: TraceId,
        name: impl Into<Cow<'static, str>>,
        parent: u64,
        lane: &'static str,
        start_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        let Some(inner) = &self.inner else {
            return;
        };
        let name = name.into();
        let end = inner.origin.elapsed().as_nanos() as u64;
        Self::push(
            inner,
            SpanRecord {
                trace,
                id: replica_span_id(trace, &name, self.replica),
                parent,
                name,
                replica: self.replica,
                lane,
                start_ns,
                dur_ns: end.saturating_sub(start_ns),
                args: SpanArgs::new(args),
            },
        );
    }

    /// Records a once-per-trace span (`id = span_id(trace, name)`) running
    /// from `start_ns` to now, if no replica has recorded it yet. Returns
    /// whether the span was recorded.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_once(
        &self,
        trace: TraceId,
        name: impl Into<Cow<'static, str>>,
        parent: u64,
        lane: &'static str,
        start_ns: u64,
        args: &[(&'static str, u64)],
    ) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let name = name.into();
        let id = span_id(trace, &name);
        if !inner.minted.lock().expect("mint set poisoned").insert(id) {
            return false;
        }
        let end = inner.origin.elapsed().as_nanos() as u64;
        Self::push(
            inner,
            SpanRecord {
                trace,
                id,
                parent,
                name,
                replica: self.replica,
                lane,
                start_ns,
                dur_ns: end.saturating_sub(start_ns),
                args: SpanArgs::new(args),
            },
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::lanes;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        assert_eq!(sink.now_ns(), 0);
        assert!(!sink.once(7));
        sink.complete(TraceId::from_seed(b"t"), "x", 0, lanes::PIPELINE, 0, &[]);
        assert!(!sink.complete_once(TraceId::from_seed(b"t"), "x", 0, lanes::PIPELINE, 0, &[]));
    }

    #[test]
    fn spans_land_in_replica_shards_and_merge_sorted() {
        let tracer = Tracer::new(2);
        let t = TraceId::from_seed(b"t");
        let s1 = tracer.sink(1);
        let s0 = tracer.sink(0);
        s1.complete(t, "later", 0, lanes::EXECUTE, s1.now_ns(), &[]);
        s0.record(SpanRecord {
            trace: t,
            id: 42,
            parent: 0,
            name: "earliest".into(),
            replica: 0,
            lane: lanes::PIPELINE,
            start_ns: 0,
            dur_ns: 1,
            args: SpanArgs::default(),
        });
        let trace = tracer.collect();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].name, "earliest");
        assert_eq!(trace.spans[1].replica, 1);
        assert_eq!(trace.dropped, 0);
        // Collection drains.
        assert!(tracer.collect().spans.is_empty());
    }

    #[test]
    fn once_guard_is_cluster_wide() {
        let tracer = Tracer::new(3);
        let t = TraceId::from_seed(b"tx");
        let mut recorded = 0;
        for replica in 0..3 {
            if tracer
                .sink(replica)
                .complete_once(t, "tx.admission", 0, lanes::ADMISSION, 0, &[])
            {
                recorded += 1;
            }
        }
        assert_eq!(recorded, 1);
        assert_eq!(tracer.collect().spans.len(), 1);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let tracer = Tracer::new(1);
        let sink = tracer.sink(0);
        let t = TraceId::from_seed(b"flood");
        for i in 0..(SHARD_CAPACITY as u64 + 10) {
            sink.record(SpanRecord {
                trace: t,
                id: i + 1,
                parent: 0,
                name: "s".into(),
                replica: 0,
                lane: lanes::PIPELINE,
                start_ns: i,
                dur_ns: 1,
                args: SpanArgs::default(),
            });
        }
        let trace = tracer.collect();
        assert_eq!(trace.spans.len(), SHARD_CAPACITY);
        assert_eq!(trace.dropped, 10);
        assert_eq!(trace.spans[0].start_ns, 10, "oldest were evicted");
    }

    #[test]
    fn out_of_range_replica_clamps_to_last_shard() {
        let tracer = Tracer::new(2);
        let sink = tracer.sink(9);
        sink.complete(TraceId::from_seed(b"t"), "x", 0, lanes::PIPELINE, 0, &[]);
        let trace = tracer.collect();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].replica, 9, "label preserved");
    }
}
