//! Chrome trace-event JSON export.
//!
//! The output is the `{"traceEvents": [...]}` object format accepted by
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`: replicas
//! render as processes, lanes as threads, and every span as an `"X"`
//! (complete) event with microsecond timestamps. Trace/span/parent ids
//! ride along as event args so a causal chain can be followed in the UI.

use std::collections::BTreeSet;

use crate::span::lanes;
use crate::trace::Trace;

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The thread id a lane renders as. Lanes keep fixed ids (their index in
/// [`lanes::ALL`]) so every replica's rows line up; an unknown lane goes
/// after the known ones.
fn lane_tid(lane: &str) -> usize {
    lanes::ALL
        .iter()
        .position(|l| *l == lane)
        .unwrap_or(lanes::ALL.len())
}

/// Nanoseconds → microseconds with 3 decimals (trace-event `ts`/`dur`
/// unit is µs; fractional values keep ns resolution).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl Trace {
    /// Renders the trace as Chrome trace-event JSON.
    ///
    /// Load the result in Perfetto or `chrome://tracing`: each replica is
    /// a process named `replica N`, each pipeline stage a thread, and
    /// every span a complete event carrying its `trace`/`span`/`parent`
    /// ids (hex) plus numeric annotations as args.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(self.spans.len() + 16);
        // Metadata: name the processes and threads that actually appear.
        let replicas: BTreeSet<usize> = self.replicas();
        let used_lanes: BTreeSet<&'static str> = self.spans.iter().map(|s| s.lane).collect();
        for r in &replicas {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{r},\"tid\":0,\
                 \"args\":{{\"name\":\"replica {r}\"}}}}"
            ));
            for lane in &used_lanes {
                events.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{r},\"tid\":{},\
                     \"args\":{{\"name\":{}}}}}",
                    lane_tid(lane),
                    json_string(lane),
                ));
            }
        }
        for s in &self.spans {
            let mut args = format!(
                "\"trace\":{},\"span\":\"{:016x}\",\"parent\":\"{:016x}\"",
                json_string(&s.trace.to_hex()),
                s.id,
                s.parent,
            );
            for (k, v) in s.args.iter() {
                args.push_str(&format!(",{}:{v}", json_string(k)));
            }
            events.push(format!(
                "{{\"name\":{},\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"args\":{{{args}}}}}",
                json_string(&s.name),
                s.replica,
                lane_tid(s.lane),
                micros(s.start_ns),
                // Zero-duration spans still need visible extent in the UI.
                micros(s.dur_ns.max(1)),
            ));
        }
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\"}}",
            events.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::TraceId;
    use crate::Tracer;

    #[test]
    fn export_contains_metadata_and_events() {
        let tracer = Tracer::new(2);
        let t = TraceId::from_seed(b"x");
        tracer
            .sink(0)
            .complete(t, "tx.admission", 0, lanes::ADMISSION, 0, &[("n", 3)]);
        tracer
            .sink(1)
            .complete(t, "tx.apply", 0, lanes::EXECUTE, 100, &[]);
        let json = tracer.collect().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("replica 1"));
        assert!(json.contains("\"tx.admission\""));
        assert!(json.contains(&format!("\"trace\":\"{}\"", t.to_hex())));
        assert!(json.contains("\"n\":3"));
        // Balanced braces — a cheap well-formedness check without a parser.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn micros_keeps_ns_resolution() {
        assert_eq!(micros(1_234_567), "1234.567");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(0), "0.000");
    }

    #[test]
    fn lane_tids_are_stable() {
        assert_eq!(lane_tid(lanes::ADMISSION), 0);
        assert_ne!(lane_tid(lanes::CONSENSUS), lane_tid(lanes::PIPELINE));
        assert_eq!(lane_tid("unknown"), lanes::ALL.len());
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let json = Tracer::new(1).collect().to_chrome_json();
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}");
    }
}
