//! The combined detector the platform consumes: naive Bayes + logistic
//! regression + lexicon heuristics + stance, blended into one
//! probability-of-fake. This is the "AI algorithms" box of Figure 1's
//! fake-text-detection component.

use crate::corpus::LabeledDoc;
use crate::lexicon::LexiconFeatures;
use crate::logreg::{LogRegConfig, LogisticRegression};
use crate::naive_bayes::NaiveBayes;
use crate::stance::{detect_stance, stance_score, StanceConfig};

/// Blend weights for the ensemble components (normalized at use).
#[derive(Debug, Clone, Copy)]
pub struct EnsembleWeights {
    /// Naive-Bayes component.
    pub nb: f64,
    /// Logistic-regression component.
    pub lr: f64,
    /// Lexicon-heuristic component.
    pub lexicon: f64,
}

impl Default for EnsembleWeights {
    fn default() -> Self {
        EnsembleWeights {
            nb: 0.35,
            lr: 0.45,
            lexicon: 0.20,
        }
    }
}

/// The trained ensemble detector.
#[derive(Debug)]
pub struct EnsembleDetector {
    nb: NaiveBayes,
    lr: LogisticRegression,
    weights: EnsembleWeights,
    stance_config: StanceConfig,
}

impl EnsembleDetector {
    /// Trains all learned components on the labeled corpus.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty or single-class (component
    /// constraints).
    pub fn train(docs: &[LabeledDoc], weights: EnsembleWeights) -> EnsembleDetector {
        EnsembleDetector {
            nb: NaiveBayes::train(docs),
            lr: LogisticRegression::train(docs, &LogRegConfig::default()),
            weights,
            stance_config: StanceConfig::default(),
        }
    }

    /// Probability that `text` is fake.
    pub fn prob_fake(&self, text: &str) -> f64 {
        let w = self.weights;
        let total = w.nb + w.lr + w.lexicon;
        assert!(total > 0.0, "ensemble weights must not all be zero");
        let lex = LexiconFeatures::extract(text).heuristic_score();
        (w.nb * self.nb.prob_fake(text) + w.lr * self.lr.prob_fake(text) + w.lexicon * lex) / total
    }

    /// Probability that `text` is fake, adjusted by the stance of the body
    /// toward its `headline` (headline/body inconsistency is a fake
    /// signal; corroboration lowers the score).
    pub fn prob_fake_with_headline(&self, headline: &str, body: &str) -> f64 {
        let base = self.prob_fake(body);
        let s = stance_score(detect_stance(headline, body, &self.stance_config));
        // Stance acts as a 25 % component on top of the content score.
        0.75 * base + 0.25 * s
    }

    /// Probability that `text` is *factual* (what the supply-chain ranking
    /// consumes as its AI component).
    pub fn prob_factual(&self, text: &str) -> f64 {
        1.0 - self.prob_fake(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_news_corpus, train_test_split, NewsCorpusConfig};
    use crate::metrics::evaluate;

    fn detector() -> (EnsembleDetector, Vec<LabeledDoc>) {
        let corpus = generate_news_corpus(&NewsCorpusConfig {
            n_factual: 250,
            n_fake: 250,
            ..NewsCorpusConfig::default()
        });
        let (train, test) = train_test_split(&corpus, 0.8);
        (
            EnsembleDetector::train(&train, EnsembleWeights::default()),
            test,
        )
    }

    #[test]
    fn ensemble_beats_chance_comfortably() {
        let (det, test) = detector();
        let preds: Vec<(bool, f64)> = test
            .iter()
            .map(|d| (d.fake, det.prob_fake(&d.text)))
            .collect();
        let m = evaluate(&preds, 0.5);
        assert!(m.accuracy > 0.85, "accuracy {}", m.accuracy);
        assert!(m.auc > 0.92, "auc {}", m.auc);
    }

    #[test]
    fn factual_is_complement() {
        let (det, test) = detector();
        let t = &test[0].text;
        assert!((det.prob_fake(t) + det.prob_factual(t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contradicting_headline_raises_score() {
        let (det, _) = detector();
        let body = "Officials confirmed the committee approved the amendment; \
                    the record was published the same day.";
        let consistent = det.prob_fake_with_headline("Committee approves amendment", body);
        let refuting_body = "Claims that the committee approved the amendment are false; \
                             the chair denied it and called the report a hoax, not news.";
        let contradicted =
            det.prob_fake_with_headline("Committee approves amendment", refuting_body);
        assert!(contradicted > consistent, "{contradicted} vs {consistent}");
    }

    #[test]
    fn scores_bounded() {
        let (det, test) = detector();
        for d in test.iter().take(20) {
            let p = det.prob_fake(&d.text);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
