//! Logistic regression on dense feature vectors (standardized, SGD).
//!
//! The sparse TF-IDF model in [`crate::logreg`] classifies *text*; this
//! model classifies *feature vectors* — the tool for the paper's §VII
//! "fake news prediction algorithms to anticipate the onset of a fake
//! news propagation", where the inputs are publication-time signals
//! (author history, provenance structure, style features), not raw text.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct DenseConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// L2 regularization.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for DenseConfig {
    fn default() -> Self {
        DenseConfig {
            epochs: 80,
            learning_rate: 0.1,
            l2: 1e-4,
            seed: 1,
        }
    }
}

/// A trained dense logistic-regression model with built-in feature
/// standardization.
#[derive(Debug, Clone)]
pub struct DenseLogReg {
    weights: Vec<f64>,
    bias: f64,
    means: Vec<f64>,
    stds: Vec<f64>,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl DenseLogReg {
    /// Trains on rows `x` (equal length) with labels `y` (true =
    /// positive class).
    ///
    /// # Panics
    ///
    /// Panics on empty/ragged input, length mismatch, or single-class
    /// labels.
    pub fn train(x: &[Vec<f64>], y: &[bool], config: &DenseConfig) -> DenseLogReg {
        assert!(!x.is_empty(), "training set must be nonempty");
        assert_eq!(x.len(), y.len(), "features and labels must align");
        let dim = x[0].len();
        assert!(dim > 0, "need at least one feature");
        assert!(x.iter().all(|r| r.len() == dim), "ragged feature rows");
        let pos = y.iter().filter(|l| **l).count();
        assert!(
            pos > 0 && pos < y.len(),
            "training set must contain both classes"
        );

        // Standardize.
        let n = x.len() as f64;
        let mut means = vec![0.0; dim];
        for row in x {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for row in x {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt().max(1e-9);
        }
        let standardized: Vec<Vec<f64>> = x
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&means)
                    .zip(&stds)
                    .map(|((v, m), s)| (v - m) / s)
                    .collect()
            })
            .collect();

        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut t = 0.0f64;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let lr = config.learning_rate / (1.0 + 0.005 * t);
                t += 1.0;
                let row = &standardized[i];
                let z = bias + row.iter().zip(&weights).map(|(v, w)| v * w).sum::<f64>();
                let err = sigmoid(z) - if y[i] { 1.0 } else { 0.0 };
                for (w, v) in weights.iter_mut().zip(row) {
                    *w -= lr * (err * v + config.l2 * *w);
                }
                bias -= lr * err;
            }
        }
        DenseLogReg {
            weights,
            bias,
            means,
            stds,
        }
    }

    /// Predicted probability of the positive class.
    ///
    /// # Panics
    ///
    /// Panics when the feature dimension differs from training.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature dimension mismatch"
        );
        let z = self.bias
            + features
                .iter()
                .zip(&self.means)
                .zip(&self.stds)
                .zip(&self.weights)
                .map(|(((v, m), s), w)| (v - m) / s * w)
                .sum::<f64>();
        sigmoid(z)
    }

    /// The learned weights on standardized features (for inspection /
    /// feature-importance reporting).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        // Two informative dims + one noise dim.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let label = rng.gen_bool(0.5);
            let (m1, m2) = if label { (2.0, -1.0) } else { (0.0, 1.0) };
            x.push(vec![
                m1 + rng.gen_range(-1.0..1.0),
                m2 + rng.gen_range(-1.0..1.0),
                rng.gen_range(-10.0..10.0),
            ]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = toy_data(400, 3);
        let model = DenseLogReg::train(&x, &y, &DenseConfig::default());
        let (xt, yt) = toy_data(200, 99);
        let correct = xt
            .iter()
            .zip(&yt)
            .filter(|(row, l)| (model.predict(row) > 0.5) == **l)
            .count();
        assert!(
            correct as f64 / 200.0 > 0.9,
            "accuracy {}",
            correct as f64 / 200.0
        );
    }

    #[test]
    fn noise_feature_gets_small_weight() {
        let (x, y) = toy_data(600, 5);
        let model = DenseLogReg::train(&x, &y, &DenseConfig::default());
        let w = model.weights();
        assert!(w[0].abs() > 3.0 * w[2].abs(), "weights {w:?}");
    }

    #[test]
    fn deterministic() {
        let (x, y) = toy_data(100, 7);
        let a = DenseLogReg::train(&x, &y, &DenseConfig::default());
        let b = DenseLogReg::train(&x, &y, &DenseConfig::default());
        assert_eq!(a.predict(&x[0]), b.predict(&x[0]));
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = toy_data(100, 9);
        let model = DenseLogReg::train(&x, &y, &DenseConfig::default());
        for row in &x {
            let p = model.predict(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![true, true];
        DenseLogReg::train(&x, &y, &DenseConfig::default());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dims_panic() {
        let (x, y) = toy_data(50, 11);
        let model = DenseLogReg::train(&x, &y, &DenseConfig::default());
        model.predict(&[1.0]);
    }
}
