//! Text feature extraction: vocabulary, bag-of-words counts and TF-IDF.

use std::collections::HashMap;

/// Lowercased alphanumeric word tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// A fitted vocabulary mapping tokens to dense feature indices.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    index: HashMap<String, usize>,
    /// Document frequency per term (for IDF).
    doc_freq: Vec<usize>,
    /// Number of documents seen during fitting.
    n_docs: usize,
}

impl Vocabulary {
    /// Fits a vocabulary over a document collection, keeping terms that
    /// appear in at least `min_df` documents.
    pub fn fit<'a, I: IntoIterator<Item = &'a str>>(docs: I, min_df: usize) -> Vocabulary {
        let mut df: HashMap<String, usize> = HashMap::new();
        let mut n_docs = 0usize;
        for doc in docs {
            n_docs += 1;
            let mut seen: HashMap<String, ()> = HashMap::new();
            for tok in tokenize(doc) {
                seen.entry(tok).or_insert(());
            }
            for tok in seen.into_keys() {
                *df.entry(tok).or_insert(0) += 1;
            }
        }
        let mut terms: Vec<(String, usize)> = df
            .into_iter()
            .filter(|(_, c)| *c >= min_df.max(1))
            .collect();
        // Sort for deterministic index assignment.
        terms.sort();
        let mut index = HashMap::with_capacity(terms.len());
        let mut doc_freq = Vec::with_capacity(terms.len());
        for (i, (term, c)) in terms.into_iter().enumerate() {
            index.insert(term, i);
            doc_freq.push(c);
        }
        Vocabulary {
            index,
            doc_freq,
            n_docs,
        }
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no terms were kept.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Index of a term, if in vocabulary.
    pub fn term_index(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// Iterates `(term, index)` pairs (unordered).
    pub fn terms(&self) -> impl Iterator<Item = (&str, usize)> {
        self.index.iter().map(|(t, i)| (t.as_str(), *i))
    }

    /// Sparse raw term counts for a document: `(index, count)` pairs
    /// sorted by index. Out-of-vocabulary tokens are dropped.
    pub fn counts(&self, text: &str) -> Vec<(usize, f64)> {
        let mut acc: HashMap<usize, f64> = HashMap::new();
        for tok in tokenize(text) {
            if let Some(&i) = self.index.get(&tok) {
                *acc.entry(i).or_insert(0.0) += 1.0;
            }
        }
        let mut v: Vec<(usize, f64)> = acc.into_iter().collect();
        v.sort_by_key(|(i, _)| *i);
        v
    }

    /// Sparse TF-IDF vector, L2-normalized. TF is raw count; IDF is
    /// `ln((1 + N) / (1 + df)) + 1` (smoothed, sklearn-style).
    pub fn tfidf(&self, text: &str) -> Vec<(usize, f64)> {
        let mut v = self.counts(text);
        let n = self.n_docs as f64;
        let mut norm = 0.0;
        for (i, val) in &mut v {
            let idf = ((1.0 + n) / (1.0 + self.doc_freq[*i] as f64)).ln() + 1.0;
            *val *= idf;
            norm += *val * *val;
        }
        if norm > 0.0 {
            let norm = norm.sqrt();
            for (_, val) in &mut v {
                *val /= norm;
            }
        }
        v
    }
}

/// Sparse dot product of two index-sorted vectors.
pub fn sparse_dot(a: &[(usize, f64)], b: &[(usize, f64)]) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut sum = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                sum += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    sum
}

/// Cosine similarity of two sparse vectors (0 for zero vectors).
pub fn cosine(a: &[(usize, f64)], b: &[(usize, f64)]) -> f64 {
    let na: f64 = a.iter().map(|(_, v)| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|(_, v)| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    sparse_dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOCS: [&str; 4] = [
        "the committee approved the budget",
        "the committee rejected the amendment",
        "shocking scandal rocks the committee",
        "markets rally after budget approval",
    ];

    #[test]
    fn fit_and_lookup() {
        let v = Vocabulary::fit(DOCS, 1);
        assert!(v.len() > 5);
        assert!(v.term_index("committee").is_some());
        assert!(v.term_index("zebra").is_none());
    }

    #[test]
    fn min_df_filters_rare_terms() {
        let v = Vocabulary::fit(DOCS, 2);
        assert!(v.term_index("committee").is_some()); // appears in 3 docs
        assert!(v.term_index("scandal").is_none()); // appears in 1 doc
    }

    #[test]
    fn counts_are_sorted_and_correct() {
        let v = Vocabulary::fit(DOCS, 1);
        let c = v.counts("the committee and the committee");
        assert!(c.windows(2).all(|w| w[0].0 < w[1].0));
        let committee = v.term_index("committee").unwrap();
        let the = v.term_index("the").unwrap();
        assert!(c.contains(&(committee, 2.0)));
        assert!(c.contains(&(the, 2.0)));
        // "and" may be oov if absent from training docs.
    }

    #[test]
    fn tfidf_is_normalized() {
        let v = Vocabulary::fit(DOCS, 1);
        let t = v.tfidf(DOCS[0]);
        let norm: f64 = t.iter().map(|(_, x)| x * x).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tfidf_downweights_common_terms() {
        let v = Vocabulary::fit(DOCS, 1);
        let t = v.tfidf("the scandal");
        let the_idx = v.term_index("the").unwrap();
        let scandal_idx = v.term_index("scandal").unwrap();
        let get = |idx| t.iter().find(|(i, _)| *i == idx).map(|(_, x)| *x).unwrap();
        assert!(
            get(scandal_idx) > get(the_idx),
            "rare term should weigh more"
        );
    }

    #[test]
    fn empty_and_oov_documents() {
        let v = Vocabulary::fit(DOCS, 1);
        assert!(v.counts("").is_empty());
        assert!(v.tfidf("xylophone quartz").is_empty());
    }

    #[test]
    fn sparse_ops() {
        let a = vec![(0, 1.0), (2, 2.0), (5, 3.0)];
        let b = vec![(2, 4.0), (5, 1.0), (9, 7.0)];
        assert!((sparse_dot(&a, &b) - 11.0).abs() < 1e-12);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&a, &[]), 0.0);
        // Orthogonal.
        assert_eq!(sparse_dot(&[(0, 1.0)], &[(1, 1.0)]), 0.0);
    }
}
