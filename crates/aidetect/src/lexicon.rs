//! Emotion/sensationalism lexicon features.
//!
//! "The content of the news is often easy to carry personal emotions and
//! intentions, using the words of negative emotions" (§I). This module
//! scores a document on hand-built lexicons (negative emotion,
//! sensationalism, clickbait phrasing, hedging-by-anonymous-sourcing) plus
//! stylometric signals — the transparent, feature-based detector the
//! paper's cited WVU system pairs with its score.

use crate::features::tokenize;

/// Negative-emotion and outrage vocabulary.
pub const NEGATIVE_EMOTION: [&str; 24] = [
    "shocking",
    "outrageous",
    "disgraceful",
    "terrifying",
    "furious",
    "corrupt",
    "scandal",
    "betrayal",
    "destroy",
    "disaster",
    "horrifying",
    "evil",
    "catastrophe",
    "fraud",
    "lie",
    "lies",
    "liar",
    "crooked",
    "sick",
    "disgusting",
    "nightmare",
    "chaos",
    "traitor",
    "rigged",
];

/// Unverifiable-sourcing and conspiracy phrasing.
pub const CONSPIRACY: [&str; 16] = [
    "anonymous",
    "insiders",
    "whistleblower",
    "leaked",
    "secret",
    "hidden",
    "coverup",
    "suppressed",
    "censors",
    "censored",
    "elites",
    "allegedly",
    "unnamed",
    "underground",
    "plot",
    "hoax",
];

/// Clickbait / urgency phrasing.
pub const CLICKBAIT: [&str; 12] = [
    "share",
    "viral",
    "unbelievable",
    "believe",
    "exposed",
    "revealed",
    "must",
    "urgent",
    "breaking",
    "wow",
    "deleted",
    "banned",
];

/// Lexicon-derived feature vector for one document.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LexiconFeatures {
    /// Negative-emotion hits per 100 tokens.
    pub negative_rate: f64,
    /// Conspiracy-sourcing hits per 100 tokens.
    pub conspiracy_rate: f64,
    /// Clickbait hits per 100 tokens.
    pub clickbait_rate: f64,
    /// Exclamation marks per sentence-ish unit.
    pub exclamation_rate: f64,
    /// Fraction of fully upper-case words (length ≥ 3).
    pub allcaps_fraction: f64,
    /// Token count.
    pub tokens: usize,
}

impl LexiconFeatures {
    /// Extracts features from raw text.
    pub fn extract(text: &str) -> LexiconFeatures {
        let tokens = tokenize(text);
        let n = tokens.len();
        if n == 0 {
            return LexiconFeatures::default();
        }
        let count_in =
            |bank: &[&str]| tokens.iter().filter(|t| bank.contains(&t.as_str())).count() as f64;
        let per100 = |c: f64| c * 100.0 / n as f64;

        let sentences = text
            .split(['.', '!', '?'])
            .filter(|s| !s.trim().is_empty())
            .count();
        let exclamations = text.matches('!').count();
        let words: Vec<&str> = text.split_whitespace().collect();
        let caps = words
            .iter()
            .filter(|w| {
                let letters: Vec<char> = w.chars().filter(|c| c.is_alphabetic()).collect();
                letters.len() >= 3 && letters.iter().all(|c| c.is_uppercase())
            })
            .count();

        LexiconFeatures {
            negative_rate: per100(count_in(&NEGATIVE_EMOTION)),
            conspiracy_rate: per100(count_in(&CONSPIRACY)),
            clickbait_rate: per100(count_in(&CLICKBAIT)),
            exclamation_rate: exclamations as f64 / sentences.max(1) as f64,
            allcaps_fraction: if words.is_empty() {
                0.0
            } else {
                caps as f64 / words.len() as f64
            },
            tokens: n,
        }
    }

    /// A heuristic 0–1 fake-likelihood from the lexicon rates alone
    /// (logistic squash of a weighted sum). Useful as a no-training
    /// baseline and as an ensemble feature.
    pub fn heuristic_score(&self) -> f64 {
        let z = -2.0
            + 0.55 * self.negative_rate
            + 0.55 * self.conspiracy_rate
            + 0.35 * self.clickbait_rate
            + 1.2 * self.exclamation_rate
            + 3.0 * self.allcaps_fraction;
        1.0 / (1.0 + (-z).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FACTUAL: &str = "The committee approved the amendment under docket 4121. \
        The full transcript is in the public register.";
    const FAKE: &str = "SHOCKING corrupt scandal EXPOSED by anonymous insiders! \
        Leaked secret memo reveals the terrifying lie! Share before it is deleted!";

    #[test]
    fn rates_separate_fake_from_factual() {
        let f = LexiconFeatures::extract(FACTUAL);
        let k = LexiconFeatures::extract(FAKE);
        assert!(k.negative_rate > f.negative_rate);
        assert!(k.conspiracy_rate > f.conspiracy_rate);
        assert!(k.exclamation_rate > f.exclamation_rate);
        assert!(k.allcaps_fraction > f.allcaps_fraction);
    }

    #[test]
    fn heuristic_score_orders_correctly() {
        let f = LexiconFeatures::extract(FACTUAL).heuristic_score();
        let k = LexiconFeatures::extract(FAKE).heuristic_score();
        assert!(k > 0.6, "fake score {k}");
        assert!(f < 0.4, "factual score {f}");
    }

    #[test]
    fn empty_text_is_neutral_default() {
        let e = LexiconFeatures::extract("");
        assert_eq!(e, LexiconFeatures::default());
        assert!(e.heuristic_score() < 0.5);
    }

    #[test]
    fn allcaps_ignores_short_tokens() {
        let f = LexiconFeatures::extract("US GDP is UP a bit");
        // "GDP" counts (3 letters); "US"/"UP" too short; "is"/"a"/"bit" lower.
        assert!((f.allcaps_fraction - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn rates_are_per_100_tokens() {
        let f = LexiconFeatures::extract("scandal scandal scandal scandal");
        assert_eq!(f.tokens, 4);
        assert!((f.negative_rate - 100.0).abs() < 1e-9);
    }
}
