//! Multinomial naive Bayes fake-news classifier.

use crate::corpus::LabeledDoc;
use crate::features::{tokenize, Vocabulary};

/// A trained multinomial naive Bayes model with Laplace smoothing.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    vocab: Vocabulary,
    /// log P(fake), log P(factual).
    log_prior: [f64; 2],
    /// Per-class log-likelihood per vocabulary index: `log_lik[class][term]`.
    log_lik: [Vec<f64>; 2],
}

const FAKE: usize = 0;
const FACT: usize = 1;

impl NaiveBayes {
    /// Trains on a labeled corpus.
    ///
    /// # Panics
    ///
    /// Panics if `docs` is empty or single-class.
    pub fn train(docs: &[LabeledDoc]) -> NaiveBayes {
        assert!(!docs.is_empty(), "training set must be nonempty");
        let n_fake = docs.iter().filter(|d| d.fake).count();
        let n_fact = docs.len() - n_fake;
        assert!(
            n_fake > 0 && n_fact > 0,
            "training set must contain both classes"
        );

        let vocab = Vocabulary::fit(docs.iter().map(|d| d.text.as_str()), 1);
        let v = vocab.len();
        let mut counts = [vec![0.0f64; v], vec![0.0f64; v]];
        let mut totals = [0.0f64; 2];
        for d in docs {
            let class = if d.fake { FAKE } else { FACT };
            for tok in tokenize(&d.text) {
                if let Some(i) = vocab.term_index(&tok) {
                    counts[class][i] += 1.0;
                    totals[class] += 1.0;
                }
            }
        }
        let mut log_lik = [vec![0.0f64; v], vec![0.0f64; v]];
        for class in [FAKE, FACT] {
            let denom = totals[class] + v as f64; // Laplace
            for i in 0..v {
                log_lik[class][i] = ((counts[class][i] + 1.0) / denom).ln();
            }
        }
        NaiveBayes {
            vocab,
            log_prior: [
                (n_fake as f64 / docs.len() as f64).ln(),
                (n_fact as f64 / docs.len() as f64).ln(),
            ],
            log_lik,
        }
    }

    /// Log-odds that `text` is fake: `log P(fake|x) − log P(factual|x)`.
    pub fn log_odds_fake(&self, text: &str) -> f64 {
        let mut scores = self.log_prior;
        for tok in tokenize(text) {
            if let Some(i) = self.vocab.term_index(&tok) {
                scores[FAKE] += self.log_lik[FAKE][i];
                scores[FACT] += self.log_lik[FACT][i];
            }
        }
        scores[FAKE] - scores[FACT]
    }

    /// Probability that `text` is fake (sigmoid of the log-odds).
    pub fn prob_fake(&self, text: &str) -> f64 {
        1.0 / (1.0 + (-self.log_odds_fake(text)).exp())
    }

    /// Hard prediction: true = fake.
    pub fn predict(&self, text: &str) -> bool {
        self.log_odds_fake(text) > 0.0
    }

    /// Vocabulary size (for inspection).
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_news_corpus, train_test_split, NewsCorpusConfig};
    use crate::metrics::evaluate;

    fn corpus() -> Vec<LabeledDoc> {
        generate_news_corpus(&NewsCorpusConfig {
            n_factual: 200,
            n_fake: 200,
            ..NewsCorpusConfig::default()
        })
    }

    #[test]
    fn learns_the_synthetic_corpus() {
        let (train, test) = train_test_split(&corpus(), 0.8);
        let nb = NaiveBayes::train(&train);
        let preds: Vec<(bool, f64)> = test
            .iter()
            .map(|d| (d.fake, nb.prob_fake(&d.text)))
            .collect();
        let m = evaluate(&preds, 0.5);
        assert!(m.accuracy > 0.85, "accuracy {}", m.accuracy);
        assert!(m.f1 > 0.85, "f1 {}", m.f1);
    }

    #[test]
    fn obvious_cases() {
        let nb = NaiveBayes::train(&corpus());
        assert!(
            nb.prob_fake(
                "Shocking corrupt scandal exposed by anonymous insiders, share before deleted"
            ) > 0.5
        );
        assert!(nb.prob_fake(
            "The committee approved the amendment under docket 1234. The full document is in the public record."
        ) < 0.5);
    }

    #[test]
    fn prob_is_sigmoid_of_log_odds() {
        let nb = NaiveBayes::train(&corpus());
        let t = "officials published the audited report";
        let lo = nb.log_odds_fake(t);
        let p = nb.prob_fake(t);
        assert!((p - 1.0 / (1.0 + (-lo).exp())).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn empty_text_falls_back_to_prior() {
        let docs = corpus();
        let nb = NaiveBayes::train(&docs);
        let n_fake = docs.iter().filter(|d| d.fake).count() as f64;
        let n_fact = docs.len() as f64 - n_fake;
        let expect = (n_fake / docs.len() as f64).ln() - (n_fact / docs.len() as f64).ln();
        assert!((nb.log_odds_fake("") - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_training_panics() {
        let docs = vec![LabeledDoc {
            text: "a".into(),
            fake: false,
            topic: "t".into(),
        }];
        NaiveBayes::train(&docs);
    }
}
