//! L2-regularized logistic regression trained with SGD on sparse TF-IDF
//! features — the linear stand-in for the paper's cited neural detectors
//! (TI-CNN \[11\]); see DESIGN.md for the substitution argument.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::corpus::LabeledDoc;
use crate::features::Vocabulary;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct LogRegConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate (decays as 1/(1+t·decay)).
    pub learning_rate: f64,
    /// Learning-rate decay factor.
    pub decay: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
    /// Minimum document frequency for vocabulary terms.
    pub min_df: usize,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            epochs: 30,
            learning_rate: 0.5,
            decay: 0.01,
            l2: 1e-4,
            seed: 1,
            min_df: 1,
        }
    }
}

/// A trained logistic-regression classifier (positive class = fake).
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    vocab: Vocabulary,
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Trains on a labeled corpus.
    ///
    /// # Panics
    ///
    /// Panics if `docs` is empty or single-class.
    pub fn train(docs: &[LabeledDoc], config: &LogRegConfig) -> LogisticRegression {
        assert!(!docs.is_empty(), "training set must be nonempty");
        let n_fake = docs.iter().filter(|d| d.fake).count();
        assert!(
            n_fake > 0 && n_fake < docs.len(),
            "training set must contain both classes"
        );
        let vocab = Vocabulary::fit(docs.iter().map(|d| d.text.as_str()), config.min_df);
        let features: Vec<(Vec<(usize, f64)>, f64)> = docs
            .iter()
            .map(|d| (vocab.tfidf(&d.text), if d.fake { 1.0 } else { 0.0 }))
            .collect();

        let mut weights = vec![0.0f64; vocab.len()];
        let mut bias = 0.0f64;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut t = 0.0f64;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let (x, y) = &features[idx];
                let lr = config.learning_rate / (1.0 + config.decay * t);
                t += 1.0;
                let z = bias + x.iter().map(|(i, v)| weights[*i] * v).sum::<f64>();
                let err = sigmoid(z) - y;
                for (i, v) in x {
                    weights[*i] -= lr * (err * v + config.l2 * weights[*i]);
                }
                bias -= lr * err;
            }
        }
        LogisticRegression {
            vocab,
            weights,
            bias,
        }
    }

    /// Probability that `text` is fake.
    pub fn prob_fake(&self, text: &str) -> f64 {
        let x = self.vocab.tfidf(text);
        let z = self.bias + x.iter().map(|(i, v)| self.weights[*i] * v).sum::<f64>();
        sigmoid(z)
    }

    /// Hard prediction at a 0.5 threshold.
    pub fn predict(&self, text: &str) -> bool {
        self.prob_fake(text) > 0.5
    }

    /// The highest-weight (most fake-indicative) terms — model
    /// transparency in the spirit of the paper's cited WVU system, which
    /// accompanies scores with explanations.
    pub fn top_fake_terms(&self, k: usize) -> Vec<(String, f64)> {
        let mut terms: Vec<(String, f64)> = Vec::new();
        // Reconstruct index → term once; Vocabulary only exposes lookup, so
        // scan weights through term_index by re-fitting is avoided: walk all
        // indices via the sorted weight list and match lazily.
        // (Vocabulary keeps its map private; expose via iteration here.)
        for (term, w) in self.vocab_terms() {
            terms.push((term, w));
        }
        terms.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        terms.truncate(k);
        terms
    }

    fn vocab_terms(&self) -> Vec<(String, f64)> {
        self.vocab
            .terms()
            .map(|(t, i)| (t.to_string(), self.weights[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_news_corpus, train_test_split, NewsCorpusConfig};
    use crate::metrics::evaluate;

    fn corpus() -> Vec<LabeledDoc> {
        generate_news_corpus(&NewsCorpusConfig {
            n_factual: 200,
            n_fake: 200,
            ..NewsCorpusConfig::default()
        })
    }

    #[test]
    fn learns_the_synthetic_corpus() {
        let (train, test) = train_test_split(&corpus(), 0.8);
        let lr = LogisticRegression::train(&train, &LogRegConfig::default());
        let preds: Vec<(bool, f64)> = test
            .iter()
            .map(|d| (d.fake, lr.prob_fake(&d.text)))
            .collect();
        let m = evaluate(&preds, 0.5);
        assert!(m.accuracy > 0.85, "accuracy {}", m.accuracy);
        assert!(m.auc > 0.9, "auc {}", m.auc);
    }

    #[test]
    fn training_is_deterministic() {
        let docs = corpus();
        let a = LogisticRegression::train(&docs, &LogRegConfig::default());
        let b = LogisticRegression::train(&docs, &LogRegConfig::default());
        let t = "the committee approved the shocking budget";
        assert!((a.prob_fake(t) - b.prob_fake(t)).abs() < 1e-12);
    }

    #[test]
    fn top_terms_are_emotional() {
        let lr = LogisticRegression::train(&corpus(), &LogRegConfig::default());
        let top: Vec<String> = lr.top_fake_terms(25).into_iter().map(|(t, _)| t).collect();
        let emotional = [
            "shocking",
            "corrupt",
            "scandal",
            "secret",
            "lie",
            "terrifying",
            "outrageous",
            "hidden",
            "anonymous",
            "insiders",
            "leaked",
        ];
        let hits = top
            .iter()
            .filter(|t| emotional.contains(&t.as_str()))
            .count();
        assert!(
            hits >= 3,
            "expected emotional terms among top weights, got {top:?}"
        );
    }

    #[test]
    fn probabilities_bounded() {
        let lr = LogisticRegression::train(&corpus(), &LogRegConfig::default());
        for t in [
            "",
            "committee",
            "shocking scandal lies exposed",
            "zebra quartz",
        ] {
            let p = lr.prob_fake(t);
            assert!((0.0..=1.0).contains(&p), "p={p} for {t:?}");
        }
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let docs = vec![
            LabeledDoc {
                text: "a b".into(),
                fake: true,
                topic: "t".into(),
            },
            LabeledDoc {
                text: "c d".into(),
                fake: true,
                topic: "t".into(),
            },
        ];
        LogisticRegression::train(&docs, &LogRegConfig::default());
    }
}
