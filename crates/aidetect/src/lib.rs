//! # tn-aidetect
//!
//! The AI side of the platform: fake-text detection, stance detection and
//! fake-multimedia (deepfake) detection, plus the synthetic labeled corpus
//! and evaluation metrics the E4/E8 experiments run on.
//!
//! The paper's architecture (Figure 1) has dedicated components for "fake
//! text detection" and "fake multimedia detection" driven by AI
//! algorithms. The cited detectors are deep models on real corpora; per
//! DESIGN.md we substitute transparent, from-scratch models exercising the
//! identical platform interface (a probability-of-fake per item):
//!
//! - [`features`]: tokenizer, vocabulary, TF-IDF, sparse-vector math.
//! - [`corpus`]: labeled synthetic news corpus with the paper's cited
//!   structure (72.3 % of fakes are modified factual articles carrying
//!   negative-emotion wording).
//! - [`naive_bayes`] and [`logreg`]: the learned text classifiers.
//! - [`lexicon`]: emotion/sensationalism/clickbait features and a
//!   no-training heuristic score.
//! - [`stance`]: Fake-News-Challenge-style headline/body stance detection.
//! - [`ensemble`]: the blended detector the platform consumes.
//! - [`media`]: synthetic video, deepfake-style region tampering, and two
//!   tamper detectors (temporal anomaly, provenance fingerprints).
//! - [`metrics`]: accuracy, precision, recall, F1 and ROC-AUC.
//!
//! # Example
//!
//! ```
//! use tn_aidetect::corpus::{generate_news_corpus, train_test_split, NewsCorpusConfig};
//! use tn_aidetect::ensemble::{EnsembleDetector, EnsembleWeights};
//!
//! let corpus = generate_news_corpus(&NewsCorpusConfig::default());
//! let (train, test) = train_test_split(&corpus, 0.8);
//! let det = EnsembleDetector::train(&train, EnsembleWeights::default());
//! let p = det.prob_fake(&test[0].text);
//! assert!((0.0..=1.0).contains(&p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod dense;
pub mod ensemble;
pub mod features;
pub mod lexicon;
pub mod logreg;
pub mod media;
pub mod metrics;
pub mod naive_bayes;
pub mod stance;

pub use corpus::{generate_news_corpus, train_test_split, LabeledDoc, NewsCorpusConfig};
pub use dense::{DenseConfig, DenseLogReg};
pub use ensemble::{EnsembleDetector, EnsembleWeights};
pub use logreg::{LogRegConfig, LogisticRegression};
pub use metrics::{evaluate, roc_auc, roc_curve, Metrics};
pub use naive_bayes::NaiveBayes;
pub use stance::{detect_stance, Stance, StanceConfig};
