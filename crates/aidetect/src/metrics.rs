//! Binary-classification evaluation metrics.

/// Confusion counts and derived metrics at a fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// True positives (fake predicted fake).
    pub tp: usize,
    /// False positives (factual predicted fake).
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
    /// (tp + tn) / total.
    pub accuracy: f64,
    /// tp / (tp + fp); 0 when undefined.
    pub precision: f64,
    /// tp / (tp + fn); 0 when undefined.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when undefined.
    pub f1: f64,
    /// Area under the ROC curve (threshold-free).
    pub auc: f64,
}

/// Evaluates `(label, score)` pairs — `label` true means fake, `score` is
/// the predicted probability of fake — at `threshold`, plus ROC-AUC.
///
/// # Panics
///
/// Panics if `preds` is empty.
pub fn evaluate(preds: &[(bool, f64)], threshold: f64) -> Metrics {
    assert!(!preds.is_empty(), "cannot evaluate an empty prediction set");
    let (mut tp, mut fp, mut tn, mut fn_) = (0usize, 0usize, 0usize, 0usize);
    for &(label, score) in preds {
        let positive = score > threshold;
        match (label, positive) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (false, false) => tn += 1,
            (true, false) => fn_ += 1,
        }
    }
    let total = preds.len() as f64;
    let accuracy = (tp + tn) as f64 / total;
    let precision = if tp + fp > 0 {
        tp as f64 / (tp + fp) as f64
    } else {
        0.0
    };
    let recall = if tp + fn_ > 0 {
        tp as f64 / (tp + fn_) as f64
    } else {
        0.0
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    Metrics {
        tp,
        fp,
        tn,
        fn_,
        accuracy,
        precision,
        recall,
        f1,
        auc: roc_auc(preds),
    }
}

/// ROC-AUC via the rank-sum (Mann–Whitney) formulation, with tie
/// correction. Returns 0.5 when one class is absent.
pub fn roc_auc(preds: &[(bool, f64)]) -> f64 {
    let n_pos = preds.iter().filter(|(l, _)| *l).count();
    let n_neg = preds.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Average ranks of scores.
    let mut idx: Vec<usize> = (0..preds.len()).collect();
    idx.sort_by(|&a, &b| {
        preds[a]
            .1
            .partial_cmp(&preds[b].1)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0f64; preds.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && (preds[idx[j + 1]].1 - preds[idx[i]].1).abs() < 1e-15 {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = preds
        .iter()
        .zip(&ranks)
        .filter(|((l, _), _)| *l)
        .map(|(_, r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos as f64 * (n_pos as f64 + 1.0)) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Points of the ROC curve `(false-positive rate, true-positive rate)` at
/// each distinct threshold, from (0,0) to (1,1).
pub fn roc_curve(preds: &[(bool, f64)]) -> Vec<(f64, f64)> {
    let n_pos = preds.iter().filter(|(l, _)| *l).count();
    let n_neg = preds.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return vec![(0.0, 0.0), (1.0, 1.0)];
    }
    let mut sorted: Vec<&(bool, f64)> = preds.iter().collect();
    sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut curve = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < sorted.len() {
        let score = sorted[i].1;
        while i < sorted.len() && (sorted[i].1 - score).abs() < 1e-15 {
            if sorted[i].0 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push((fp as f64 / n_neg as f64, tp as f64 / n_pos as f64));
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let preds = vec![(true, 0.9), (true, 0.8), (false, 0.2), (false, 0.1)];
        let m = evaluate(&preds, 0.5);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (2, 0, 2, 0));
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.auc, 1.0);
    }

    #[test]
    fn inverted_classifier() {
        let preds = vec![(true, 0.1), (false, 0.9)];
        let m = evaluate(&preds, 0.5);
        assert_eq!(m.accuracy, 0.0);
        assert_eq!(m.auc, 0.0);
    }

    #[test]
    fn random_scores_auc_half() {
        // Symmetric construction: every positive ties with a negative.
        let preds = vec![(true, 0.5), (false, 0.5), (true, 0.3), (false, 0.3)];
        assert!((roc_auc(&preds) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_auc_is_half() {
        assert_eq!(roc_auc(&[(true, 0.9), (true, 0.1)]), 0.5);
    }

    #[test]
    fn precision_recall_arithmetic() {
        // tp=1 (0.9), fp=1 (0.8), fn=1 (0.3), tn=1 (0.2)
        let preds = vec![(true, 0.9), (false, 0.8), (true, 0.3), (false, 0.2)];
        let m = evaluate(&preds, 0.5);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (1, 1, 1, 1));
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!((m.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roc_curve_endpoints_and_monotonic() {
        let preds = vec![(true, 0.9), (false, 0.8), (true, 0.7), (false, 0.1)];
        let curve = roc_curve(&preds);
        assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.last(), Some(&(1.0, 1.0)));
        for w in curve.windows(2) {
            assert!(
                w[1].0 >= w[0].0 && w[1].1 >= w[0].1,
                "non-monotonic: {curve:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty prediction set")]
    fn empty_panics() {
        evaluate(&[], 0.5);
    }
}
