//! Headline/body stance detection, after the Fake News Challenge \[33\].
//!
//! "Fake News Challenge starts with a stance detection process that
//! examines the perspective of news articles and compares them with other
//! reports. It can detect if the two headlines are consistent or
//! contradictory" (§II). This detector classifies a (headline, body) pair
//! as agree / disagree / discuss / unrelated from lexical overlap and
//! negation/refutation cues.

use std::collections::HashSet;

use crate::features::tokenize;

/// Stance of a body text relative to a headline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stance {
    /// Body supports the headline.
    Agree,
    /// Body contradicts or refutes the headline.
    Disagree,
    /// Body is on-topic but takes no position.
    Discuss,
    /// Body is about something else entirely.
    Unrelated,
}

/// Refutation / negation cue words.
const REFUTATION: [&str; 14] = [
    "not", "no", "never", "false", "fake", "hoax", "denies", "denied", "deny", "debunked",
    "refuted", "wrong", "untrue", "disputed",
];

/// Supporting cue words.
const SUPPORT: [&str; 10] = [
    "confirmed",
    "confirms",
    "verified",
    "official",
    "announced",
    "approved",
    "signed",
    "passed",
    "published",
    "ratified",
];

/// Tunable thresholds for the stance rules.
#[derive(Debug, Clone, Copy)]
pub struct StanceConfig {
    /// Jaccard overlap below which the pair is `Unrelated`.
    pub unrelated_below: f64,
    /// Refutation-cue density (per 100 tokens) above which the pair is
    /// `Disagree`.
    pub refute_density: f64,
    /// Support-cue count at or above which the pair is `Agree`.
    pub support_cues: usize,
}

impl Default for StanceConfig {
    fn default() -> Self {
        StanceConfig {
            unrelated_below: 0.05,
            refute_density: 1.0,
            support_cues: 1,
        }
    }
}

/// Token-set Jaccard overlap between headline and body.
pub fn overlap(headline: &str, body: &str) -> f64 {
    let h: HashSet<String> = tokenize(headline).into_iter().collect();
    let b: HashSet<String> = tokenize(body).into_iter().collect();
    if h.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = h.intersection(&b).count();
    inter as f64 / h.union(&b).count() as f64
}

/// Classifies the stance of `body` toward `headline`.
pub fn detect_stance(headline: &str, body: &str, config: &StanceConfig) -> Stance {
    let ov = overlap(headline, body);
    if ov < config.unrelated_below {
        return Stance::Unrelated;
    }
    let body_tokens = tokenize(body);
    let n = body_tokens.len().max(1);
    let refutes = body_tokens
        .iter()
        .filter(|t| REFUTATION.contains(&t.as_str()))
        .count();
    let supports = body_tokens
        .iter()
        .filter(|t| SUPPORT.contains(&t.as_str()))
        .count();
    let refute_density = refutes as f64 * 100.0 / n as f64;
    if refute_density >= config.refute_density && refutes > supports {
        Stance::Disagree
    } else if supports >= config.support_cues {
        Stance::Agree
    } else {
        Stance::Discuss
    }
}

/// A fake-likelihood signal from stance: headlines whose own body
/// disagrees with them, or that are unrelated to their body, are
/// suspicious; corroborated (agree) pairs are not.
pub fn stance_score(stance: Stance) -> f64 {
    match stance {
        Stance::Agree => 0.15,
        Stance::Discuss => 0.45,
        Stance::Disagree => 0.85,
        Stance::Unrelated => 0.7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADLINE: &str = "Committee approves solar subsidy amendment";

    #[test]
    fn agree_case() {
        let body = "The committee officially approved the solar subsidy amendment; \
                    the result was confirmed and published the same day.";
        assert_eq!(
            detect_stance(HEADLINE, body, &StanceConfig::default()),
            Stance::Agree
        );
    }

    #[test]
    fn disagree_case() {
        let body = "Reports that the committee approved the solar subsidy amendment are false. \
                    The chair denied the claim and called it a hoax, not a decision.";
        assert_eq!(
            detect_stance(HEADLINE, body, &StanceConfig::default()),
            Stance::Disagree
        );
    }

    #[test]
    fn unrelated_case() {
        let body = "Penguins waddle across frozen shores while whales sing offshore.";
        assert_eq!(
            detect_stance(HEADLINE, body, &StanceConfig::default()),
            Stance::Unrelated
        );
    }

    #[test]
    fn discuss_case() {
        let body = "The solar subsidy amendment has been debated by the committee for weeks; \
                    analysts expect a decision on the subsidy question soon.";
        assert_eq!(
            detect_stance(HEADLINE, body, &StanceConfig::default()),
            Stance::Discuss
        );
    }

    #[test]
    fn overlap_bounds() {
        assert_eq!(overlap("", "anything"), 0.0);
        assert!((overlap("a b c", "a b c") - 1.0).abs() < 1e-12);
        let o = overlap(HEADLINE, "committee subsidy talk");
        assert!(o > 0.0 && o < 1.0);
    }

    #[test]
    fn stance_scores_ordered() {
        assert!(stance_score(Stance::Agree) < stance_score(Stance::Discuss));
        assert!(stance_score(Stance::Discuss) < stance_score(Stance::Unrelated));
        assert!(stance_score(Stance::Unrelated) < stance_score(Stance::Disagree));
    }
}
