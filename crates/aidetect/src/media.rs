//! Fake-multimedia (deepfake) detection on synthetic media.
//!
//! The paper's component 2 is "fake multimedia detection … us\[ing\] AI
//! algorithms to detect the tampering of multimedia materials" (§IV),
//! motivated by Face2Face/FakeApp-style reenactment. Real video forensics
//! needs real footage; the platform, however, only consumes a *tamper
//! score per media item*, so we reproduce the component on synthetic
//! video: smoothly evolving luma frames, a deepfake-style localized
//! region swap sustained over a frame range, and two detectors —
//!
//! 1. **temporal anomaly**: per-block perceptual-hash discontinuity between
//!    consecutive frames (tamper boundaries create spikes);
//! 2. **provenance fingerprint**: Hamming mismatch against the original's
//!    perceptual-hash chain registered on the platform (the blockchain
//!    angle: originals anchor their fingerprints at publication).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Frame width and height (pixels).
pub const FRAME_DIM: usize = 32;

/// One grayscale frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Row-major luma values.
    pub pixels: Vec<u8>,
}

impl Frame {
    fn idx(x: usize, y: usize) -> usize {
        y * FRAME_DIM + x
    }
}

/// A synthetic video: a sequence of frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Video {
    /// The frames.
    pub frames: Vec<Frame>,
}

/// Generates a smooth synthetic video: a low-frequency random field that
/// drifts slowly frame to frame (like a static camera scene).
pub fn generate_video(n_frames: usize, seed: u64) -> Video {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut base: Vec<i32> = (0..FRAME_DIM * FRAME_DIM)
        .map(|_| rng.gen_range(64..192))
        .collect();
    // Smooth the base with a box blur for spatial coherence.
    base = blur(&base);
    let mut frames = Vec::with_capacity(n_frames);
    for _ in 0..n_frames {
        // Small temporal drift.
        for v in &mut base {
            *v = (*v + rng.gen_range(-3..=3)).clamp(0, 255);
        }
        let smoothed = blur(&base);
        frames.push(Frame {
            pixels: smoothed.iter().map(|&v| v as u8).collect(),
        });
    }
    Video { frames }
}

fn blur(src: &[i32]) -> Vec<i32> {
    let mut out = vec![0i32; src.len()];
    for y in 0..FRAME_DIM {
        for x in 0..FRAME_DIM {
            let mut sum = 0;
            let mut count = 0;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let nx = x as i32 + dx;
                    let ny = y as i32 + dy;
                    if (0..FRAME_DIM as i32).contains(&nx) && (0..FRAME_DIM as i32).contains(&ny) {
                        sum += src[Frame::idx(nx as usize, ny as usize)];
                        count += 1;
                    }
                }
            }
            out[Frame::idx(x, y)] = sum / count;
        }
    }
    out
}

/// Deepfake-style tamper description.
#[derive(Debug, Clone, Copy)]
pub struct Tamper {
    /// First tampered frame (inclusive).
    pub start_frame: usize,
    /// Last tampered frame (exclusive).
    pub end_frame: usize,
    /// Top-left corner of the swapped region.
    pub region: (usize, usize),
    /// Region size (square side).
    pub size: usize,
    /// Blend intensity in `[0, 1]`: 0 = invisible, 1 = full replacement.
    pub intensity: f64,
}

/// Applies a region swap from `donor` into `video` per `tamper`,
/// returning the tampered copy.
///
/// # Panics
///
/// Panics if the region or frame range is out of bounds.
pub fn apply_tamper(video: &Video, donor: &Video, tamper: &Tamper) -> Video {
    assert!(
        tamper.end_frame <= video.frames.len(),
        "frame range out of bounds"
    );
    assert!(tamper.start_frame < tamper.end_frame, "empty tamper range");
    assert!(
        tamper.region.0 + tamper.size <= FRAME_DIM && tamper.region.1 + tamper.size <= FRAME_DIM,
        "region out of bounds"
    );
    let mut out = video.clone();
    for f in tamper.start_frame..tamper.end_frame {
        let donor_frame = &donor.frames[f % donor.frames.len()];
        let frame = &mut out.frames[f];
        for y in tamper.region.1..tamper.region.1 + tamper.size {
            for x in tamper.region.0..tamper.region.0 + tamper.size {
                let i = Frame::idx(x, y);
                let orig = frame.pixels[i] as f64;
                let don = donor_frame.pixels[i] as f64;
                frame.pixels[i] =
                    (orig * (1.0 - tamper.intensity) + don * tamper.intensity).round() as u8;
            }
        }
    }
    out
}

/// Simulates a lossy re-encode of a video (what an honest re-upload goes
/// through): every pixel drifts by up to `noise` luma steps. Forensics
/// must distinguish this benign noise from actual tampering.
pub fn reencode(video: &Video, noise: i32, seed: u64) -> Video {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = video.clone();
    for frame in &mut out.frames {
        for p in &mut frame.pixels {
            let v = *p as i32 + rng.gen_range(-noise..=noise);
            *p = v.clamp(0, 255) as u8;
        }
    }
    out
}

/// Per-block (8×8 grid of 4×4-pixel blocks… here: 4×4 grid of 8×8 blocks)
/// average-hash fingerprint of one frame: one bit per pixel-vs-block-mean,
/// one u64 per block.
pub fn block_fingerprints(frame: &Frame) -> Vec<u64> {
    const BLOCKS: usize = 4; // 4×4 grid of 8×8 blocks
    const BS: usize = FRAME_DIM / BLOCKS;
    let mut out = Vec::with_capacity(BLOCKS * BLOCKS);
    for by in 0..BLOCKS {
        for bx in 0..BLOCKS {
            let mut sum = 0u32;
            for y in 0..BS {
                for x in 0..BS {
                    sum += frame.pixels[Frame::idx(bx * BS + x, by * BS + y)] as u32;
                }
            }
            let mean = sum / (BS * BS) as u32;
            let mut bits = 0u64;
            // Sample the 8×8 block at every pixel → 64 bits exactly.
            let mut bit = 0;
            for y in 0..BS {
                for x in 0..BS {
                    if (frame.pixels[Frame::idx(bx * BS + x, by * BS + y)] as u32) > mean {
                        bits |= 1 << bit;
                    }
                    bit += 1;
                }
            }
            out.push(bits);
        }
    }
    out
}

/// Hamming distance between two fingerprints of equal length, in bits.
pub fn hamming(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "fingerprint lengths differ");
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// Temporal-anomaly tamper score in `[0, 1]`: the largest whole-frame
/// fingerprint jump between consecutive frames, normalized by the video's
/// own 95th-percentile jump. Natural drift keeps the maximum close to the
/// p95 (ratio ≈ 1); a tamper boundary rewrites several blocks at once and
/// pushes the ratio to 3–5.
pub fn temporal_anomaly_score(video: &Video) -> f64 {
    if video.frames.len() < 3 {
        return 0.0;
    }
    let prints: Vec<Vec<u64>> = video.frames.iter().map(block_fingerprints).collect();
    let mut jumps: Vec<u32> = prints.windows(2).map(|w| hamming(&w[0], &w[1])).collect();
    let max_jump = *jumps.iter().max().expect("nonempty");
    jumps.sort_unstable();
    let p95 = jumps[(jumps.len() * 95 / 100).min(jumps.len() - 1)].max(1);
    let ratio = max_jump as f64 / p95 as f64;
    1.0 - (-0.7 * (ratio - 1.0).max(0.0)).exp()
}

/// Provenance-fingerprint mismatch score in `[0, 1]`: mean normalized
/// Hamming distance between the suspect's per-frame fingerprints and the
/// original's registered chain.
///
/// # Panics
///
/// Panics if the videos have different frame counts.
pub fn fingerprint_mismatch_score(original: &Video, suspect: &Video) -> f64 {
    assert_eq!(
        original.frames.len(),
        suspect.frames.len(),
        "fingerprint chains must cover the same frames"
    );
    if original.frames.is_empty() {
        return 0.0;
    }
    let mut total_bits = 0u32;
    let mut diff_bits = 0u32;
    for (a, b) in original.frames.iter().zip(&suspect.frames) {
        let fa = block_fingerprints(a);
        let fb = block_fingerprints(b);
        diff_bits += hamming(&fa, &fb);
        total_bits += (fa.len() * 64) as u32;
    }
    diff_bits as f64 / total_bits as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tamper(intensity: f64) -> Tamper {
        Tamper {
            start_frame: 20,
            end_frame: 40,
            region: (8, 8),
            size: 16,
            intensity,
        }
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = generate_video(10, 5);
        let b = generate_video(10, 5);
        assert_eq!(a, b);
        assert_eq!(a.frames.len(), 10);
        assert_eq!(a.frames[0].pixels.len(), FRAME_DIM * FRAME_DIM);
    }

    #[test]
    fn fingerprints_stable_for_identical_frames() {
        let v = generate_video(3, 1);
        let f1 = block_fingerprints(&v.frames[0]);
        let f2 = block_fingerprints(&v.frames[0]);
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), 16);
        assert_eq!(hamming(&f1, &f2), 0);
    }

    #[test]
    fn untampered_video_scores_low() {
        let v = generate_video(60, 7);
        let s = temporal_anomaly_score(&v);
        assert!(s < 0.5, "clean video anomaly {s}");
        assert!(fingerprint_mismatch_score(&v, &v) < 1e-12);
    }

    #[test]
    fn strong_tamper_scores_high() {
        let v = generate_video(60, 7);
        let donor = generate_video(60, 999);
        let t = apply_tamper(&v, &donor, &tamper(1.0));
        assert!(
            temporal_anomaly_score(&t) > temporal_anomaly_score(&v) + 0.2,
            "tamper should raise the anomaly score"
        );
        assert!(fingerprint_mismatch_score(&v, &t) > 0.01);
    }

    #[test]
    fn mismatch_grows_with_intensity() {
        let v = generate_video(60, 7);
        let donor = generate_video(60, 999);
        let weak = fingerprint_mismatch_score(&v, &apply_tamper(&v, &donor, &tamper(0.3)));
        let strong = fingerprint_mismatch_score(&v, &apply_tamper(&v, &donor, &tamper(1.0)));
        assert!(strong > weak, "strong {strong} vs weak {weak}");
    }

    #[test]
    fn detectors_separate_classes_roc() {
        use crate::metrics::roc_auc;
        let mut preds = Vec::new();
        for seed in 0..12u64 {
            let v = generate_video(40, seed);
            let donor = generate_video(40, seed + 1000);
            let t = apply_tamper(
                &v,
                &donor,
                &Tamper {
                    start_frame: 10,
                    end_frame: 25,
                    region: (4, 4),
                    size: 16,
                    intensity: 0.9,
                },
            );
            preds.push((false, fingerprint_mismatch_score(&v, &v)));
            preds.push((true, fingerprint_mismatch_score(&v, &t)));
        }
        let auc = roc_auc(&preds);
        assert!(auc > 0.95, "auc {auc}");
    }

    #[test]
    #[should_panic(expected = "region out of bounds")]
    fn oob_region_panics() {
        let v = generate_video(5, 1);
        let donor = generate_video(5, 2);
        apply_tamper(
            &v,
            &donor,
            &Tamper {
                start_frame: 0,
                end_frame: 1,
                region: (30, 30),
                size: 16,
                intensity: 1.0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "chains must cover the same frames")]
    fn mismatched_lengths_panic() {
        let a = generate_video(5, 1);
        let b = generate_video(6, 1);
        fingerprint_mismatch_score(&a, &b);
    }

    #[test]
    fn reencode_adds_bounded_noise() {
        let v = generate_video(10, 4);
        let r = reencode(&v, 3, 9);
        assert_ne!(r, v);
        assert_eq!(reencode(&v, 3, 9), r, "deterministic");
        // Mismatch from re-encoding is small compared to real tampering.
        let benign = fingerprint_mismatch_score(&v, &r);
        let donor = generate_video(10, 4000);
        let t = apply_tamper(
            &v,
            &donor,
            &Tamper {
                start_frame: 2,
                end_frame: 8,
                region: (8, 8),
                size: 16,
                intensity: 1.0,
            },
        );
        let malicious = fingerprint_mismatch_score(&v, &reencode(&t, 3, 9));
        assert!(
            benign < malicious,
            "benign {benign} vs malicious {malicious}"
        );
    }

    #[test]
    fn short_videos_score_zero_anomaly() {
        let v = generate_video(2, 3);
        assert_eq!(temporal_anomaly_score(&v), 0.0);
    }
}
