//! Labeled synthetic news corpus for training and evaluating detectors.
//!
//! Structure follows the paper's citations: "72.3 % of the fake news is to
//! modify the news originated from the standard factual news … using the
//! words of negative emotions" (§I, citing Stanford work). Accordingly,
//! fake documents are mostly factual articles with emotionally loaded
//! insertions and a minority are whole-cloth fabrications; factual
//! documents are public-record articles, optionally lightly paraphrased.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use tn_factdb::corpus::{generate_corpus, CorpusConfig};
use tn_supplychain::ops::{apply, PropagationOp};

/// A labeled document.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledDoc {
    /// Article text.
    pub text: String,
    /// True when fake.
    pub fake: bool,
    /// Topic label (inherited from the source record where applicable).
    pub topic: String,
}

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct NewsCorpusConfig {
    /// Number of factual documents.
    pub n_factual: usize,
    /// Number of fake documents.
    pub n_fake: usize,
    /// Fraction of fakes that are *modified factual* articles (the rest
    /// are fabricated from templates). Paper statistic: 0.723.
    pub modified_fraction: f64,
    /// Fraction of modified fakes written *subtly*: a single mild,
    /// insinuating sentence instead of overt emotional loading. Subtle
    /// fakes are genuinely hard for content-only detectors — the regime
    /// where the paper argues provenance must carry the load.
    pub subtlety: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NewsCorpusConfig {
    fn default() -> Self {
        NewsCorpusConfig {
            n_factual: 300,
            n_fake: 300,
            modified_fraction: 0.723,
            subtlety: 0.0,
            seed: 7,
        }
    }
}

const FABRICATION_OPENERS: [&str; 6] = [
    "You will not believe what leaked tonight",
    "The shocking truth they are hiding from you",
    "Insiders reveal a terrifying secret plan",
    "This scandal will destroy everything you trusted",
    "Anonymous sources expose the outrageous lie",
    "The disgraceful cover-up nobody dares report",
];

/// Mild, insinuating sentences used by subtle fakes: no emotional
/// vocabulary, just unverifiable doubt.
const SUBTLE_INJECTIONS: [&str; 6] = [
    "Some commentators questioned the official account of events.",
    "Observers noted the timing raised further questions.",
    "Several posts suggested the figures may be incomplete.",
    "A few analysts said the report leaves key points unaddressed.",
    "Readers pointed out earlier statements that appear to differ.",
    "It remains unclear whether the full record has been released.",
];

const FABRICATION_BODIES: [&str; 6] = [
    "Secret documents allegedly prove the numbers were faked for years.",
    "A hidden network of elites controls every decision, whistleblowers claim.",
    "The so-called experts were paid to bury the real report.",
    "Millions will suffer while corrupt officials laugh in private.",
    "Evidence is being deleted as you read this, insiders warn.",
    "Share this everywhere before the censors take it down.",
];

/// Generates the labeled corpus. Factual and fake documents are shuffled
/// together deterministically.
pub fn generate_news_corpus(config: &NewsCorpusConfig) -> Vec<LabeledDoc> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Source pool of factual articles (larger than n_factual so fakes can
    // modify articles not in the factual training set — harder, more
    // realistic).
    let pool = generate_corpus(&CorpusConfig {
        size: config.n_factual + config.n_fake,
        seed: config.seed ^ 0xfac7,
        start_time: 0,
    });
    let mut docs = Vec::with_capacity(config.n_factual + config.n_fake);

    // Factual docs: the record itself, sometimes lightly extended with a
    // neutral sentence, split, or — like real journalism — a quoted note
    // of criticism (so mild-doubt phrasing is NOT a label give-away).
    for rec in pool.iter().take(config.n_factual) {
        let roll: f64 = rng.gen();
        let text = if roll < 0.55 {
            rec.content.clone()
        } else if roll < 0.7 {
            apply(PropagationOp::Insert, &[&rec.content], false, &mut rng)
        } else if roll < 0.85 {
            apply(PropagationOp::Split, &[&rec.content], false, &mut rng)
        } else {
            let inj = *SUBTLE_INJECTIONS.choose(&mut rng).expect("nonempty");
            tn_supplychain::ops::insert(&rec.content, &[inj], &mut rng)
        };
        docs.push(LabeledDoc {
            text,
            fake: false,
            topic: rec.topic.clone(),
        });
    }

    // Fake docs.
    for i in 0..config.n_fake {
        let modified = rng.gen_bool(config.modified_fraction);
        if modified {
            let rec = &pool[config.n_factual + i];
            let text = if rng.gen_bool(config.subtlety.clamp(0.0, 1.0)) {
                let inj = *SUBTLE_INJECTIONS.choose(&mut rng).expect("nonempty");
                tn_supplychain::ops::insert(&rec.content, &[inj], &mut rng)
            } else {
                apply(PropagationOp::Insert, &[&rec.content], true, &mut rng)
            };
            docs.push(LabeledDoc {
                text,
                fake: true,
                topic: rec.topic.clone(),
            });
        } else {
            let opener = FABRICATION_OPENERS.choose(&mut rng).expect("nonempty");
            let b1 = FABRICATION_BODIES.choose(&mut rng).expect("nonempty");
            let b2 = FABRICATION_BODIES.choose(&mut rng).expect("nonempty");
            let topic = pool[config.n_factual + i].topic.clone();
            docs.push(LabeledDoc {
                text: format!("{opener} about {topic} tonight. {b1} {b2}"),
                fake: true,
                topic,
            });
        }
    }
    docs.shuffle(&mut rng);
    docs
}

/// Splits a corpus into `(train, test)` with the given train fraction.
///
/// # Panics
///
/// Panics unless `0.0 < train_fraction < 1.0`.
pub fn train_test_split(
    docs: &[LabeledDoc],
    train_fraction: f64,
) -> (Vec<LabeledDoc>, Vec<LabeledDoc>) {
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train fraction must be in (0, 1)"
    );
    let cut = ((docs.len() as f64) * train_fraction).round() as usize;
    let cut = cut.clamp(1, docs.len().saturating_sub(1));
    (docs[..cut].to_vec(), docs[cut..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_labels() {
        let c = generate_news_corpus(&NewsCorpusConfig {
            n_factual: 50,
            n_fake: 30,
            ..NewsCorpusConfig::default()
        });
        assert_eq!(c.len(), 80);
        assert_eq!(c.iter().filter(|d| d.fake).count(), 30);
    }

    #[test]
    fn deterministic() {
        let cfg = NewsCorpusConfig::default();
        assert_eq!(generate_news_corpus(&cfg), generate_news_corpus(&cfg));
    }

    #[test]
    fn fakes_carry_emotional_vocabulary() {
        let c = generate_news_corpus(&NewsCorpusConfig::default());
        let emo = [
            "shocking",
            "corrupt",
            "scandal",
            "secret",
            "terrifying",
            "outrageous",
            "lie",
        ];
        let hits = |d: &LabeledDoc| {
            let lower = d.text.to_lowercase();
            emo.iter().filter(|w| lower.contains(**w)).count()
        };
        let fake_mean: f64 = c
            .iter()
            .filter(|d| d.fake)
            .map(|d| hits(d) as f64)
            .sum::<f64>()
            / c.iter().filter(|d| d.fake).count() as f64;
        let fact_mean: f64 = c
            .iter()
            .filter(|d| !d.fake)
            .map(|d| hits(d) as f64)
            .sum::<f64>()
            / c.iter().filter(|d| !d.fake).count() as f64;
        assert!(
            fake_mean > fact_mean + 0.5,
            "fake {fake_mean} vs fact {fact_mean}"
        );
    }

    #[test]
    fn split_fractions() {
        let c = generate_news_corpus(&NewsCorpusConfig {
            n_factual: 60,
            n_fake: 40,
            ..NewsCorpusConfig::default()
        });
        let (tr, te) = train_test_split(&c, 0.8);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn bad_split_panics() {
        let c = generate_news_corpus(&NewsCorpusConfig {
            n_factual: 4,
            n_fake: 4,
            ..NewsCorpusConfig::default()
        });
        train_test_split(&c, 1.5);
    }
}
