#!/usr/bin/env bash
# Repository gate: formatting, lints, docs, tests. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

echo "== cargo test -q"
cargo test --workspace --offline -q

echo "== exp17 smoke (parallel verification pipeline)"
cargo run -q --release --offline -p tn-bench --bin exp17_parallel_verify -- --quick

echo "All checks passed."
