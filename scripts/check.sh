#!/usr/bin/env bash
# Repository gate: formatting, lints, docs, tests. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

echo "== cargo test -q"
cargo test --workspace --offline -q

echo "== exp17 smoke (parallel verification pipeline)"
cargo run -q --release --offline -p tn-bench --bin exp17_parallel_verify -- --quick

echo "== exp18 smoke (distributed tracing + Perfetto export)"
# The bin itself validates the exported JSON (well-formed, non-empty,
# spans from >= 3 replicas); double-check the artifact landed.
cargo run -q --release --offline -p tn-bench --bin exp18_trace_critical_path -- --quick
test -s results/e18_trace.json || { echo "missing results/e18_trace.json"; exit 1; }

echo "== exp19 smoke (fault-injection matrix)"
# The bin asserts the fault-tolerance invariants itself: ≤f crashes keep a
# quorum on one digest, a revived replica catches up, >f corrupt replicas
# are a detected divergence. --quick runs the core scenarios only and
# leaves results/e19.json untouched.
cargo run -q --release --offline -p tn-bench --bin exp19_fault_matrix -- --quick

echo "== exp20 smoke (durable storage: kill-and-restart recovery)"
# Runs entirely in a temp dir (removed on exit) and writes no artifacts;
# the bin asserts exact digest recovery, tail-bounded replay, and that
# recovery time scales with blocks-since-checkpoint, not chain length.
cargo run -q --release --offline -p tn-bench --bin exp20_durable_storage -- --quick

echo "== exp21 smoke (open-loop gateway sweep)"
# Two sweep points plus the determinism check: the same workload replayed
# twice must yield identical admit/shed verdict streams and byte-identical
# replica digests. Writes no artifacts.
cargo run -q --release --offline -p tn-bench --bin exp21_open_loop -- --quick

echo "== exp22 smoke (batch Schnorr verification on the cold import path)"
# The bin asserts batch==sequential verdicts, byte-identical replica
# digests across batch configurations, and the one-EC-verify-per-tx
# cache contract; --quick runs small sizes and writes no artifacts.
cargo run -q --release --offline -p tn-bench --bin exp22_batch_verify -- --quick

echo "== exp23 smoke (health plane: fault detection + monitor overhead)"
# The bin asserts the detection contract itself: the clean baseline stays
# Healthy with zero quarantines, each quick fault cell fires its expected
# alert class on the expected replica, and monitored digests are
# byte-identical to unmonitored runs. --quick runs the core cells and one
# below-knee SLO point, and writes no artifacts.
cargo run -q --release --offline -p tn-bench --bin exp23_health_plane -- --quick

echo "== exp24 smoke (misinformation-campaign matrix: participant defenses)"
# The bin machine-checks the damage bounds itself: clean cell silent,
# defended rings alerted + quarantined with the fake score bounded and
# zero honest quarantines, undefended rings detected but unbounded,
# bribery bounded by slashing alone, and every cell byte-identical
# across two replicas. --quick runs a 4-cell matrix and writes only the
# Prometheus alert artifact, which must contain the campaign series.
cargo run -q --release --offline -p tn-bench --bin exp24_campaign_matrix -- --quick
test -s results/e24_alerts.prom || { echo "missing results/e24_alerts.prom"; exit 1; }
grep -q "crowdrank" results/e24_alerts.prom || {
  echo "campaign series missing from results/e24_alerts.prom"
  exit 1
}

echo "All checks passed."
