//! Integration-test crate: the tests live in `tests/tests/` and exercise
//! flows that span multiple workspace crates (platform pipeline, consensus
//! over real transactions, adversarial scenarios).
