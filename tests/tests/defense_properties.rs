//! Property tests for the participant-defense layer (E24's library
//! half): reputation decay is a contraction toward the prior and
//! composes order-independently, stake accounting conserves every token
//! under arbitrary op sequences, and quarantined participants can never
//! move the aggregate decision digest.

use std::collections::BTreeSet;

use proptest::prelude::*;

use tn_crowdrank::defense::{stake_weighted, DefenseConfig, StakeLedger};
use tn_crowdrank::reputation::{Reputation, ReputationLedger};
use tn_crowdrank::Vote;
use tn_crypto::sha256::sha256;
use tn_crypto::{Address, Hash256, Keypair};

fn addr(i: u8) -> Address {
    Keypair::from_seed(&[b'd', b'p', i]).address()
}

fn item(i: u8) -> Hash256 {
    let mut bytes = [0u8; 32];
    bytes[0] = i;
    bytes[31] = 0xe2;
    Hash256::from_bytes(bytes)
}

/// Canonical byte digest of a decision vector: if two aggregations hash
/// identically, every field of every decision (including the float
/// confidence bits) is identical.
fn decision_digest(decisions: &[tn_crowdrank::Decision]) -> Hash256 {
    let mut bytes = Vec::new();
    for d in decisions {
        bytes.extend_from_slice(d.item.as_bytes());
        bytes.push(d.factual as u8);
        bytes.extend_from_slice(&d.confidence.to_bits().to_le_bytes());
        bytes.extend_from_slice(&(d.votes as u64).to_le_bytes());
    }
    sha256(&bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decay with a factor in (0, 1] never moves the posterior weight
    /// away from the 0.5 prior, and never manufactures evidence.
    #[test]
    fn decay_is_a_contraction_toward_prior(
        outcomes in proptest::collection::vec(any::<bool>(), 0..64),
        factor in 0.01f64..=1.0,
    ) {
        let mut rep = Reputation::default();
        for correct in outcomes {
            rep.record(correct);
        }
        let before_weight = rep.weight();
        let before_evidence = rep.evidence();
        rep.decay(factor).expect("factor in range");
        prop_assert!(
            (rep.weight() - 0.5).abs() <= (before_weight - 0.5).abs() + 1e-12,
            "decay moved weight away from the prior: {before_weight} -> {}",
            rep.weight()
        );
        prop_assert!(rep.evidence() <= before_evidence + 1e-12);
        prop_assert!(rep.alpha >= 1.0 - 1e-12 && rep.beta >= 1.0 - 1e-12);
    }

    /// Decay composes multiplicatively, so the order of decay rounds is
    /// irrelevant: f1 then f2 lands (up to float rounding) exactly where
    /// f2 then f1 and the single combined factor land.
    #[test]
    fn decay_rounds_are_order_independent(
        records in proptest::collection::vec((0u8..6, any::<bool>()), 0..64),
        f1 in 0.05f64..=1.0,
        f2 in 0.05f64..=1.0,
    ) {
        let mut ledger = ReputationLedger::new();
        for (who, correct) in &records {
            ledger.record(&addr(*who), *correct);
        }
        let mut ab = ledger.clone();
        let mut ba = ledger.clone();
        let mut combined = ledger.clone();
        ab.decay_all(f1).expect("f1 in range");
        ab.decay_all(f2).expect("f2 in range");
        ba.decay_all(f2).expect("f2 in range");
        ba.decay_all(f1).expect("f1 in range");
        combined.decay_all(f1 * f2).expect("product in range");
        for i in 0u8..6 {
            let who = addr(i);
            let w_ab = ab.weight(&who);
            let w_ba = ba.weight(&who);
            let w_c = combined.weight(&who);
            prop_assert!((w_ab - w_ba).abs() < 1e-9, "order mattered: {w_ab} vs {w_ba}");
            prop_assert!((w_ab - w_c).abs() < 1e-9, "composition broke: {w_ab} vs {w_c}");
        }
    }

    /// A decay factor outside (0, 1] is a typed error and leaves the
    /// ledger untouched.
    #[test]
    fn bad_decay_factor_is_rejected_without_mutation(
        records in proptest::collection::vec((0u8..4, any::<bool>()), 1..32),
        choice in 0u8..6,
        overshoot in 1.0001f64..1000.0,
    ) {
        let factor = match choice {
            0 => 0.0,
            1 => -1.0,
            2 => 1.0 + 1e-9,
            3 => f64::NAN,
            4 => f64::INFINITY,
            _ => overshoot,
        };
        let mut ledger = ReputationLedger::new();
        for (who, correct) in &records {
            ledger.record(&addr(*who), *correct);
        }
        let before: Vec<f64> = (0u8..4).map(|i| ledger.weight(&addr(i))).collect();
        prop_assert!(ledger.decay_all(factor).is_err());
        let after: Vec<f64> = (0u8..4).map(|i| ledger.weight(&addr(i))).collect();
        prop_assert_eq!(before, after);
    }

    /// Every token granted into the stake system stays in exactly one of
    /// {free, bonded, treasury} through arbitrary grant/bond/slash
    /// sequences — including ops that fail.
    #[test]
    fn stake_is_conserved_under_arbitrary_ops(
        ops in proptest::collection::vec((0u8..3, 0u8..6, 0u64..10_000), 1..128),
    ) {
        let mut ledger = StakeLedger::new();
        for (op, who, amount) in ops {
            let who = addr(who);
            match op {
                0 => {
                    let _ = ledger.grant(&who, amount);
                }
                1 => {
                    let _ = ledger.post_bond(&who, amount);
                }
                _ => {
                    let treasury_before = ledger.treasury();
                    let cut = ledger.slash(&who, (amount % 12_000) as u32);
                    prop_assert_eq!(ledger.treasury(), treasury_before + cut);
                }
            }
            prop_assert!(
                ledger.conserved(),
                "minted {} != circulating {}",
                ledger.minted(),
                ledger.circulating()
            );
        }
    }

    /// The aggregate decision vector — down to the confidence float bits
    /// — is identical whether quarantined participants' votes are zeroed
    /// in place or stripped from the input entirely. Quarantine is a
    /// true no-op on the digest, which is what lets replicas apply it
    /// without re-agreeing on history.
    #[test]
    fn quarantined_votes_never_move_the_aggregate_digest(
        votes in proptest::collection::vec((0u8..8, 0u8..5, any::<bool>()), 1..96),
        quarantine_mask in 0u8..=255,
        history in proptest::collection::vec((0u8..8, any::<bool>()), 0..48),
    ) {
        let mut reputation = ReputationLedger::new();
        for (who, correct) in &history {
            reputation.record(&addr(*who), *correct);
        }
        let config = DefenseConfig::default();
        let mut stakes = StakeLedger::new();
        for i in 0u8..8 {
            stakes.grant(&addr(i), 2 * config.min_bond).expect("grant");
            stakes.post_bond(&addr(i), config.min_bond).expect("bond");
        }
        let quarantined: BTreeSet<Address> = (0u8..8)
            .filter(|i| quarantine_mask & (1 << i) != 0)
            .map(addr)
            .collect();
        let all: Vec<Vote> = votes
            .iter()
            .map(|(who, it, factual)| Vote {
                voter: addr(*who),
                item: item(*it),
                factual: *factual,
            })
            .collect();
        let stripped: Vec<Vote> = all
            .iter()
            .filter(|v| !quarantined.contains(&v.voter))
            .cloned()
            .collect();

        let full = stake_weighted(&all, &reputation, &stakes, &quarantined, &config);
        let minus = stake_weighted(&stripped, &reputation, &stakes, &quarantined, &config);

        // Items voted on *only* by quarantined participants still get a
        // (conservative, zero-weight) decision in the full run; restrict
        // the identity to items that survive stripping and pin the
        // orphans to the conservative default.
        let surviving: BTreeSet<Hash256> = stripped.iter().map(|v| v.item).collect();
        let full_surviving: Vec<_> = full
            .iter()
            .filter(|d| surviving.contains(&d.item))
            .cloned()
            .collect();
        prop_assert_eq!(decision_digest(&full_surviving), decision_digest(&minus));
        for orphan in full.iter().filter(|d| !surviving.contains(&d.item)) {
            prop_assert!(!orphan.factual);
            prop_assert_eq!(orphan.votes, 0);
            prop_assert!((orphan.confidence - 0.5).abs() < 1e-12);
        }
    }
}
