//! Full-pipeline integration: publish → detect → rate → rank → anchor →
//! prove, across tn-core, tn-factdb, tn-supplychain, tn-aidetect,
//! tn-chain and tn-crypto.

use tn_core::platform::{Platform, PlatformConfig};
use tn_core::roles::Role;
use tn_crypto::Keypair;
use tn_factdb::db::FactualDatabase;
use tn_factdb::record::{FactRecord, SourceKind};
use tn_supplychain::ops::PropagationOp;

struct World {
    platform: Platform,
    publisher: Keypair,
    journalist: Keypair,
    rogue: Keypair,
    checkers: Vec<Keypair>,
    readers: Vec<Keypair>,
    room: u64,
}

fn build_world() -> World {
    let mut platform = Platform::new(PlatformConfig::default());
    let publisher = Keypair::from_seed(b"it publisher");
    let journalist = Keypair::from_seed(b"it journalist");
    let rogue = Keypair::from_seed(b"it rogue");
    let checkers: Vec<Keypair> = (0..2)
        .map(|i| Keypair::from_seed(format!("it checker {i}").as_bytes()))
        .collect();
    let readers: Vec<Keypair> = (0..6)
        .map(|i| Keypair::from_seed(format!("it reader {i}").as_bytes()))
        .collect();

    platform
        .register_identity(&publisher, "IT Press", &[Role::Publisher])
        .unwrap();
    platform
        .register_identity(&journalist, "IT Journalist", &[Role::ContentCreator])
        .unwrap();
    platform
        .register_identity(&rogue, "IT Rogue", &[Role::ContentCreator])
        .unwrap();
    for c in &checkers {
        platform
            .register_identity(c, "IT Checker", &[Role::FactChecker])
            .unwrap();
    }
    for r in &readers {
        platform
            .register_identity(r, "IT Reader", &[Role::Consumer])
            .unwrap();
    }
    platform.produce_block().expect("identities");

    platform
        .create_publisher_platform(&publisher, "IT Press")
        .expect("platform");
    platform.produce_block().expect("platform block");
    let pid = platform
        .newsrooms()
        .find_platform("IT Press")
        .expect("registered");
    platform
        .create_news_room(&publisher, pid, "energy")
        .expect("room");
    platform.produce_block().expect("room block");
    let room = platform.newsrooms().rooms().next().expect("room").0;
    for j in [&journalist, &rogue] {
        platform
            .authorize_journalist(&publisher, room, &j.address())
            .expect("authz");
    }
    platform.produce_block().expect("authz block");

    World {
        platform,
        publisher,
        journalist,
        rogue,
        checkers,
        readers,
        room,
    }
}

#[test]
fn pipeline_publish_rate_rank_anchor_prove() {
    let mut w = build_world();
    let p = &mut w.platform;

    // Train the AI detector (the AI-developer role's artifact).
    let corpus = tn_aidetect::corpus::generate_news_corpus(
        &tn_aidetect::corpus::NewsCorpusConfig::default(),
    );
    p.train_detector(&corpus);

    // Journalist cites a factual record; rogue distorts the same record.
    let fact = p.factdb().iter().next().expect("seeded").clone();
    let sourced = p
        .publish_news(
            &w.journalist,
            w.room,
            &fact.topic,
            &fact.content,
            vec![(fact.id(), PropagationOp::Cite)],
        )
        .expect("publish sourced");
    let distorted_text = format!(
        "{} Insiders warn this is a shocking corrupt cover-up. \
         Share this before it gets deleted by the censors.",
        fact.content
    );
    let distorted = p
        .publish_news(
            &w.rogue,
            w.room,
            &fact.topic,
            &distorted_text,
            vec![(fact.id(), PropagationOp::Insert)],
        )
        .expect("publish distorted");
    p.produce_block().expect("publish block");

    // Readers rate: sourced up, distorted down.
    for r in &w.readers {
        p.submit_rating(r, &sourced, 90).expect("rating");
        p.submit_rating(r, &distorted, 10).expect("rating");
    }
    p.produce_block().expect("rating block");

    // All three signals separate the items.
    let rs = p.rank_item(&sourced).expect("rank");
    let rd = p.rank_item(&distorted).expect("rank");
    assert!(rs.trace > rd.trace, "provenance separates");
    assert!(rs.ai > rd.ai, "AI separates");
    assert!(rs.crowd > rd.crowd, "crowd separates");
    assert!(
        rs.rank > rd.rank + 30.0,
        "combined rank separates strongly: {} vs {}",
        rs.rank,
        rd.rank
    );

    // Accountability: the rogue is identified as the distortion culprit.
    let culprit = p
        .distortion_culprit_of(&distorted)
        .expect("query")
        .expect("found");
    assert_eq!(culprit.0, w.rogue.address());

    // The factual DB root is anchored on-chain and records are provable
    // against it by any client.
    let anchored = p.anchored_fact_root().expect("anchored");
    assert_eq!(anchored, p.factdb().root());
    let (proof, root) = p.factdb().prove(&fact.id()).expect("prove");
    assert_eq!(root, anchored);
    assert!(FactualDatabase::verify(&fact, &proof, &anchored));
}

#[test]
fn attested_fact_becomes_citable_root() {
    let mut w = build_world();
    let p = &mut w.platform;

    let record = FactRecord {
        source: SourceKind::VerifiedNews,
        speaker: "IT Recorder".into(),
        topic: "energy".into(),
        content: "The grid operator published verified outage statistics for June.".into(),
        recorded_at: 900,
    };
    let id = p.propose_fact(record.clone()).unwrap();
    for c in &w.checkers {
        p.attest_fact(c, &id).expect("attest");
    }
    let summary = p.produce_block().expect("attest block");
    assert_eq!(summary.admitted_facts, vec![id]);
    p.produce_block().expect("anchor block");

    // The freshly admitted record is now citable and yields a perfect trace.
    let item = p
        .publish_news(
            &w.journalist,
            w.room,
            "energy",
            &record.content,
            vec![(id, PropagationOp::Cite)],
        )
        .expect("cite new fact");
    p.produce_block().expect("cite block");
    let rank = p.rank_item(&item).expect("rank");
    assert!(rank.reaches_root);
    assert!((rank.trace - 1.0).abs() < 1e-9);

    // And provable against the *new* anchored root.
    let anchored = p.anchored_fact_root().expect("anchored");
    let (proof, root) = p.factdb().prove(&id).expect("prove");
    assert_eq!(root, anchored);
    assert!(FactualDatabase::verify(&record, &proof, &anchored));
}

#[test]
fn ledger_is_the_complete_audit_trail() {
    let mut w = build_world();
    let p = &mut w.platform;
    let fact = p.factdb().iter().next().expect("seeded").clone();
    let item = p
        .publish_news(
            &w.journalist,
            w.room,
            &fact.topic,
            &fact.content,
            vec![(fact.id(), PropagationOp::Cite)],
        )
        .expect("publish");
    p.produce_block().expect("block");

    // Rebuild the supply-chain graph purely from the on-chain ledger and
    // the factual DB — it must agree with the platform's live graph.
    let mut rebuilt = tn_supplychain::graph::SupplyChainGraph::new();
    for rec in p.factdb().iter() {
        rebuilt
            .add_fact_root(rec.id(), &rec.content, &rec.topic, rec.recorded_at)
            .expect("unique");
    }
    let stats = tn_supplychain::index::index_chain(p.store(), &mut rebuilt);
    assert_eq!(stats.indexed, p.index_stats().indexed);
    assert_eq!(rebuilt.len(), p.graph().len());
    let live = p.trace_item(&item).expect("live trace");
    let replayed = rebuilt.trace_back(&item).expect("replayed trace");
    assert_eq!(live.reaches_root, replayed.reaches_root);
    assert!((live.score - replayed.score).abs() < 1e-12);
    assert_eq!(live.path, replayed.path);
}

#[test]
fn publisher_cannot_bypass_roles() {
    let mut w = build_world();
    let p = &mut w.platform;
    // The publisher holds no ContentCreator role: publishing is refused
    // even though they own the room.
    let err = p
        .publish_news(&w.publisher, w.room, "energy", "editorial", vec![])
        .expect_err("publisher lacks creator role");
    assert!(matches!(
        err,
        tn_core::platform::PlatformError::NotAuthorized(_)
    ));
    // A reader cannot attest facts.
    let id = p
        .propose_fact(FactRecord {
            source: SourceKind::VerifiedNews,
            speaker: "X".into(),
            topic: "t".into(),
            content: "Y".into(),
            recorded_at: 1,
        })
        .unwrap();
    let err = p
        .attest_fact(&w.readers[0], &id)
        .expect_err("reader cannot attest");
    assert!(matches!(
        err,
        tn_core::platform::PlatformError::NotAuthorized(_)
    ));
}
