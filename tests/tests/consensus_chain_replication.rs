//! Consensus × chain integration: real signed transactions are ordered by
//! the PBFT cluster, and every replica applies the committed batches to
//! its own `ChainStore` — all replicas must end at identical state roots
//! (the replicated-state-machine property the platform's trust guarantees
//! rest on).

use tn_chain::codec::{Decodable, Encodable};
use tn_chain::prelude::*;
use tn_consensus::pbft::{ByzMode, PbftConfig, PbftMsg, PbftReplica, Request};
use tn_consensus::sim::{NetworkConfig, Simulator};
use tn_crypto::Keypair;

fn make_txs(n: usize) -> Vec<Transaction> {
    let alice = Keypair::from_seed(b"rep alice");
    let bob = Keypair::from_seed(b"rep bob");
    (0..n)
        .map(|i| {
            Transaction::signed(
                &alice,
                i as u64,
                1,
                Payload::Transfer {
                    to: bob.address(),
                    amount: 10 + i as u64,
                },
            )
        })
        .collect()
}

fn genesis_state() -> State {
    State::genesis([(Keypair::from_seed(b"rep alice").address(), 1_000_000)])
}

#[test]
fn replicas_converge_to_identical_chains() {
    const N: usize = 4;
    let nodes: Vec<PbftReplica> = (0..N)
        .map(|id| PbftReplica::new(id, N, PbftConfig::default(), ByzMode::Honest))
        .collect();
    let mut sim = Simulator::new(nodes, NetworkConfig::default());

    // Inject real transactions as consensus requests.
    let txs = make_txs(30);
    for (i, tx) in txs.iter().enumerate() {
        let req = Request::new(tx.to_bytes(), 10 + i as u64 * 3);
        sim.inject_at(0, PbftMsg::Request(req), 10 + i as u64 * 3);
    }
    sim.run_until(500_000);

    // Each replica replays its committed sequence into its own chain.
    let validator = Keypair::from_seed(b"rep validator");
    let mut roots = Vec::new();
    let mut heights = Vec::new();
    for id in 0..N {
        let mut store = ChainStore::new(genesis_state(), &validator);
        for entry in &sim.node(id).committed {
            let batch: Vec<Transaction> = entry
                .requests
                .iter()
                .map(|r| Transaction::from_bytes(&r.payload).expect("valid tx bytes"))
                .collect();
            let block = store.propose(&validator, entry.committed_at, batch, &mut NoExecutor);
            store.import(block, &mut NoExecutor).expect("imports");
        }
        roots.push(store.head_state().root());
        heights.push(store.height());
        // All 30 transfers executed.
        assert_eq!(
            store
                .head_state()
                .nonce(&Keypair::from_seed(b"rep alice").address()),
            30,
            "replica {id}"
        );
    }
    assert!(
        roots.windows(2).all(|w| w[0] == w[1]),
        "state roots diverged: {roots:?}"
    );
    assert!(
        heights.windows(2).all(|w| w[0] == w[1]),
        "heights diverged: {heights:?}"
    );
}

#[test]
fn replication_survives_crashed_backup() {
    const N: usize = 4;
    let nodes: Vec<PbftReplica> = (0..N)
        .map(|id| PbftReplica::new(id, N, PbftConfig::default(), ByzMode::Honest))
        .collect();
    let mut sim = Simulator::new(nodes, NetworkConfig::default());
    sim.crash(3);

    let txs = make_txs(10);
    for (i, tx) in txs.iter().enumerate() {
        let req = Request::new(tx.to_bytes(), 10 + i as u64 * 3);
        sim.inject_at(0, PbftMsg::Request(req), 10 + i as u64 * 3);
    }
    sim.run_until(500_000);

    let validator = Keypair::from_seed(b"rep validator");
    let mut roots = Vec::new();
    for id in 0..3 {
        let mut store = ChainStore::new(genesis_state(), &validator);
        for entry in &sim.node(id).committed {
            let batch: Vec<Transaction> = entry
                .requests
                .iter()
                .map(|r| Transaction::from_bytes(&r.payload).expect("valid tx bytes"))
                .collect();
            let block = store.propose(&validator, entry.committed_at, batch, &mut NoExecutor);
            store.import(block, &mut NoExecutor).expect("imports");
        }
        assert_eq!(
            store
                .head_state()
                .nonce(&Keypair::from_seed(b"rep alice").address()),
            10,
            "replica {id}"
        );
        roots.push(store.head_state().root());
    }
    assert!(roots.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn tampered_request_bytes_are_rejected_at_the_chain_layer() {
    // Even if consensus ordered garbage, the chain's signature checks
    // refuse it — defense in depth.
    let txs = make_txs(1);
    let mut bytes = txs[0].to_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff; // corrupt the signature
    let tampered = Transaction::from_bytes(&bytes);
    match tampered {
        Err(_) => {} // decoding caught it
        Ok(tx) => assert!(tx.verify().is_err(), "tampered tx must not verify"),
    }
}
